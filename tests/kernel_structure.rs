//! Structural properties of the synthetic kernel the experiments rely on.

use pibe_ir::{CallGraph, FuncId, Inst};
use pibe_kernel::workloads::{lmbench_suite, WorkloadSpec};
use pibe_kernel::{Kernel, KernelSpec, Provider, Syscall};
use std::collections::HashSet;

fn kernel() -> Kernel {
    Kernel::generate(KernelSpec::test())
}

#[test]
fn every_entry_reaches_its_subsystem_trunks() {
    let k = kernel();
    let graph = CallGraph::build(&k.module);
    for sc in Syscall::ALL {
        let reach = graph.reachable_from(&[k.entry(sc)]);
        for sub in sc.trunks() {
            let head = k
                .module
                .find_function(&format!("{sub}_t0"))
                .expect("trunk head exists");
            assert!(reach.contains(&head), "{sc} must reach its {sub} trunk");
        }
    }
}

#[test]
fn shared_trunks_create_workload_overlap() {
    let k = kernel();
    let graph = CallGraph::build(&k.module);
    let read: HashSet<FuncId> = graph.reachable_from(&[k.entry(Syscall::Read)]);
    let write: HashSet<FuncId> = graph.reachable_from(&[k.entry(Syscall::Write)]);
    let shared = read.intersection(&write).count();
    assert!(
        shared * 2 > read.len(),
        "read and write share most of their path ({} of {})",
        shared,
        read.len()
    );
    // But distinct syscalls are not identical.
    let fork: HashSet<FuncId> = graph.reachable_from(&[k.entry(Syscall::ForkExit)]);
    assert_ne!(read, fork);
}

#[test]
fn paravirt_sites_sit_on_reachable_paths() {
    let k = kernel();
    let graph = CallGraph::build(&k.module);
    let roots: Vec<FuncId> = Syscall::ALL.iter().map(|s| k.entry(*s)).collect();
    let reach = graph.reachable_from(&roots);
    let reachable_pv = k
        .module
        .functions()
        .iter()
        .filter(|f| f.name().starts_with("pv_") && reach.contains(&f.id()))
        .count();
    assert!(
        reachable_pv >= 3,
        "paravirt helpers execute on hot paths: {reachable_pv}"
    );
}

#[test]
fn interface_targets_exist_and_are_callable() {
    let k = kernel();
    for site in &k.interface_sites {
        for (target, _) in &site.targets {
            assert!(target.index() < k.module.len(), "target in range");
            assert!(
                k.module.function(*target).return_sites() > 0,
                "targets return"
            );
        }
    }
}

#[test]
fn multi_target_sites_span_providers() {
    let k = kernel();
    let multi = k
        .interface_sites
        .iter()
        .filter(|s| !s.asm && s.targets.len() >= 3);
    let mut found_spanning = false;
    for site in multi {
        let providers: HashSet<Provider> = site.targets.iter().map(|(_, p)| *p).collect();
        if providers.len() >= 3 {
            found_spanning = true;
        }
    }
    assert!(
        found_spanning,
        "dispatch tables span provider implementations"
    );
}

#[test]
fn asm_sites_live_in_the_module_as_flagged_instructions() {
    let k = kernel();
    let asm_sites: HashSet<_> = k
        .interface_sites
        .iter()
        .filter(|s| s.asm)
        .map(|s| s.site)
        .collect();
    let mut found = 0;
    for f in k.module.functions() {
        for inst in f.insts() {
            if let Inst::CallIndirect {
                site, asm: true, ..
            } = inst
            {
                assert!(asm_sites.contains(site));
                found += 1;
            }
        }
    }
    assert_eq!(found, asm_sites.len());
}

#[test]
fn resolver_is_deterministic_per_workload() {
    let k = kernel();
    let a = WorkloadSpec::lmbench().resolver(&k);
    let b = WorkloadSpec::lmbench().resolver(&k);
    for s in &k.interface_sites {
        assert_eq!(a.get(s.site), b.get(s.site));
    }
}

#[test]
fn profiling_observes_only_reachable_direct_sites() {
    let k = kernel();
    let p = pibe_kernel::measure::collect_profile(
        &k,
        &WorkloadSpec::lmbench(),
        &lmbench_suite(4),
        1,
        5,
    )
    .unwrap();
    let graph = CallGraph::build(&k.module);
    // Reachability must include indirect-call targets (handlers and hooks
    // are reached through dispatch, not direct edges).
    let mut roots: Vec<FuncId> = Syscall::ALL.iter().map(|s| k.entry(*s)).collect();
    roots.extend(
        k.interface_sites
            .iter()
            .flat_map(|s| s.targets.iter().map(|(f, _)| *f)),
    );
    let reach = graph.reachable_from(&roots);
    // Every profiled direct site must belong to a reachable function.
    let mut site_owner = std::collections::HashMap::new();
    for f in k.module.functions() {
        for inst in f.insts() {
            if let Inst::Call { site, .. } = inst {
                site_owner.insert(*site, f.id());
            }
        }
    }
    for (site, count) in p.iter_direct() {
        assert!(count > 0);
        let owner = site_owner[&site];
        assert!(
            reach.contains(&owner),
            "profiled site {site} lives in unreachable {owner}"
        );
    }
}

#[test]
fn asm_sites_never_appear_in_profiles() {
    let k = kernel();
    let p = pibe_kernel::measure::collect_profile(
        &k,
        &WorkloadSpec::lmbench(),
        &lmbench_suite(4),
        1,
        5,
    )
    .unwrap();
    for s in k.interface_sites.iter().filter(|s| s.asm) {
        assert_eq!(
            p.indirect_count(s.site),
            0,
            "compiler instrumentation cannot see inline asm ({})",
            s.site
        );
    }
}
