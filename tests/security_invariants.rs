//! Security invariants across the whole stack (§8.6): what each defense
//! must and must not protect, dynamically and statically.

use pibe::{eval, Image, PibeConfig};
use pibe_harden::DefenseSet;
use pibe_kernel::measure::collect_profile;
use pibe_kernel::workloads::{lmbench_suite, WorkloadSpec};
use pibe_kernel::{Kernel, KernelSpec};
use pibe_profile::Profile;
use pibe_sim::SimConfig;

fn lab() -> (Kernel, Profile) {
    let kernel = Kernel::generate(KernelSpec::test());
    let profile = collect_profile(
        &kernel,
        &WorkloadSpec::lmbench(),
        &lmbench_suite(6),
        2,
        0xBA5E,
    )
    .expect("profiling succeeds");
    (kernel, profile)
}

fn build(kernel: &Kernel, profile: &Profile, config: PibeConfig) -> Image {
    Image::builder(&kernel.module)
        .profile(profile)
        .config(config)
        .build()
        .expect("pipeline preserves validity")
}

fn surface(kernel: &Kernel, image: &pibe::Image) -> pibe_sim::AttackReport {
    eval::lmbench_attack_surface(
        &image.module,
        kernel,
        &WorkloadSpec::lmbench(),
        &lmbench_suite(6),
        SimConfig {
            defenses: image.config.defenses,
            ..SimConfig::default()
        },
        0xBA5E,
    )
}

/// Fully hardened kernels expose no hijackable branch executions except
/// the paravirt inline-assembly sites — with or without PIBE.
#[test]
fn full_hardening_leaves_only_paravirt_exposed() {
    let (kernel, profile) = lab();
    for config in [
        PibeConfig::lto_with(DefenseSet::ALL),
        PibeConfig::lax(DefenseSet::ALL),
    ] {
        let image = build(&kernel, &profile, config);
        let report = surface(&kernel, &image);
        assert_eq!(report.rsb_hijackable_rets, 0, "returns all protected");
        assert_eq!(report.btb_hijackable_ijumps, 0, "jump tables disabled");
        // The only hijackable icalls and injectable loads are the paravirt
        // hypercalls, which execute on hot mm/sched paths.
        assert!(report.btb_hijackable_icalls > 0, "paravirt sites execute");
        assert_eq!(
            report.lvi_injectable, report.btb_hijackable_icalls,
            "exactly the asm sites are LVI-injectable"
        );
    }
}

/// An undefended kernel is hijackable everywhere.
#[test]
fn undefended_kernel_is_wide_open() {
    let (kernel, profile) = lab();
    let image = build(&kernel, &profile, PibeConfig::lto());
    let report = surface(&kernel, &image);
    assert!(report.btb_hijackable_icalls > 100);
    assert!(report.rsb_hijackable_rets > 1000);
    assert!(report.lvi_injectable > report.rsb_hijackable_rets);
}

/// Each single defense closes exactly its own attack class.
#[test]
fn single_defenses_close_their_own_class() {
    let (kernel, profile) = lab();
    let base = surface(&kernel, &build(&kernel, &profile, PibeConfig::lto()));

    let all = surface(
        &kernel,
        &build(&kernel, &profile, PibeConfig::lto_with(DefenseSet::ALL)),
    );
    let retp = surface(
        &kernel,
        &build(
            &kernel,
            &profile,
            PibeConfig::lto_with(DefenseSet::RETPOLINES),
        ),
    );
    assert!(retp.btb_hijackable_icalls < base.btb_hijackable_icalls);
    assert_eq!(
        retp.btb_hijackable_icalls, all.btb_hijackable_icalls,
        "retpolines leave exactly the paravirt residual that full hardening leaves"
    );
    assert_eq!(
        retp.rsb_hijackable_rets, base.rsb_hijackable_rets,
        "retpolines do nothing for returns"
    );

    let rr = surface(
        &kernel,
        &build(
            &kernel,
            &profile,
            PibeConfig::lto_with(DefenseSet::RET_RETPOLINES),
        ),
    );
    assert_eq!(
        rr.rsb_hijackable_rets, 0,
        "return retpolines cover Ret2spec"
    );
    assert_eq!(
        rr.btb_hijackable_icalls, base.btb_hijackable_icalls,
        "return retpolines do nothing for forward edges"
    );

    let lvi = surface(
        &kernel,
        &build(&kernel, &profile, PibeConfig::lto_with(DefenseSet::LVI_CFI)),
    );
    // LVI fences close injectable loads except inside inline asm — the
    // same paravirt residual the fully hardened image shows.
    assert!(lvi.lvi_injectable < base.lvi_injectable);
    assert_eq!(lvi.lvi_injectable, all.lvi_injectable);
}

/// PIBE's elision *reduces* the number of protected-branch executions (and
/// therefore the residual overhead) without opening new attack classes:
/// the only regression dimension is the duplicated paravirt sites.
#[test]
fn optimization_does_not_weaken_protection() {
    let (kernel, profile) = lab();
    let unopt = build(&kernel, &profile, PibeConfig::lto_with(DefenseSet::ALL));
    let opt = build(&kernel, &profile, PibeConfig::lax(DefenseSet::ALL));
    let unopt_surface = surface(&kernel, &unopt);
    let opt_surface = surface(&kernel, &opt);
    assert_eq!(opt_surface.rsb_hijackable_rets, 0);
    assert_eq!(opt_surface.btb_hijackable_ijumps, 0);
    // Dynamic paravirt executions are workload-determined, not worsened by
    // duplication (the same pv helpers run, wherever their code lives).
    assert_eq!(
        opt_surface.btb_hijackable_icalls,
        unopt_surface.btb_hijackable_icalls
    );
    // Statically, Table 11: protected icalls grow, vulnerable asm icalls
    // may grow, vulnerable ijumps stay at the 5 asm tables.
    assert!(opt.audit.protected_icalls > unopt.audit.protected_icalls);
    assert_eq!(opt.audit.vulnerable_ijumps, 5);
    assert_eq!(unopt.audit.vulnerable_ijumps, 5);
}

/// Boot-only code is exempt from the audit's vulnerable counts but still
/// counted separately.
#[test]
fn boot_returns_are_exempt_not_forgotten() {
    let (kernel, profile) = lab();
    let image = build(
        &kernel,
        &profile,
        PibeConfig::lto_with(DefenseSet::RETPOLINES),
    );
    assert!(image.audit.boot_returns >= 4);
    let total_rets =
        image.audit.protected_returns + image.audit.vulnerable_returns + image.audit.boot_returns;
    assert_eq!(total_rets, image.module.census().returns);
}
