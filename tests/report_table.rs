//! Behavioural coverage of `pibe::report::Table`'s row APIs: the lenient
//! `row` (pad/truncate), the strict `try_row` (typed error naming the
//! table), and a `Display` implementation that tolerates ragged rows poked
//! in through the public `rows` field.

use pibe::report::{Table, TableError};

fn cells(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

#[test]
fn try_row_accepts_exact_width_and_appends() {
    let mut t = Table::new("Table X: demo", &["config", "cycles", "overhead"]);
    t.try_row(cells(&["lto", "100", "0.0%"]))
        .expect("matching width is accepted")
        .try_row(cells(&["full", "110", "10.0%"]))
        .expect("chaining works");
    assert_eq!(t.rows.len(), 2);
    assert_eq!(t.rows[1], cells(&["full", "110", "10.0%"]));
}

#[test]
fn try_row_rejects_short_rows_naming_the_table() {
    let mut t = Table::new("Table 5: overhead", &["config", "cycles", "overhead"]);
    let err = t.try_row(cells(&["lto"])).unwrap_err();
    assert_eq!(
        err,
        TableError::RowWidth {
            table: "Table 5: overhead".into(),
            expected: 3,
            got: 1,
        }
    );
    // The message is actionable: it names the destination table and both
    // widths, so a malformed row deep inside a farm report is traceable.
    let text = err.to_string();
    assert!(text.contains("Table 5: overhead"), "{text}");
    assert!(text.contains('3') && text.contains('1'), "{text}");
    // The offending row was NOT appended.
    assert!(t.rows.is_empty());
}

#[test]
fn try_row_rejects_long_rows_without_mutating_the_table() {
    let mut t = Table::new("t", &["a", "b"]);
    t.try_row(cells(&["1", "2"])).unwrap();
    let before = t.clone();
    let err = t.try_row(cells(&["1", "2", "3", "4"])).unwrap_err();
    assert_eq!(
        err,
        TableError::RowWidth {
            table: "t".into(),
            expected: 2,
            got: 4,
        }
    );
    assert_eq!(t, before, "a rejected row must leave the table untouched");
}

#[test]
fn row_pads_short_rows_with_empty_cells() {
    let mut t = Table::new("t", &["a", "b", "c"]);
    t.row(cells(&["only"]));
    assert_eq!(
        t.rows[0],
        vec!["only".to_string(), String::new(), String::new()]
    );
    // Rendering shows the padded row without panicking.
    let text = t.to_string();
    assert!(text.contains("only"));
}

#[test]
fn row_truncates_long_rows_to_the_header_width() {
    let mut t = Table::new("t", &["a", "b"]);
    t.row(cells(&["1", "2", "dropped", "also dropped"]));
    assert_eq!(t.rows[0], cells(&["1", "2"]));
    assert!(!t.to_string().contains("dropped"));
}

#[test]
fn display_tolerates_ragged_rows_injected_through_the_public_field() {
    let mut t = Table::new("ragged", &["a", "bb", "ccc"]);
    t.try_row(cells(&["1", "2", "3"])).unwrap();
    // `rows` is public: a caller can bypass both row APIs entirely.
    t.rows.push(cells(&["x"])); // too short
    t.rows.push(cells(&["p", "q", "r", "EXTRA"])); // too long
    let text = t.to_string();
    // Every header and every in-range cell renders; out-of-range cells are
    // ignored and missing ones render as empty padding.
    for needle in ["ragged", "a", "bb", "ccc", "1", "x", "p", "q", "r"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    assert!(
        !text.contains("EXTRA"),
        "extra cells must be ignored:\n{text}"
    );
    // Each rendered line of the body has the same column separators.
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2 + 2 + 3, "title, rule, header, rule, 3 rows");
    for row_line in &lines[4..] {
        assert_eq!(row_line.matches(" | ").count(), 2, "{row_line}");
    }
}
