//! Every experiment harness must run end-to-end on one shared lab and
//! produce a structurally well-formed table — the regression net for the
//! `tables` binary's wiring.

use pibe::experiments::{self, Lab};
use pibe::report::Table;
use std::sync::OnceLock;

fn lab() -> &'static Lab {
    static LAB: OnceLock<Lab> = OnceLock::new();
    LAB.get_or_init(Lab::test)
}

fn assert_well_formed(t: &Table, min_rows: usize) {
    assert!(!t.title.is_empty());
    assert!(t.headers.len() >= 2, "{}: too few columns", t.title);
    assert!(
        t.rows.len() >= min_rows,
        "{}: expected at least {min_rows} rows, got {}",
        t.title,
        t.rows.len()
    );
    for row in &t.rows {
        assert_eq!(row.len(), t.headers.len(), "{}: ragged row", t.title);
        assert!(row.iter().all(|c| !c.is_empty()), "{}: empty cell", t.title);
    }
    // Rendering must not panic and must contain the title.
    assert!(t.to_string().contains(&t.title));
}

#[test]
fn table1_and_figure1_need_no_lab() {
    assert_well_formed(&experiments::table1(), 9);
    assert_well_formed(&experiments::figure1(), 4);
}

#[test]
fn lmbench_tables_are_well_formed() {
    assert_well_formed(&experiments::table2(lab()), 21);
    assert_well_formed(&experiments::table3(lab()), 13);
    assert_well_formed(&experiments::table4(lab()), 1);
    assert_well_formed(&experiments::table5(lab()), 21);
    assert_well_formed(&experiments::table6(lab()), 5);
}

#[test]
fn macro_table_is_well_formed() {
    assert_well_formed(&experiments::table7(lab(), 6).expect("table7 runs"), 12);
}

#[test]
fn security_tables_are_well_formed() {
    assert_well_formed(&experiments::table8(lab()), 3);
    assert_well_formed(&experiments::table9(lab()), 3);
    assert_well_formed(&experiments::table10(lab()), 2);
    assert_well_formed(&experiments::table11(lab()), 3);
    assert_well_formed(&experiments::table12(lab()), 8);
}

#[test]
fn extension_experiments_are_well_formed() {
    let (t, _) = experiments::robustness(lab(), 10).expect("robustness runs");
    assert_well_formed(&t, 6);
    let (t, _) = experiments::rsb_refill_comparison(lab());
    assert_well_formed(&t, 4);
    let (t, _) = experiments::eibrs_comparison(lab());
    assert_well_formed(&t, 4);
    let (t, _) = experiments::cycle_breakdown(lab()).expect("breakdown runs");
    assert_well_formed(&t, 4);
    let (t, _) = experiments::spectre_v1_fencing(lab());
    assert_well_formed(&t, 4);
    let (t, _) = experiments::userspace(100);
    assert_well_formed(&t, 2);
    let (t, _) = experiments::profiling_convergence(lab()).expect("convergence runs");
    assert_well_formed(&t, 4);
}

#[test]
fn tables_serialize_to_json() {
    let t = experiments::table1();
    let json = serde_json::to_string(&t).expect("tables serialize");
    let back: Table = serde_json::from_str(&json).expect("tables deserialize");
    assert_eq!(t, back);
}
