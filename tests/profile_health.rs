//! Pipeline-level coverage of every [`ProfileIssue`] variant: under
//! [`ValidationPolicy::Strict`] the build fails with a typed error *naming
//! the faulty entity*; under the default [`ValidationPolicy::Repair`] the
//! build succeeds and the attached [`ProfileRepair`] reports exactly what
//! was fixed.

use pibe::{Image, PibeConfig, PipelineError, ValidationPolicy};
use pibe_harden::DefenseSet;
use pibe_ir::{FuncId, FunctionBuilder, Module, OpKind, SiteId};
use pibe_profile::{Profile, ProfileIssue, ProfileRepair, COUNT_CLAMP};

/// `leaf()` and `root() { call leaf; icall }`: one direct site (0), one
/// indirect site (1), two functions (leaf = @f0).
fn module() -> (Module, SiteId, SiteId, FuncId) {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("leaf", 0);
    b.op(OpKind::Alu);
    b.ret();
    let leaf = m.add_function(b.build());
    let direct = m.fresh_site();
    let indirect = m.fresh_site();
    let mut b = FunctionBuilder::new("root", 0);
    b.call(direct, leaf, 0);
    b.call_indirect(indirect, 1);
    b.ret();
    m.add_function(b.build());
    (m, direct, indirect, leaf)
}

/// A profile that validates clean against [`module`].
fn clean(direct: SiteId, indirect: SiteId, leaf: FuncId) -> Profile {
    let mut p = Profile::new();
    p.record_direct(direct);
    p.record_indirect(indirect, leaf);
    p.record_entry(leaf);
    p.record_return(leaf);
    p
}

/// Builds a profile from hand-written JSON — the only way to express
/// pathological states (saturated counts, duplicated targets, truncated
/// value profiles) from outside the crate, and exactly what a corrupt
/// on-disk profile document looks like.
fn profile_from_json(json: &str) -> Profile {
    Profile::from_json(json).expect("handcrafted profile JSON parses")
}

fn strict_error(m: &Module, p: &Profile) -> ProfileIssue {
    let err = Image::builder(m)
        .profile(p)
        .config(PibeConfig::lax(DefenseSet::ALL).with_validation(ValidationPolicy::Strict))
        .build()
        .expect_err("strict validation must reject this profile");
    match err {
        PipelineError::ProfileInvalid(issue) => issue,
        other => panic!("expected ProfileInvalid, got {other:?}"),
    }
}

fn repair_report(m: &Module, p: &Profile) -> Option<ProfileRepair> {
    let image = Image::builder(m)
        .profile(p)
        .config(PibeConfig::lax(DefenseSet::ALL)) // default: Repair
        .build()
        .expect("repair mode must absorb this profile");
    image.module.verify().expect("image verifies");
    image.repair
}

#[test]
fn dangling_direct_site_names_the_site_and_is_dropped() {
    let (m, d, i, leaf) = module();
    let mut p = clean(d, i, leaf);
    p.record_direct(SiteId::from_raw(99));

    let issue = strict_error(&m, &p);
    assert_eq!(
        issue,
        ProfileIssue::DanglingDirectSite {
            site: SiteId::from_raw(99)
        }
    );
    assert!(issue.to_string().contains("site99"), "{issue}");

    assert_eq!(
        repair_report(&m, &p),
        Some(ProfileRepair {
            dropped_direct_sites: 1,
            ..ProfileRepair::default()
        })
    );
}

#[test]
fn dangling_indirect_site_names_the_site_and_is_dropped() {
    let (m, d, i, leaf) = module();
    let mut p = clean(d, i, leaf);
    p.record_indirect(SiteId::from_raw(99), leaf);

    let issue = strict_error(&m, &p);
    assert_eq!(
        issue,
        ProfileIssue::DanglingIndirectSite {
            site: SiteId::from_raw(99)
        }
    );
    assert!(issue.to_string().contains("site99"), "{issue}");

    assert_eq!(
        repair_report(&m, &p),
        Some(ProfileRepair {
            dropped_indirect_sites: 1,
            ..ProfileRepair::default()
        })
    );
}

#[test]
fn dangling_target_names_site_and_target_and_only_the_target_is_dropped() {
    let (m, d, i, leaf) = module();
    let mut p = clean(d, i, leaf);
    p.record_indirect(i, FuncId::from_raw(77));

    let issue = strict_error(&m, &p);
    assert_eq!(
        issue,
        ProfileIssue::DanglingTarget {
            site: i,
            target: FuncId::from_raw(77)
        }
    );
    let text = issue.to_string();
    assert!(text.contains("site1") && text.contains("@f77"), "{text}");

    // The valid `leaf` entry survives; only the ghost target goes.
    assert_eq!(
        repair_report(&m, &p),
        Some(ProfileRepair {
            dropped_targets: 1,
            ..ProfileRepair::default()
        })
    );
}

#[test]
fn duplicate_target_names_the_pair_and_duplicates_are_merged() {
    let (m, _, i, _) = module();
    // Canonical recording cannot produce duplicates; a corrupt document can.
    let p = profile_from_json(
        r#"{
            "direct": [[0, 1]],
            "indirect": [[1, [
                {"target": 0, "count": 2},
                {"target": 0, "count": 3}
            ]]],
            "entries": [[0, 1]],
            "returns": [[0, 1]]
        }"#,
    );

    let issue = strict_error(&m, &p);
    assert_eq!(
        issue,
        ProfileIssue::DuplicateTarget {
            site: i,
            target: FuncId::from_raw(0)
        }
    );
    assert!(issue.to_string().contains("site1"), "{issue}");

    assert_eq!(
        repair_report(&m, &p),
        Some(ProfileRepair {
            merged_duplicate_targets: 1,
            ..ProfileRepair::default()
        })
    );
}

#[test]
fn empty_value_profile_names_the_site_and_the_site_is_dropped() {
    let (m, _, i, _) = module();
    let p = profile_from_json(
        r#"{
            "direct": [[0, 1]],
            "indirect": [[1, []]],
            "entries": [[0, 1]],
            "returns": [[0, 1]]
        }"#,
    );

    let issue = strict_error(&m, &p);
    assert_eq!(issue, ProfileIssue::EmptyValueProfile { site: i });
    assert!(issue.to_string().contains("site1"), "{issue}");

    assert_eq!(
        repair_report(&m, &p),
        Some(ProfileRepair {
            dropped_indirect_sites: 1,
            ..ProfileRepair::default()
        })
    );
}

#[test]
fn saturated_direct_count_names_the_site_and_is_clamped() {
    let (m, d, _, _) = module();
    let p = profile_from_json(
        r#"{
            "direct": [[0, 18446744073709551615]],
            "indirect": [[1, [{"target": 0, "count": 1}]]],
            "entries": [[0, 1]],
            "returns": [[0, 1]]
        }"#,
    );
    assert_eq!(p.direct_count(d), u64::MAX);

    let issue = strict_error(&m, &p);
    assert_eq!(issue, ProfileIssue::SaturatedDirect { site: d });
    assert!(issue.to_string().contains("site0"), "{issue}");

    assert_eq!(
        repair_report(&m, &p),
        Some(ProfileRepair {
            clamped_counts: 1,
            ..ProfileRepair::default()
        })
    );
    // And the clamp really is the documented ceiling.
    let mut fixed = p.clone();
    fixed.repair_against(&m);
    assert_eq!(fixed.direct_count(d), COUNT_CLAMP);
}

#[test]
fn saturated_indirect_count_names_site_and_target_and_is_clamped() {
    let (m, _, i, _) = module();
    let p = profile_from_json(
        r#"{
            "direct": [[0, 1]],
            "indirect": [[1, [{"target": 0, "count": 18446744073709551615}]]],
            "entries": [[0, 1]],
            "returns": [[0, 1]]
        }"#,
    );

    let issue = strict_error(&m, &p);
    assert_eq!(
        issue,
        ProfileIssue::SaturatedIndirect {
            site: i,
            target: FuncId::from_raw(0)
        }
    );
    let text = issue.to_string();
    assert!(text.contains("site1") && text.contains("@f0"), "{text}");

    assert_eq!(
        repair_report(&m, &p),
        Some(ProfileRepair {
            clamped_counts: 1,
            ..ProfileRepair::default()
        })
    );
}

#[test]
fn dangling_func_names_the_function_and_is_dropped() {
    let (m, d, i, leaf) = module();
    let mut p = clean(d, i, leaf);
    p.record_entry(FuncId::from_raw(55));

    let issue = strict_error(&m, &p);
    assert_eq!(
        issue,
        ProfileIssue::DanglingFunc {
            func: FuncId::from_raw(55)
        }
    );
    assert!(issue.to_string().contains("@f55"), "{issue}");

    assert_eq!(
        repair_report(&m, &p),
        Some(ProfileRepair {
            dropped_funcs: 1,
            ..ProfileRepair::default()
        })
    );
}

#[test]
fn saturated_func_count_names_the_function_and_is_clamped() {
    let (m, _, _, leaf) = module();
    let p = profile_from_json(
        r#"{
            "direct": [[0, 1]],
            "indirect": [[1, [{"target": 0, "count": 1}]]],
            "entries": [[0, 18446744073709551615]],
            "returns": [[0, 1]]
        }"#,
    );
    assert_eq!(p.entry_count(leaf), u64::MAX);

    let issue = strict_error(&m, &p);
    assert_eq!(issue, ProfileIssue::SaturatedFunc { func: leaf });
    assert!(issue.to_string().contains("@f0"), "{issue}");

    assert_eq!(
        repair_report(&m, &p),
        Some(ProfileRepair {
            clamped_counts: 1,
            ..ProfileRepair::default()
        })
    );
}

#[test]
fn empty_profile_is_rejected_by_strict_but_safe_under_repair() {
    let (m, _, _, _) = module();
    let p = Profile::new();

    // Advisory, but it is still the first (only) issue, so strict mode —
    // which refuses to build from *any* flagged profile — surfaces it.
    assert_eq!(strict_error(&m, &p), ProfileIssue::Empty);

    // Repair mode builds: an empty profile is safe (no optimization
    // candidates, everything stays defended). There was nothing to fix, so
    // the attached report records zero actions.
    let report = repair_report(&m, &p).expect("not-clean profile attaches a report");
    assert_eq!(report, ProfileRepair::default());
    assert!(!report.changed());
}

#[test]
fn a_clean_profile_attaches_no_repair_report() {
    let (m, d, i, leaf) = module();
    let p = clean(d, i, leaf);
    assert!(p.validate_against(&m).is_clean());
    assert_eq!(repair_report(&m, &p), None);
}
