//! Bit-identity of the CoW + parallel pipeline.
//!
//! The copy-on-write module storage and the threaded per-function stages
//! (harden, DCE liveness, verify) are pure performance work: a build at any
//! thread count must produce *exactly* the image a sequential build
//! produces — byte-identical printed modules and equal pass statistics.
//! These tests pin that contract on three populations: a generated kernel,
//! the committed difftest corpus fixtures, and a seeded difftest window.

use pibe::experiments::Lab;
use pibe::{Image, PibeConfig};
use pibe_difftest::{fixture, gen_case, oracle_config, profile_case, GenConfig};
use pibe_harden::DefenseSet;
use pibe_ir::Module;
use pibe_profile::{Budget, Profile};
use std::fs;
use std::path::PathBuf;

/// Thread counts the parallel merge must be invariant over (1 is the
/// sequential reference itself; 7 is deliberately not a power of two).
const THREADS: [usize; 3] = [2, 4, 7];

/// Builds `config` over (`module`, `profile`) at `threads` stage threads.
fn build(module: &Module, profile: &Profile, config: PibeConfig, threads: usize) -> Image {
    Image::builder(module)
        .profile(profile)
        .config(config)
        .threads(threads)
        .build()
        .unwrap_or_else(|e| panic!("build at {threads} threads failed: {e}"))
}

/// Asserts a parallel build equals the sequential reference: the printed
/// module byte-for-byte, and every pass statistic the image carries.
fn assert_bit_identical(reference: &Image, parallel: &Image, what: &str) {
    assert_eq!(
        reference.module.to_string(),
        parallel.module.to_string(),
        "{what}: printed modules differ"
    );
    assert_eq!(
        reference.icp_stats, parallel.icp_stats,
        "{what}: ICP stats differ"
    );
    assert_eq!(
        reference.inline_stats, parallel.inline_stats,
        "{what}: inliner stats differ"
    );
    assert_eq!(
        reference.dce_stats, parallel.dce_stats,
        "{what}: DCE stats differ"
    );
    assert_eq!(
        reference.harden_report, parallel.harden_report,
        "{what}: harden report differs"
    );
    assert_eq!(reference.audit, parallel.audit, "{what}: audit differs");
    assert_eq!(reference.size, parallel.size, "{what}: image size differs");
}

/// Configurations spanning every stage combination the pipeline offers.
fn config_sweep() -> Vec<(&'static str, PibeConfig)> {
    vec![
        ("lto+all", PibeConfig::lto_with(DefenseSet::ALL)),
        (
            "icp99+retpolines",
            PibeConfig::icp_only(Budget::P99, DefenseSet::RETPOLINES),
        ),
        (
            "full99+all+dce",
            PibeConfig::full(Budget::P99, DefenseSet::ALL).with_dce(true),
        ),
        (
            "lax+all+dce",
            PibeConfig::lax(DefenseSet::ALL).with_dce(true),
        ),
    ]
}

#[test]
fn kernel_builds_are_bit_identical_across_thread_counts() {
    let lab = Lab::test();
    for (name, config) in config_sweep() {
        let reference = build(&lab.kernel.module, &lab.profile, config, 1);
        for threads in THREADS {
            let parallel = build(&lab.kernel.module, &lab.profile, config, threads);
            assert_bit_identical(
                &reference,
                &parallel,
                &format!("kernel/{name} at {threads} threads"),
            );
        }
    }
}

#[test]
fn corpus_fixtures_build_bit_identically_in_parallel() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing corpus dir {}: {e}", dir.display()))
        .map(|e| e.expect("readable corpus dir").path())
        .filter(|p| p.extension().is_some_and(|x| x == "pibecase"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 3, "corpus unexpectedly small");
    for path in entries {
        let text = fs::read_to_string(&path).expect("readable fixture");
        let case = fixture::from_text(&text)
            .unwrap_or_else(|e| panic!("{} is malformed: {e}", path.display()));
        let profile = profile_case(&case);
        let reference = build(&case.module, &profile, oracle_config(), 1);
        for threads in THREADS {
            let parallel = build(&case.module, &profile, oracle_config(), threads);
            assert_bit_identical(
                &reference,
                &parallel,
                &format!("{} at {threads} threads", path.display()),
            );
        }
    }
}

#[test]
fn seeded_difftest_window_builds_bit_identically() {
    let cfg = GenConfig::default();
    for seed in 0..8u64 {
        let case = gen_case(seed, &cfg);
        let profile = profile_case(&case);
        let reference = build(&case.module, &profile, oracle_config(), 1);
        for threads in THREADS {
            let parallel = build(&case.module, &profile, oracle_config(), threads);
            assert_bit_identical(
                &reference,
                &parallel,
                &format!("seed {seed} at {threads} threads"),
            );
        }
    }
}
