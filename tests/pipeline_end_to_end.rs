//! End-to-end pipeline invariants across crates: the transformations must
//! preserve program semantics, keep the IR valid, and stay deterministic.

use pibe::{Image, PibeConfig};
use pibe_harden::DefenseSet;
use pibe_kernel::measure::{collect_profile, run_latency};
use pibe_kernel::workloads::{lmbench_suite, Benchmark, WorkloadSpec};
use pibe_kernel::{Kernel, KernelSpec, Syscall};
use pibe_profile::{Budget, Profile};
use pibe_sim::SimConfig;

fn lab() -> (Kernel, Profile) {
    let kernel = Kernel::generate(KernelSpec::test());
    let profile = collect_profile(
        &kernel,
        &WorkloadSpec::lmbench(),
        &lmbench_suite(8),
        2,
        0xBA5E,
    )
    .expect("profiling succeeds");
    (kernel, profile)
}

/// Inlining and promotion may not change *what* the program computes: the
/// number of executed compute ops under an identical seeded workload must
/// be bit-for-bit identical before and after every optimization level.
#[test]
fn transformations_preserve_executed_ops() {
    let (kernel, profile) = lab();
    let workload = WorkloadSpec::lmbench();
    let bench = Benchmark {
        syscall: Syscall::Open,
        iterations: 30,
        warmup: 0,
    };
    let ops_of = |module: &pibe_ir::Module| {
        let (_, stats, _) =
            run_latency(module, &kernel, &workload, bench, SimConfig::default(), 99)
                .expect("run succeeds");
        stats.ops
    };
    let base_ops = ops_of(&kernel.module);
    assert!(base_ops > 0);
    for config in [
        PibeConfig::icp_only(Budget::P99_9, DefenseSet::NONE),
        PibeConfig::full(Budget::P99_9, DefenseSet::NONE),
        PibeConfig::lax(DefenseSet::NONE),
        PibeConfig::lax(DefenseSet::ALL),
    ] {
        let image = Image::builder(&kernel.module)
            .profile(&profile)
            .config(config)
            .build()
            .expect("pipeline preserves validity");
        assert_eq!(
            ops_of(&image.module),
            base_ops,
            "executed compute ops changed under {config:?}"
        );
    }
}

/// Same seed, same spec → identical images and identical measurements.
#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let (kernel, profile) = lab();
        let image = Image::builder(&kernel.module)
            .profile(&profile)
            .config(PibeConfig::lax(DefenseSet::ALL))
            .build()
            .expect("pipeline preserves validity");
        let bench = Benchmark {
            syscall: Syscall::Tcp,
            iterations: 10,
            warmup: 2,
        };
        let (lat, stats, _) = run_latency(
            &image.module,
            &kernel,
            &WorkloadSpec::lmbench(),
            bench,
            SimConfig {
                defenses: DefenseSet::ALL,
                ..SimConfig::default()
            },
            7,
        )
        .expect("run succeeds");
        (
            image.module.code_bytes(),
            image.module.len(),
            lat.cycles_per_iter.to_bits(),
            stats.insts,
        )
    };
    assert_eq!(run(), run());
}

/// Every image the pipeline can produce verifies structurally.
#[test]
fn all_paper_configs_produce_valid_images() {
    let (kernel, profile) = lab();
    let all = DefenseSet::ALL;
    let configs = [
        PibeConfig::lto(),
        PibeConfig::lto_with(all),
        PibeConfig::icp_only(Budget::P99, DefenseSet::RETPOLINES),
        PibeConfig::icp_only(Budget::P99_999, DefenseSet::RETPOLINES),
        PibeConfig::full(Budget::P99, all),
        PibeConfig::full(Budget::P99_9, all),
        PibeConfig::full(Budget::P99_9999, all),
        PibeConfig::lax(all),
        PibeConfig::pibe_baseline(),
    ];
    for config in configs {
        let image = Image::builder(&kernel.module)
            .profile(&profile)
            .config(config)
            .build()
            .expect("pipeline preserves validity");
        image
            .module
            .verify()
            .unwrap_or_else(|e| panic!("invalid image under {config:?}: {e}"));
    }
}

/// Higher budgets elide at least as much and grow the image at least as
/// much (Table 8 / Table 12 monotonicity).
#[test]
fn budget_monotonicity() {
    let (kernel, profile) = lab();
    let mut prev_inlined = 0;
    let mut prev_bytes = 0;
    for budget in [Budget::P99, Budget::P99_9, Budget::P99_9999] {
        let image = Image::builder(&kernel.module)
            .profile(&profile)
            .config(PibeConfig::full(budget, DefenseSet::ALL))
            .build()
            .expect("pipeline preserves validity");
        let inl = image.inline_stats.expect("inliner ran");
        assert!(
            inl.inlined_sites >= prev_inlined,
            "inlined sites decreased at {budget}"
        );
        assert!(
            image.module.code_bytes() >= prev_bytes,
            "image shrank at {budget}"
        );
        prev_inlined = inl.inlined_sites;
        prev_bytes = image.module.code_bytes();
    }
}

/// The profile must survive a serialization round trip and still drive the
/// pipeline to the identical image (the artifact stores profiles on disk
/// between the profiling and optimization runs).
#[test]
fn profile_roundtrip_reproduces_the_image() {
    let (kernel, profile) = lab();
    let json = profile.to_json();
    let reloaded = Profile::from_json(&json).expect("profile parses back");
    assert_eq!(profile, reloaded);
    let build = |p: &Profile| {
        Image::builder(&kernel.module)
            .profile(p)
            .config(PibeConfig::lax(DefenseSet::ALL))
            .build()
            .expect("pipeline preserves validity")
    };
    let a = build(&profile);
    let b = build(&reloaded);
    assert_eq!(a.module.code_bytes(), b.module.code_bytes());
    assert_eq!(a.inline_stats, b.inline_stats);
    assert_eq!(a.icp_stats, b.icp_stats);
}
