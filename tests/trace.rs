//! Observability guarantees: the span tree a traced build records is
//! deterministic for a fixed seed, and the Chrome trace-event export is
//! well-formed JSON that Perfetto can load (per-track events properly
//! nested, one named track per farm worker).

use pibe::{Image, ImageFarm, PibeConfig};
use pibe_harden::DefenseSet;
use pibe_kernel::measure::collect_profile;
use pibe_kernel::workloads::{lmbench_suite, WorkloadSpec};
use pibe_kernel::{Kernel, KernelSpec};
use pibe_profile::{Budget, Profile};
use serde_json::Value;
use std::sync::Mutex;

/// The tracer is process-global; tests that record serialize on this and
/// leave the tracer disabled and drained behind them.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn lab() -> (Kernel, Profile) {
    let kernel = Kernel::generate(KernelSpec::test());
    let profile = collect_profile(
        &kernel,
        &WorkloadSpec::lmbench(),
        &lmbench_suite(8),
        2,
        0xBA5E,
    )
    .expect("profiling succeeds");
    (kernel, profile)
}

const STAGES: [&str; 8] = [
    "stage.validate",
    "stage.clone",
    "stage.icp",
    "stage.inline",
    "stage.harden",
    "stage.audit",
    "stage.size",
    "stage.verify",
];

/// Two single-threaded builds of the same configuration from the same
/// fixed-seed kernel/profile record the identical span forest: same track,
/// same nesting depths, same names, in the same order.
#[test]
fn span_tree_is_deterministic_for_a_fixed_seed() {
    let _g = lock();
    let (kernel, profile) = lab();
    let config = PibeConfig::full(Budget::P99_9, DefenseSet::ALL);

    let mut runs = Vec::new();
    for _ in 0..2 {
        pibe_trace::set_enabled(true);
        pibe_trace::set_track_name("test");
        let _ = pibe_trace::take();
        Image::builder(&kernel.module)
            .profile(&profile)
            .config(config)
            .build()
            .expect("traced build succeeds");
        pibe_trace::set_enabled(false);
        runs.push(pibe_trace::take().structure());
    }

    assert!(!runs[0].is_empty(), "a traced build records spans");
    assert_eq!(runs[0], runs[1], "span structure diverges across runs");
    for stage in STAGES {
        assert!(
            runs[0].iter().any(|(_, _, name)| name == stage),
            "missing span for {stage}"
        );
    }
    // Stage spans nest under the top-level pipeline span.
    let build_depth = runs[0]
        .iter()
        .find(|(_, _, name)| name == "pipeline.build")
        .expect("pipeline.build span recorded")
        .1;
    assert!(runs[0]
        .iter()
        .filter(|(_, _, name)| name.starts_with("stage."))
        .all(|(_, depth, _)| *depth > build_depth));
}

/// The Chrome trace-event export of a parallel farm build parses as JSON,
/// names one track per worker, covers every pipeline stage, and keeps each
/// track's complete (`ph:"X"`) events properly nested.
#[test]
fn chrome_export_is_wellformed_and_covers_the_farm() {
    let _g = lock();
    let (kernel, profile) = lab();
    pibe_trace::set_enabled(true);
    pibe_trace::set_track_name("test");
    let _ = pibe_trace::take();

    let farm = ImageFarm::new(kernel.module, profile).with_threads(2);
    let configs = vec![
        PibeConfig::lto_with(DefenseSet::ALL),
        PibeConfig::full(Budget::P99_9, DefenseSet::ALL),
        PibeConfig::lax(DefenseSet::ALL),
        PibeConfig::pibe_baseline(),
    ];
    farm.images(&configs).expect("matrix builds");
    pibe_trace::set_enabled(false);
    let json = pibe_trace::take().to_chrome_json();

    let doc: Value = serde_json::from_str(&json).expect("chrome JSON parses");
    let Some(Value::Array(events)) = doc.get("traceEvents") else {
        panic!("traceEvents is not an array");
    };
    assert!(!events.is_empty());

    // One named thread track per farm worker.
    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| str_field(e, "ph") == Some("M") && str_field(e, "name") == Some("thread_name"))
        .filter_map(|e| e.get("args").and_then(|a| str_field(a, "name")))
        .collect();
    for worker in ["worker-0", "worker-1"] {
        assert!(
            thread_names.contains(&worker),
            "missing thread_name metadata for {worker} in {thread_names:?}"
        );
    }

    // Every pipeline stage shows up as at least one complete event.
    let spans: Vec<&Value> = events
        .iter()
        .filter(|e| str_field(e, "ph") == Some("X"))
        .collect();
    for stage in STAGES {
        assert!(
            spans.iter().any(|e| str_field(e, "name") == Some(stage)),
            "no X event for {stage}"
        );
    }

    // Per track, X events are properly nested: sorted by start time
    // (longest first on ties), a span either sits inside the enclosing one
    // or starts after it ends.
    let mut tids: Vec<u64> = spans.iter().map(|e| num_field(e, "tid") as u64).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(tids.len() >= 2, "expected one span track per worker");
    for tid in tids {
        let mut track: Vec<(f64, f64)> = spans
            .iter()
            .filter(|e| num_field(e, "tid") as u64 == tid)
            .map(|e| {
                let ts = num_field(e, "ts");
                (ts, ts + num_field(e, "dur"))
            })
            .collect();
        track.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut open: Vec<f64> = Vec::new();
        for (start, end) in track {
            while open.last().is_some_and(|&top_end| top_end <= start) {
                open.pop();
            }
            if let Some(&top_end) = open.last() {
                assert!(
                    end <= top_end,
                    "span [{start}, {end}] straddles its parent's end {top_end} on tid {tid}"
                );
            }
            open.push(end);
        }
    }
}

/// The string value of an object field, when present and a string.
fn str_field<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.get(key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// The numeric value of an object field; panics when absent (every Chrome
/// `X` event must carry ts/dur/tid).
fn num_field(v: &Value, key: &str) -> f64 {
    match v.get(key) {
        Some(Value::U64(n)) => *n as f64,
        Some(Value::I64(n)) => *n as f64,
        Some(Value::F64(n)) => *n,
        other => panic!("field {key} is not a number: {other:?}"),
    }
}

/// Tracing off is the default: a build with `PIBE_TRACE` unset records
/// nothing at all.
#[test]
fn disabled_tracing_records_nothing() {
    let _g = lock();
    pibe_trace::set_enabled(false);
    let _ = pibe_trace::take();
    let (kernel, profile) = lab();
    Image::builder(&kernel.module)
        .profile(&profile)
        .config(PibeConfig::pibe_baseline())
        .build()
        .expect("build succeeds");
    assert!(pibe_trace::take().is_empty());
}
