//! Property-based tests over the whole stack: random programs, random
//! profiles, and random transformations must uphold the workspace's core
//! invariants.
//!
//! Random programs come from `pibe_difftest::gen` — the *same* seeded
//! generator the differential fuzzer uses (`crates/difftest`). The
//! [`pibe_difftest::gen::plans`] strategy adapter draws one seed from the
//! property-test RNG and expands it through the shared generator, so the
//! property tests and the fuzzer cover an identical program distribution.

use pibe_difftest::gen::{self, FnPlan, GenConfig, IndirectSite};
use pibe_ir::{size, FnAttrs, FuncId, FunctionBuilder, Module, OpKind, SiteId};
use pibe_passes::{
    inline_call_site, promote_indirect_calls, run_inliner, IcpConfig, InlinerConfig, SiteWeights,
};
use pibe_profile::{select_by_budget, Budget, Profile};
use pibe_sim::{MapResolver, SimConfig, Simulator};
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Random program generation (shared with the difftest fuzzer)
// ---------------------------------------------------------------------------

fn cfg(min_funcs: usize, max_funcs: usize) -> GenConfig {
    GenConfig {
        min_funcs,
        max_funcs,
        ..GenConfig::default()
    }
}

/// Builds the module for a plan list; see [`gen::build_module`].
fn build_module(plans: &[FnPlan]) -> (Module, Vec<IndirectSite>, FuncId) {
    gen::build_module(plans)
}

fn resolver_for(m: &Module, isites: &[IndirectSite]) -> MapResolver {
    let mut r = MapResolver::new();
    // Every indirect site targets the two leaf-most functions *earlier than
    // its owner*, keeping the dynamic call graph acyclic.
    let _ = m;
    for is in isites {
        let t0 = FuncId::from_raw(0);
        let t1 = FuncId::from_raw(((is.owner - 1) as u32).min(1));
        r.insert(is.site, vec![(t0, 3), (t1, 1)]);
    }
    r
}

fn profile_of(m: &Module, isites: &[IndirectSite], root: FuncId, runs: u32) -> Profile {
    let cfg = SimConfig {
        collect_profile: true,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(m, resolver_for(m, isites), 7, cfg);
    for _ in 0..runs {
        sim.call_entry(root).expect("generated program runs");
    }
    sim.take_profile()
}

fn executed_ops(m: &Module, isites: &[IndirectSite], root: FuncId, runs: u32) -> u64 {
    let mut sim = Simulator::new(m, resolver_for(m, isites), 99, SimConfig::default());
    for _ in 0..runs {
        sim.call_entry(root).expect("generated program runs");
    }
    sim.stats().ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generator-constructed programs always verify.
    #[test]
    fn random_modules_verify(plans in gen::plans(cfg(1, 20))) {
        let (m, _isites, _root) = build_module(&plans);
        prop_assert!(m.verify().is_ok());
    }

    /// The full optimization pipeline preserves validity and the exact
    /// count of executed compute ops — semantics preservation, on random
    /// programs.
    #[test]
    fn pipeline_preserves_semantics(plans in gen::plans(cfg(2, 16))) {
        let (m, isites, root) = build_module(&plans);
        let profile = profile_of(&m, &isites, root, 20);
        let base_ops = executed_ops(&m, &isites, root, 20);

        let mut opt = m.clone();
        let mut weights = SiteWeights::from_profile(&profile);
        promote_indirect_calls(
            &mut opt,
            &mut weights,
            &profile,
            &IcpConfig { budget: Budget::P99_9999, max_targets_per_site: None },
        );
        prop_assert!(opt.verify().is_ok());
        run_inliner(
            &mut opt,
            &weights,
            &profile,
            &InlinerConfig { budget: Budget::P99_9999, ..InlinerConfig::default() },
        );
        prop_assert!(opt.verify().is_ok());
        prop_assert_eq!(executed_ops(&opt, &isites, root, 20), base_ops);
    }

    /// Inlining any single existing non-self direct call site keeps the
    /// module valid, never shrinks the caller, and removes exactly that
    /// call.
    #[test]
    fn single_inline_is_sound(plans in gen::plans(cfg(2, 16))) {
        let (mut m, _isites, _root) = build_module(&plans);
        // Find any non-self direct call (the generator also emits guarded
        // self-recursion, which inline_call_site rightly refuses).
        let mut found = None;
        'outer: for f in m.functions() {
            for inst in f.iter_insts() {
                if let pibe_ir::Inst::Call { site, callee, .. } = inst {
                    if *callee != f.id() {
                        found = Some((f.id(), *site, *callee));
                        break 'outer;
                    }
                }
            }
        }
        if let Some((caller, site, _callee)) = found {
            let cost_before = size::function_cost(m.function(caller));
            let info = inline_call_site(&mut m, caller, site).expect("inline succeeds");
            prop_assert_eq!(info.caller, caller);
            prop_assert!(m.verify().is_ok());
            prop_assert!(size::function_cost(m.function(caller)) + 10 >= cost_before);
        }
    }

    /// The simulator is deterministic and defense costs are monotone:
    /// adding a defense never makes execution cheaper.
    #[test]
    fn defenses_monotone_on_random_programs(plans in gen::plans(cfg(2, 12))) {
        use pibe_harden::DefenseSet;
        let (m, isites, root) = build_module(&plans);
        let cycles = |d: DefenseSet| {
            let cfg = SimConfig { defenses: d, ..SimConfig::default() };
            let mut sim = Simulator::new(&m, resolver_for(&m, &isites), 5, cfg);
            let mut total = 0;
            for _ in 0..10 {
                total += sim.call_entry(root).expect("program runs");
            }
            total
        };
        let none = cycles(DefenseSet::NONE);
        prop_assert_eq!(none, cycles(DefenseSet::NONE), "determinism");
        prop_assert!(cycles(DefenseSet::RETPOLINES) >= none);
        prop_assert!(cycles(DefenseSet::RET_RETPOLINES) >= none);
        prop_assert!(cycles(DefenseSet::LVI_CFI) >= none);
        let all = cycles(DefenseSet::ALL);
        prop_assert!(all >= cycles(DefenseSet::LVI_CFI));
        prop_assert!(all >= cycles(DefenseSet::RET_RETPOLINES));
    }
}

// ---------------------------------------------------------------------------
// Budget and profile properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The budget selection covers at least the requested fraction of the
    /// total weight, picks a hottest-first prefix, and is monotone in the
    /// budget.
    #[test]
    fn budget_selection_properties(
        weights in vec(0u64..10_000, 1..60),
        pct_idx in 0usize..4,
    ) {
        let budgets = [Budget::P99, Budget::P99_9, Budget::P99_999, Budget::P99_9999];
        let budget = budgets[pct_idx];
        let cands: Vec<(usize, u64)> =
            weights.iter().copied().enumerate().collect();
        let total: u128 = weights.iter().map(|w| u128::from(*w)).sum();
        let selected = select_by_budget(&cands, budget);

        // Coverage.
        let covered: u128 = selected.iter().map(|(_, w)| u128::from(*w)).sum();
        let needed = (total as f64) * budget.fraction();
        prop_assert!(covered as f64 >= needed - 1.0, "covered {covered} of {total}");

        // Hottest-first prefix: nothing unselected is strictly hotter than
        // something selected.
        if let Some(min_selected) = selected.iter().map(|(_, w)| *w).min() {
            let selected_ids: std::collections::HashSet<usize> =
                selected.iter().map(|(i, _)| *i).collect();
            for (i, w) in &cands {
                if !selected_ids.contains(i) {
                    prop_assert!(*w <= min_selected);
                }
            }
        }

        // No zero weights selected.
        prop_assert!(selected.iter().all(|(_, w)| *w > 0));

        // Monotone in budget.
        let smaller = select_by_budget(&cands, Budget::P99);
        prop_assert!(smaller.len() <= select_by_budget(&cands, Budget::P99_9999).len());
    }

    /// Profile JSON round trips are lossless for arbitrary contents, and
    /// merging is commutative.
    #[test]
    fn profile_roundtrip_and_merge(
        directs in vec((0u64..500, 1u64..50), 0..40),
        indirects in vec((0u64..500, 0u32..30, 1u64..20), 0..40),
    ) {
        let mut a = Profile::new();
        let mut b = Profile::new();
        for (i, (site, n)) in directs.iter().enumerate() {
            let p = if i % 2 == 0 { &mut a } else { &mut b };
            for _ in 0..*n {
                p.record_direct(SiteId::from_raw(*site));
            }
        }
        for (i, (site, target, n)) in indirects.iter().enumerate() {
            let p = if i % 3 == 0 { &mut a } else { &mut b };
            for _ in 0..*n {
                p.record_indirect(SiteId::from_raw(*site), FuncId::from_raw(*target));
            }
        }
        // Round trip.
        let a2 = Profile::from_json(&a.to_json()).expect("parses");
        prop_assert_eq!(&a, &a2);
        // Merge commutativity.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// The textual IR round-trips: print → parse → print is a fixpoint and
    /// reconstructs equal functions — over the rich generator grammar
    /// (switches, attributes, dead blocks and all).
    #[test]
    fn text_format_roundtrips(plans in gen::plans(cfg(1, 12))) {
        let (m, _isites, _root) = build_module(&plans);
        let text = m.to_string();
        let parsed = pibe_ir::parse_module(&text).expect("printer output parses");
        prop_assert_eq!(parsed.len(), m.len());
        for (a, b) in m.functions().iter().zip(parsed.functions()) {
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(parsed.to_string(), text);
        prop_assert!(parsed.verify().is_ok());
    }

    /// Inline cost is additive over blocks and strictly positive for
    /// nonempty functions; code layout never overlaps functions.
    #[test]
    fn size_model_properties(op_counts in vec(1usize..40, 1..12)) {
        let mut m = Module::new("sizes");
        for (i, ops) in op_counts.iter().enumerate() {
            let mut b = FunctionBuilder::new(format!("f{i}"), 0);
            b.ops(OpKind::Alu, *ops);
            b.ret();
            m.add_function(b.build());
        }
        let layout = size::Layout::of(&m);
        let mut prev_end = 0u64;
        for f in m.functions() {
            prop_assert!(size::function_cost(f) >= 5);
            let base = layout.func_base(f.id());
            prop_assert!(base >= prev_end, "functions must not overlap");
            prop_assert_eq!(base % 16, 0);
            prev_end = base + size::function_bytes(f);
        }
        prop_assert!(layout.total_bytes() >= prev_end);
    }
}

// ---------------------------------------------------------------------------
// Attribute-respecting transforms
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `noinline`/`optnone` attributes are always respected regardless of
    /// weights.
    #[test]
    fn attributes_always_respected(weight in 1u64..100_000) {
        let mut m = Module::new("attrs");
        let mut b = FunctionBuilder::new("callee", 0);
        b.attrs(FnAttrs { noinline: true, ..FnAttrs::default() });
        b.op(OpKind::Alu);
        b.ret();
        let callee = m.add_function(b.build());
        let s = m.fresh_site();
        let mut b = FunctionBuilder::new("caller", 0);
        b.call(s, callee, 0);
        b.ret();
        m.add_function(b.build());

        let mut p = Profile::new();
        for _ in 0..weight.min(10_000) {
            p.record_direct(s);
            p.record_entry(callee);
        }
        let w = SiteWeights::from_profile(&p);
        let stats = run_inliner(
            &mut m,
            &w,
            &p,
            &InlinerConfig { lax_heuristics: true, ..InlinerConfig::default() },
        );
        prop_assert_eq!(stats.inlined_sites, 0);
        prop_assert!(stats.blocked_other_weight > 0);
        // The call is still there.
        let caller = m.find_function("caller").expect("caller exists");
        prop_assert_eq!(
            m.function(caller)
                .iter_insts()
                .filter(|i| i.is_call())
                .count(),
            1
        );
    }

    /// ICP never touches inline-assembly sites, never misses its promoted
    /// weight accounting, and the guard chain always ends in a fallback.
    #[test]
    fn icp_accounting_is_consistent(counts in vec(1u64..500, 1..6)) {
        let mut m = Module::new("icp");
        let mut targets = Vec::new();
        for i in 0..counts.len() {
            let mut b = FunctionBuilder::new(format!("t{i}"), 0);
            b.ret();
            targets.push(m.add_function(b.build()));
        }
        let site = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call_indirect(site, 0);
        b.ret();
        let root = m.add_function(b.build());

        let mut p = Profile::new();
        for (t, c) in targets.iter().zip(&counts) {
            for _ in 0..*c {
                p.record_indirect(site, *t);
            }
        }
        let mut w = SiteWeights::new();
        let stats = promote_indirect_calls(
            &mut m,
            &mut w,
            &p,
            &IcpConfig { budget: Budget::new(100.0).unwrap(), max_targets_per_site: None },
        );
        prop_assert_eq!(stats.promoted_sites, 1);
        prop_assert_eq!(stats.promoted_targets, counts.len() as u64);
        prop_assert_eq!(stats.promoted_weight, counts.iter().sum::<u64>());
        prop_assert!(m.verify().is_ok());
        // Weights table now carries every promoted site's estimate.
        prop_assert_eq!(w.len(), counts.len());
        // Exactly one resolved fallback exists.
        let fallbacks = m
            .function(root)
            .iter_insts()
            .filter(|i| matches!(i, pibe_ir::Inst::CallIndirect { resolved: true, .. }))
            .count();
        prop_assert_eq!(fallbacks, 1);
    }
}

// ---------------------------------------------------------------------------
// Arena IR core: interning and pool index stability
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Interning is idempotent and resolves back to the interned text: two
    /// interns of equal strings yield the same `Symbol`, distinct strings
    /// yield distinct symbols, and `as_str`/`lookup` round-trip exactly.
    #[test]
    fn symbol_intern_resolve_round_trips(raw in vec(0u16..u16::MAX, 1..24)) {
        use pibe_ir::Symbol;
        // Draw from a small name space so collisions (equal strings) are
        // exercised alongside distinct ones.
        let names: Vec<String> = raw.iter().map(|r| format!("sym_{}", r % 512)).collect();
        let symbols: Vec<Symbol> = names.iter().map(|n| Symbol::intern(n)).collect();
        for (name, &sym) in names.iter().zip(&symbols) {
            prop_assert_eq!(sym.as_str(), name.as_str());
            prop_assert_eq!(Symbol::intern(name), sym);
            prop_assert_eq!(Symbol::lookup(name), Some(sym));
        }
        for (i, a) in names.iter().enumerate() {
            for (j, b) in names.iter().enumerate() {
                prop_assert_eq!(a == b, symbols[i] == symbols[j]);
            }
        }
    }

    /// Pool indices stay coherent under random instruction pushes and
    /// removals: every `BlockId` keeps addressing the same logical block, a
    /// shadow `Vec<Vec<Inst>>` model matches the per-block views and the
    /// block-ordered walk, and the function still verifies.
    #[test]
    fn pool_indices_stable_under_push_remove(
        sizes in vec(0usize..6, 1..8),
        edits in vec((0u16..u16::MAX, 0u16..u16::MAX, proptest::bool::ANY), 0..32),
    ) {
        use pibe_ir::{BlockId, Inst, Terminator};
        let nblocks = sizes.len();
        let mut m = Module::new("pool");
        let mut b = FunctionBuilder::new("f", 0);
        let ids: Vec<BlockId> = (1..nblocks).map(|_| b.new_block()).collect();
        let mut shadow: Vec<Vec<Inst>> = Vec::with_capacity(nblocks);
        for (i, &n) in sizes.iter().enumerate() {
            if i > 0 {
                b.switch_to(ids[i - 1]);
            }
            b.ops(OpKind::Alu, n);
            shadow.push(vec![Inst::Op(OpKind::Alu); n]);
            // Chain every block to the next; the last returns.
            match ids.get(i) {
                Some(&next) => b.jump(next),
                None => b.ret(),
            }
        }
        let fid = m.add_function(b.build());

        let f = m.function_mut(fid);
        for (bsel, isel, push) in edits {
            let bid = BlockId::from_raw((bsel as usize % nblocks) as u32);
            let block = &mut shadow[bid.index()];
            if push {
                let idx = isel as usize % (block.len() + 1);
                f.insert_inst(bid, idx, Inst::Op(OpKind::Load));
                block.insert(idx, Inst::Op(OpKind::Load));
            } else if !block.is_empty() {
                let idx = isel as usize % block.len();
                let got = f.remove_inst(bid, idx);
                prop_assert_eq!(got, block.remove(idx));
            }
        }

        let f = m.function(fid);
        prop_assert_eq!(f.num_blocks(), nblocks);
        // Per-block views agree with the shadow model...
        for (i, block) in shadow.iter().enumerate() {
            let bid = BlockId::from_raw(i as u32);
            prop_assert_eq!(f.block_insts(bid), block.as_slice());
            prop_assert_eq!(f.block(bid).len(), block.len());
        }
        // ...as do the block-ordered walk and the pool totals.
        let walked: Vec<Inst> = f.iter_insts().cloned().collect();
        let flat: Vec<Inst> = shadow.iter().flatten().cloned().collect();
        prop_assert_eq!(walked, flat);
        prop_assert_eq!(f.inst_count(), shadow.iter().map(Vec::len).sum::<usize>());
        // Terminators survived the repacking: the chain still verifies.
        for i in 0..nblocks - 1 {
            let bid = BlockId::from_raw(i as u32);
            prop_assert_eq!(
                f.term(bid),
                &Terminator::Jump { target: BlockId::from_raw(i as u32 + 1) }
            );
        }
        prop_assert!(m.verify().is_ok());
    }
}
