//! The parallel experiment engine must be an invisible optimization:
//! images served by a multi-threaded [`ImageFarm`] have to be
//! bit-identical to images built sequentially, and every distinct
//! configuration must be built exactly once no matter how often — or how
//! concurrently — it is requested.

use pibe::{Image, ImageFarm, PibeConfig};
use pibe_harden::DefenseSet;
use pibe_kernel::measure::collect_profile;
use pibe_kernel::workloads::{lmbench_suite, WorkloadSpec};
use pibe_kernel::{Kernel, KernelSpec};
use pibe_profile::{Budget, Profile};
use std::sync::Arc;

fn lab() -> (Kernel, Profile) {
    let kernel = Kernel::generate(KernelSpec::test());
    let profile = collect_profile(
        &kernel,
        &WorkloadSpec::lmbench(),
        &lmbench_suite(8),
        2,
        0xBA5E,
    )
    .expect("profiling succeeds");
    (kernel, profile)
}

/// Every paper configuration family, including duplicates to exercise the
/// cache.
fn matrix() -> Vec<PibeConfig> {
    let all = DefenseSet::ALL;
    vec![
        PibeConfig::lto(),
        PibeConfig::lto_with(all),
        PibeConfig::lto_with(DefenseSet::RETPOLINES),
        PibeConfig::icp_only(Budget::P99, DefenseSet::RETPOLINES),
        PibeConfig::icp_only(Budget::P99_999, DefenseSet::RETPOLINES),
        PibeConfig::full(Budget::P99, all),
        PibeConfig::full(Budget::P99_9, all),
        PibeConfig::full(Budget::P99_9999, all),
        PibeConfig::lax(all),
        PibeConfig::pibe_baseline(),
        PibeConfig::lax(all), // duplicate
        PibeConfig::lto(),    // duplicate
    ]
}

/// A parallel farm produces exactly the images a sequential build does:
/// same code bytes, same sizes, same pass statistics, same audit.
#[test]
fn parallel_farm_matches_sequential_builds() {
    let (kernel, profile) = lab();
    let configs = matrix();

    let farm = ImageFarm::new(kernel.module.clone(), profile.clone()).with_threads(4);
    let parallel = farm.images(&configs).expect("matrix builds");

    for (config, built) in configs.iter().zip(&parallel) {
        let sequential = Image::builder(&kernel.module)
            .profile(&profile)
            .config(*config)
            .build()
            .expect("pipeline preserves validity");
        assert_eq!(
            built.module.code_bytes(),
            sequential.module.code_bytes(),
            "code bytes diverge under {config:?}"
        );
        assert_eq!(
            built.size, sequential.size,
            "sizes diverge under {config:?}"
        );
        assert_eq!(
            built.icp_stats, sequential.icp_stats,
            "icp stats diverge under {config:?}"
        );
        assert_eq!(
            built.inline_stats, sequential.inline_stats,
            "inline stats diverge under {config:?}"
        );
        assert_eq!(
            built.audit, sequential.audit,
            "audit diverges under {config:?}"
        );
    }
}

/// Duplicate configurations — across and within request batches — resolve
/// to the same cached `Arc`, and the farm runs the pipeline exactly once
/// per distinct configuration.
#[test]
fn farm_builds_each_distinct_config_exactly_once() {
    let (kernel, profile) = lab();
    let configs = matrix();
    let distinct = 10;

    let farm = ImageFarm::new(kernel.module, profile).with_threads(4);
    let images = farm.images(&configs).expect("matrix builds");
    assert_eq!(images.len(), configs.len());

    // In-batch duplicates share storage.
    assert!(Arc::ptr_eq(&images[8], &images[10]), "lax(ALL) duplicated");
    assert!(Arc::ptr_eq(&images[0], &images[11]), "lto() duplicated");

    let stats = farm.stats();
    assert_eq!(
        stats.builds, distinct,
        "one pipeline run per distinct config"
    );
    assert_eq!(stats.cached, distinct as usize);
    assert_eq!(stats.requests, configs.len() as u64);

    // Later single requests are cache hits on the same Arc.
    let again = farm
        .image(&PibeConfig::lax(DefenseSet::ALL))
        .expect("cached");
    assert!(Arc::ptr_eq(&again, &images[8]));
    assert_eq!(farm.stats().builds, distinct, "no rebuild on re-request");

    // Every stage left a wall-clock trace.
    let metrics = farm.aggregate_metrics();
    assert!(metrics.total_ns > 0);
    for (stage, ns) in metrics.stages() {
        assert!(ns > 0, "stage {stage} was never timed");
    }
}
