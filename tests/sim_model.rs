//! Behavioural tests of the machine model: the simulator's costs must stay
//! consistent with the calibrated defense deltas and with basic
//! microarchitectural intuition.

use pibe_harden::{costs, DefenseSet};
use pibe_ir::{Cond, FuncId, FunctionBuilder, Module, OpKind, SiteId};
use pibe_sim::{FixedResolver, MapResolver, SimConfig, SimError, Simulator};

fn leaf_module(ops: usize) -> (Module, FuncId) {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", 0);
    b.ops(OpKind::Alu, ops);
    b.ret();
    let f = m.add_function(b.build());
    (m, f)
}

#[test]
fn op_costs_add_up_exactly() {
    // alu=1 each, ret=2, plus the function's entry bookkeeping; measure the
    // *difference* between two op counts to isolate the per-op cost.
    let (m10, f10) = leaf_module(10);
    let (m60, f60) = leaf_module(60);
    let run = |m: &Module, f: FuncId| {
        let mut sim = Simulator::new(m, FixedResolver(f), 1, SimConfig::default());
        sim.call_entry(f).unwrap();
        sim.call_entry(f).unwrap() // warm: no icache misses
    };
    let warm10 = run(&m10, f10);
    let warm60 = run(&m60, f60);
    assert_eq!(warm60 - warm10, 50, "each ALU op costs exactly one cycle");
}

#[test]
fn fence_ops_cost_more_than_alu() {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("fenced", 0);
    b.op(OpKind::Fence);
    b.ret();
    let fenced = m.add_function(b.build());
    let mut b = FunctionBuilder::new("plain", 0);
    b.op(OpKind::Alu);
    b.ret();
    let plain = m.add_function(b.build());
    let run = |f: FuncId| {
        let mut sim = Simulator::new(&m, FixedResolver(f), 1, SimConfig::default());
        sim.call_entry(f).unwrap();
        sim.call_entry(f).unwrap()
    };
    assert!(
        run(fenced) > run(plain) + 5,
        "lfence serialises the pipeline"
    );
}

#[test]
fn stack_overflow_is_reported_not_crashed() {
    // A chain deeper than max_depth.
    let mut m = Module::new("m");
    let mut prev: Option<FuncId> = None;
    for i in 0..40u64 {
        let mut b = FunctionBuilder::new(format!("d{i}"), 0);
        if let Some(p) = prev {
            b.call(SiteId::from_raw(i), p, 0);
        }
        b.ret();
        prev = Some(m.add_function(b.build()));
    }
    let top = prev.unwrap();
    let cfg = SimConfig {
        max_depth: 16,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&m, FixedResolver(top), 1, cfg);
    assert_eq!(sim.call_entry(top), Err(SimError::StackOverflow(16)));
    // The simulator remains usable afterwards.
    let shallow = FuncId::from_raw(0);
    assert!(sim.call_entry(shallow).is_ok());
}

#[test]
fn jump_table_switch_is_cheaper_warm_than_long_compare_chain() {
    // A 8-way switch, lowered both ways; warm execution should favour the
    // table (one indexed jump vs up to 8 compares).
    let build = |via_table: bool| {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("sw", 0);
        let cases: Vec<_> = (0..8).map(|_| b.new_block()).collect();
        let exit = b.new_block();
        b.op(OpKind::Alu);
        // Weight the LAST case so the chain pays its full length.
        let mut weights = vec![0u16; 8];
        weights[7] = 1;
        b.switch(weights, cases.clone(), 0, exit, via_table);
        for c in &cases {
            b.switch_to(*c);
            b.jump(exit);
        }
        b.switch_to(exit);
        b.ret();
        let f = m.add_function(b.build());
        (m, f)
    };
    let run = |via_table: bool| {
        let (m, f) = build(via_table);
        let mut sim = Simulator::new(&m, FixedResolver(f), 3, SimConfig::default());
        for _ in 0..10 {
            sim.call_entry(f).unwrap();
        }
        sim.call_entry(f).unwrap()
    };
    assert!(
        run(true) < run(false),
        "warm jump table beats compare chain"
    );
}

#[test]
fn defense_deltas_match_the_calibrated_cost_model() {
    // caller -> icall(leaf); measure per-defense warm deltas and compare
    // against pibe_harden::costs exactly.
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("leaf", 0);
    b.ret();
    let leaf = m.add_function(b.build());
    let s = m.fresh_site();
    let mut b = FunctionBuilder::new("caller", 0);
    b.call_indirect(s, 0);
    b.ret();
    let caller = m.add_function(b.build());

    let warm = |d: DefenseSet| {
        let cfg = SimConfig {
            defenses: d,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&m, FixedResolver(leaf), 1, cfg);
        for _ in 0..4 {
            sim.call_entry(caller).unwrap();
        }
        sim.call_entry(caller).unwrap()
    };
    let base = warm(DefenseSet::NONE);
    for d in DefenseSet::EVALUATED {
        // 1 icall + 2 returns (leaf's and caller's) per invocation.
        let expected = costs::forward_delta(d) + 2 * costs::return_delta(d);
        assert_eq!(
            warm(d) - base,
            expected,
            "defense {d} must cost exactly its calibrated delta"
        );
    }
}

#[test]
fn map_resolver_respects_weights_statistically() {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("a", 0);
    b.ret();
    let a = m.add_function(b.build());
    let mut b = FunctionBuilder::new("b", 0);
    b.ret();
    let bf = m.add_function(b.build());
    let s = m.fresh_site();
    let mut b = FunctionBuilder::new("root", 0);
    b.call_indirect(s, 0);
    b.ret();
    let root = m.add_function(b.build());

    let mut r = MapResolver::new();
    r.insert(s, vec![(a, 9), (bf, 1)]);
    let cfg = SimConfig {
        collect_profile: true,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&m, r, 1234, cfg);
    for _ in 0..1000 {
        sim.call_entry(root).unwrap();
    }
    let p = sim.take_profile();
    let vp = p.value_profile(s);
    assert_eq!(vp[0].target, a, "the 90% target dominates");
    let share = vp[0].count as f64 / 1000.0;
    assert!((share - 0.9).abs() < 0.05, "observed share {share}");
}

#[test]
fn eibrs_toll_is_charged_per_indirect_call() {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("leaf", 0);
    b.ret();
    let leaf = m.add_function(b.build());
    let s = m.fresh_site();
    let mut b = FunctionBuilder::new("caller", 0);
    b.call_indirect(s, 0);
    b.ret();
    let caller = m.add_function(b.build());
    let warm = |eibrs: bool| {
        let cfg = SimConfig {
            eibrs,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&m, FixedResolver(leaf), 1, cfg);
        for _ in 0..4 {
            sim.call_entry(caller).unwrap();
        }
        sim.call_entry(caller).unwrap()
    };
    assert_eq!(warm(true) - warm(false), 2, "one icall, two cycles of toll");
}

#[test]
fn branch_probability_drives_taken_frequency() {
    let mut m = Module::new("m");
    let mut b = FunctionBuilder::new("f", 0);
    let taken = b.new_block();
    let not = b.new_block();
    let exit = b.new_block();
    b.branch(Cond::Random { ptaken_milli: 250 }, taken, not);
    b.switch_to(taken);
    b.ops(OpKind::Load, 30); // expensive taken path
    b.jump(exit);
    b.switch_to(not);
    b.op(OpKind::Alu);
    b.jump(exit);
    b.switch_to(exit);
    b.ret();
    let f = m.add_function(b.build());
    let mut sim = Simulator::new(&m, FixedResolver(f), 9, SimConfig::default());
    let mut total = 0;
    for _ in 0..2000 {
        total += sim.call_entry(f).unwrap();
    }
    let avg = total as f64 / 2000.0;
    // Expected ≈ base + 0.25 * (30 loads) vs 0.75 * (1 alu).
    let heavy = 30.0 * 3.0;
    let light = 1.0;
    let expected_extra = 0.25 * heavy + 0.75 * light;
    assert!(
        (avg - expected_extra).abs() < heavy * 0.2 + 8.0,
        "avg {avg} vs expected extra {expected_extra}"
    );
}
