//! Offline `serde` shim: a JSON-like self-describing [`Value`] data model
//! with [`Serialize`]/[`Deserialize`] traits and derive macros.
//!
//! This is **not** wire-compatible with real serde in every corner (maps
//! with non-string keys are encoded as sorted `[key, value]` pair arrays),
//! but every format produced by this workspace is also consumed by it, so
//! round trips are lossless — which is what the tests assert.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order (duplicates preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected, and in which type context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn msg(s: impl Into<String>) -> Self {
        DeError(s.into())
    }

    /// Creates an "expected X while deserializing Y" error.
    pub fn expected(what: &str, ctx: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ctx}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type out of `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value used when a struct field is absent. `None` means the
    /// field is required; `Option<T>` overrides this to default to `None`
    /// (mirroring serde's implicit-optional behavior).
    #[doc(hidden)]
    fn missing() -> Option<Self> {
        None
    }
}

// -- derive-support helpers (referenced by generated code) ------------------

/// Extracts and deserializes field `key` from object entries `obj`.
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    obj: &[(String, Value)],
    key: &str,
    ctx: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => T::missing().ok_or_else(|| DeError(format!("missing field `{key}` in {ctx}"))),
    }
}

/// Builds the externally-tagged `{tag: payload}` object for enum variants.
#[doc(hidden)]
pub fn __tagged(tag: &str, payload: Value) -> Value {
    Value::Object(vec![(tag.to_string(), payload)])
}

// -- primitive impls --------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t)))?,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(n) => Ok(*n),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

// -- composite impls --------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::expected("fixed-length array", "array"))
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($i),+].len();
                match v {
                    Value::Array(a) if a.len() == LEN => {
                        Ok(($($t::from_value(&a[$i])?,)+))
                    }
                    _ => Err(DeError::expected("tuple array", "tuple")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Maps serialize as a **sorted** array of `[key, value]` pairs so hash-map
/// iteration order never leaks into the output (JSON objects require
/// string keys; the workspace keys maps by numeric ids).
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(String, Value)> = entries
        .map(|(k, v)| {
            let kv = k.to_value();
            (
                crate::compact_key(&kv),
                Value::Array(vec![kv, v.to_value()]),
            )
        })
        .collect();
    pairs.sort_by(|(a, _), (b, _)| a.cmp(b));
    Value::Array(pairs.into_iter().map(|(_, v)| v).collect())
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    match v {
        Value::Array(a) => a
            .iter()
            .map(|pair| match pair {
                Value::Array(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                _ => Err(DeError::expected("[key, value] pair", "map")),
            })
            .collect(),
        _ => Err(DeError::expected("array of pairs", "map")),
    }
}

/// A canonical sort key for map keys (compact rendering of the key value).
fn compact_key(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        // Zero-pad so lexicographic order matches numeric order.
        Value::U64(n) => format!("u{n:020}"),
        Value::I64(n) => format!("i{n:+021}"),
        Value::F64(n) => format!("f{n:?}"),
        Value::Str(s) => format!("s{s}"),
        Value::Array(a) => a.iter().map(compact_key).collect::<Vec<_>>().join(","),
        Value::Object(m) => m
            .iter()
            .map(|(k, v)| format!("{k}:{}", compact_key(v)))
            .collect::<Vec<_>>()
            .join(","),
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
