//! Offline `crossbeam` shim: the `thread::scope` API this workspace uses,
//! implemented over `std::thread::scope` (stable since Rust 1.63).
//!
//! Behavioral difference from real crossbeam: a panicking child thread
//! propagates its panic out of `scope` directly instead of surfacing as
//! `Err` in the returned `Result` — callers here only `.expect()` the
//! result, so the observable effect (test/process aborts with the panic)
//! is the same.

pub mod thread {
    /// A scope in which child threads borrowing the environment can be
    /// spawned. Mirrors `crossbeam::thread::Scope`: spawn closures receive
    /// the scope back as their argument so they can spawn nested work.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped child thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller's
    /// stack. All children are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut slots = vec![0u64; 8];
        super::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u64 + 1;
                });
            }
        })
        .unwrap();
        assert_eq!(slots, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
