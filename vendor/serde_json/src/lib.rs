//! Offline `serde_json` shim: JSON text encoding and decoding for the
//! vendored [`serde::Value`] data model.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

#[doc(hidden)]
pub use serde::Serialize as __Serialize;

/// JSON encode/decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Constructs an error from a caller-supplied message, mirroring
    /// `serde::de::Error::custom` on the real crate (used by decoders that
    /// layer semantic validation on top of the JSON grammar).
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(n: f64, out: &mut String) -> Result<(), Error> {
    if !n.is_finite() {
        return Err(Error::new("JSON cannot represent non-finite numbers"));
    }
    // `{:?}` prints the shortest representation that round-trips, and
    // always includes a `.0` or exponent for integral floats.
    out.push_str(&format!("{n:?}"));
    Ok(())
}

fn encode(v: &Value, pretty: bool, indent: usize, out: &mut String) -> Result<(), Error> {
    let pad = |n: usize| "  ".repeat(n);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(*n, out)?,
        Value::Str(s) => escape_into(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
            } else if pretty {
                out.push_str("[\n");
                for (i, e) in a.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    encode(e, pretty, indent + 1, out)?;
                    out.push_str(if i + 1 < a.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad(indent));
                out.push(']');
            } else {
                out.push('[');
                for (i, e) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode(e, pretty, indent, out)?;
                }
                out.push(']');
            }
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
            } else if pretty {
                out.push_str("{\n");
                for (i, (k, e)) in m.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    escape_into(k, out);
                    out.push_str(": ");
                    encode(e, pretty, indent + 1, out)?;
                    out.push_str(if i + 1 < m.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad(indent));
                out.push('}');
            } else {
                out.push('{');
                for (i, (k, e)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    encode(e, pretty, indent, out)?;
                }
                out.push('}');
            }
        }
    }
    Ok(())
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    encode(&value.to_value(), false, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    encode(&value.to_value(), true, 0, &mut out)?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':'")?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: only handle the BMP + paired case.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_lit("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let hex2 = std::str::from_utf8(hex2)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                let lo = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                self.pos += 4;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|n| Value::I64(-n))
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

/// Builds a [`Value`] from a JSON-shaped literal. Supports object literals
/// with string-literal keys, array literals, `null`, and arbitrary
/// `Serialize` expressions as leaves — the shapes this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__Serialize::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::__Serialize::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::__Serialize::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(3)),
            (
                "b".into(),
                Value::Array(vec![Value::I64(-1), Value::F64(1.5)]),
            ),
            ("c".into(), Value::Str("x\n\"y\"".into())),
            ("d".into(), Value::Null),
            ("e".into(), Value::Bool(true)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let n = 42u32;
        let v = json!({ "n": n, "list": [1u8, 2u8] });
        assert_eq!(v.get("n"), Some(&Value::U64(42)));
    }
}
