//! Offline `rand` shim. Implements a deterministic xoshiro256++ generator
//! behind the `SmallRng` name plus the small slice of the `rand 0.8` API this
//! workspace uses (`SeedableRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen_bool`, `Rng::gen`). Streams differ from upstream `rand`; all
//! in-repo consumers only require determinism, not a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a "standard" uniform distribution for `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 random bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic small-state RNG: xoshiro256++ seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

// Unbiased bounded sampling via Lemire's widening-multiply method with
// rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types uniformly samplable from a half-open or inclusive range. A single
/// blanket `SampleRange` impl hangs off this trait so type inference unifies
/// integer literals in the range with the surrounding expression (matching
/// real rand's behavior) instead of falling back to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` if `!inclusive`, else `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi - lo) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + bounded_u64(rng, span + 1) as $t
                } else {
                    lo + bounded_u64(rng, span) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i64).wrapping_add(bounded_u64(rng, span + 1) as i64) as $t
                } else {
                    (lo as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `rand::rngs` module, mirroring upstream layout (`rand::rngs::SmallRng`).
pub mod rngs {
    pub use super::SmallRng;
}

pub mod prelude {
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SmallRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
