//! Offline `parking_lot` shim: `Mutex` and `RwLock` with the parking_lot
//! surface (no poisoning, no `Result` on lock), implemented over
//! `std::sync`. A poisoned std lock (a thread panicked while holding it)
//! is treated as still-usable, matching parking_lot semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len(), b.len());
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
