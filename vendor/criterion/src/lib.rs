//! Offline `criterion` shim: a minimal wall-clock benchmark harness with
//! the criterion 0.5 API surface this workspace uses. Reports mean time per
//! iteration to stdout; no statistical analysis, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// iteration regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Runs `f` with a [`Bencher`] and prints the mean per-iteration time.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Opens a named group; benchmarks in it are printed as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Criterion calls this after all groups; the shim has no finalization.
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
        sample_size,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{id:<40} (no iterations)");
    } else {
        let mean = b.total / b.iters as u32;
        println!(
            "{id:<40} {:>12}/iter ({} iters)",
            fmt_duration(mean),
            b.iters
        );
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iters += 1;
            drop(std_black_box(out));
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.total += start.elapsed();
            self.iters += 1;
            drop(std_black_box(out));
        }
    }
}

/// Declares a group of benchmark functions plus its `Criterion` config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` passes arguments the shim ignores.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u32;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        assert_eq!(count, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 4);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).bench_function("x", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
