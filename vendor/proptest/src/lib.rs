//! Offline `proptest` shim: deterministic random-input property testing
//! with the API subset this workspace uses (`proptest!`, `prop_assert*`,
//! `Strategy`/`prop_map`, integer ranges, tuples, `collection::vec`,
//! `bool::ANY`, `ProptestConfig::with_cases`).
//!
//! Differences from real proptest: no shrinking (a failing case reports the
//! generated inputs via the panic message of the inner assertion only), and
//! the value streams differ. Each test function derives its RNG seed from
//! its own module path + name, so runs are reproducible.

pub mod test_runner {
    use rand::{RngCore, SeedableRng, SmallRng};

    /// Per-`proptest!`-block configuration. Mirrors
    /// `proptest::test_runner::Config` in name and the `cases` knob.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub inner: SmallRng,
    }

    impl TestRng {
        pub fn from_seed_u64(seed: u64) -> Self {
            TestRng {
                inner: SmallRng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// FNV-1a over a test's full name: a stable per-test seed.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, SampleRange};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T: Copy> Strategy for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: Copy> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `proptest::strategy::Just`: always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a uniformly chosen length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The `proptest!` block macro: expands each `fn name(arg in strategy, ...)`
/// into a plain test that runs `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __seed = $crate::test_runner::seed_from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __rng = $crate::test_runner::TestRng::from_seed_u64(__seed);
                for _ in 0..__config.cases {
                    let ($($arg,)*) = $crate::strategy::Strategy::generate(
                        &($($strat,)*),
                        &mut __rng,
                    );
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 3u64..10,
            xs in crate::collection::vec(0usize..5, 1..4),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(xs.iter().all(|v| *v < 5));
        }

        #[test]
        fn prop_map_transforms(y in (1u32..4).prop_map(|v| v * 10)) {
            prop_assert!(y == 10 || y == 20 || y == 30);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        use crate::test_runner::seed_from_name;
        assert_ne!(seed_from_name("a::b"), seed_from_name("a::c"));
    }
}
