//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` shim. No `syn`/`quote`: the item is parsed directly
//! from the `proc_macro::TokenStream` and the impl is emitted as source
//! text. Supported shapes — everything this workspace derives on:
//!
//! * named-field structs            → JSON object
//! * newtype structs (1 field)      → transparent (the inner value)
//! * tuple structs (n > 1 fields)   → JSON array
//! * unit structs                   → `null`
//! * enums (externally tagged): unit variants → string, payload variants
//!   → `{"Variant": payload}` with the same struct rules per variant
//!
//! Generic parameters and `where` clauses are rejected with a compile
//! error; nothing in the workspace needs them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct(String, Fields),
    Enum(String, Vec<(String, Fields)>),
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skips any number of `#[...]` outer attributes (doc comments included).
    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                _ => panic!("serde_derive shim: malformed attribute"),
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected identifier, got {other:?}"),
        }
    }

    /// Skips tokens until a top-level `,` (consumed) or the end, tracking
    /// `<`/`>` nesting so commas inside generic arguments don't split the
    /// field. Parenthesized/bracketed groups are atomic tokens already.
    fn skip_until_comma(&mut self) {
        let mut angle: i64 = 0;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        c.skip_vis();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident();
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected ':' after field {name}, got {other:?}"),
        }
        c.skip_until_comma();
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    let mut n = 0;
    while !c.at_end() {
        c.skip_attrs();
        c.skip_vis();
        if c.at_end() {
            break;
        }
        c.skip_until_comma();
        n += 1;
    }
    n
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (type {name})");
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct(name, fields)
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive shim: expected enum body, got {other:?}"),
            };
            let mut vc = Cursor::new(body);
            let mut variants = Vec::new();
            while !vc.at_end() {
                vc.skip_attrs();
                if vc.at_end() {
                    break;
                }
                let vname = vc.expect_ident();
                let fields = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream()));
                        vc.pos += 1;
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(count_tuple_fields(g.stream()));
                        vc.pos += 1;
                        f
                    }
                    _ => Fields::Unit,
                };
                // Skip an optional `= discriminant` and the trailing comma.
                vc.skip_until_comma();
                variants.push((vname, fields));
            }
            Item::Enum(name, variants)
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

/// `to_value` expression for a set of fields, given an accessor prefix:
/// `&self.` for structs, bare bindings for enum match arms.
fn ser_named(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(""))
}

fn de_named(ty_path: &str, fields: &[String], ctx: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::__field(__obj, \"{f}\", \"{ctx}\")?,"))
        .collect();
    format!("{ty_path} {{ {} }}", inits.join(""))
}

fn derive_serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct(name, Fields::Unit) => format!(
            "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }} }}"
        ),
        Item::Struct(name, Fields::Named(fields)) => {
            let body = ser_named(fields, |f| format!("&self.{f}"));
            format!(
                "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            )
        }
        Item::Struct(name, Fields::Tuple(1)) => format!(
            "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }} }}"
        ),
        Item::Struct(name, Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Array(::std::vec![{}]) }} }}",
                elems.join("")
            )
        }
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__a0) => ::serde::__tagged(\"{v}\", ::serde::Serialize::to_value(__a0)),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__a{i}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::__tagged(\"{v}\", ::serde::Value::Array(::std::vec![{}])),",
                            binds.join(","),
                            elems.join("")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(",");
                        let body = ser_named(fs, |f| f.to_string());
                        format!("{name}::{v}{{{binds}}} => ::serde::__tagged(\"{v}\", {body}),")
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }} }}",
                arms.join("")
            )
        }
    }
}

fn de_tuple(ty_path: &str, n: usize, src: &str, ctx: &str) -> String {
    // `src` is an expression of type &Value expected to be an Array of n.
    let elems: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?,"))
        .collect();
    format!(
        "match {src} {{ ::serde::Value::Array(__arr) if __arr.len() == {n} => \
             ::std::result::Result::Ok({ty_path}({})), \
         _ => ::std::result::Result::Err(::serde::DeError::expected(\"array of {n}\", \"{ctx}\")) }}?",
        elems.join("")
    )
}

fn derive_deserialize_impl(item: &Item) -> String {
    let header = |name: &str, body: &str| {
        format!(
            "impl ::serde::Deserialize for {name} {{ \
               fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
             }}"
        )
    };
    match item {
        Item::Struct(name, Fields::Unit) => header(
            name,
            &format!("let _ = v; ::std::result::Result::Ok({name})"),
        ),
        Item::Struct(name, Fields::Named(fields)) => {
            let init = de_named(name, fields, name);
            header(
                name,
                &format!(
                    "let __obj = match v {{ ::serde::Value::Object(m) => m, \
                       _ => return ::std::result::Result::Err(::serde::DeError::expected(\"object\", \"{name}\")) }}; \
                     ::std::result::Result::Ok({init})"
                ),
            )
        }
        Item::Struct(name, Fields::Tuple(1)) => header(
            name,
            &format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Item::Struct(name, Fields::Tuple(n)) => {
            let body = format!(
                "::std::result::Result::Ok({})",
                de_tuple(name, *n, "v", name)
            );
            header(name, &body)
        }
        Item::Enum(name, variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, fields)| {
                    let ctx = format!("{name}::{v}");
                    let build = match fields {
                        Fields::Tuple(1) => format!(
                            "::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__payload)?))"
                        ),
                        Fields::Tuple(n) => format!(
                            "::std::result::Result::Ok({})",
                            de_tuple(&format!("{name}::{v}"), *n, "__payload", &ctx)
                        ),
                        Fields::Named(fs) => {
                            let init = de_named(&format!("{name}::{v}"), fs, &ctx);
                            format!(
                                "match __payload {{ ::serde::Value::Object(__obj) => \
                                     ::std::result::Result::Ok({init}), \
                                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"object\", \"{ctx}\")) }}"
                            )
                        }
                        Fields::Unit => unreachable!(),
                    };
                    format!("\"{v}\" => {{ {build} }},")
                })
                .collect();
            let body = format!(
                "match v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {} _ => ::std::result::Result::Err(::serde::DeError::expected(\"known unit variant\", \"{name}\")) }}, \
                   ::serde::Value::Object(__m) if __m.len() == 1 => {{ \
                     let (__tag, __payload) = &__m[0]; \
                     match __tag.as_str() {{ \
                       {} _ => ::std::result::Result::Err(::serde::DeError::expected(\"known variant tag\", \"{name}\")) }} }}, \
                   _ => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-key object\", \"{name}\")) }}",
                unit_arms.join(""),
                tagged_arms.join("")
            );
            header(name, &body)
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_impl(&item)
        .parse()
        .expect("serde_derive shim: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_impl(&item)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl parses")
}
