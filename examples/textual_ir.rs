//! Working with the textual IR: print a module, edit it as text, parse it
//! back, and watch the behavioural change in the simulator.
//!
//! The text format round-trips losslessly (`print → parse → print` is a
//! fixpoint), which makes golden-test fixtures and by-hand experiments
//! cheap — here we flip a branch probability in the text and measure the
//! cycle difference.
//!
//! ```text
//! cargo run --example textual_ir
//! ```

use pibe_ir::{parse_module, Cond, FunctionBuilder, Module, OpKind};
use pibe_sim::{FixedResolver, SimConfig, Simulator};

fn main() {
    // A function with a rarely-taken slow path.
    let mut m = Module::new("textual");
    let mut b = FunctionBuilder::new("slow_path", 0);
    b.ops(OpKind::Load, 50);
    b.ret();
    let slow = m.add_function(b.build());

    let site = m.fresh_site();
    let mut b = FunctionBuilder::new("entry", 0);
    let slow_bb = b.new_block();
    let done = b.new_block();
    b.ops(OpKind::Alu, 10);
    b.branch(Cond::Random { ptaken_milli: 50 }, slow_bb, done);
    b.switch_to(slow_bb);
    b.call(site, slow, 0);
    b.jump(done);
    b.switch_to(done);
    b.ret();
    let entry = m.add_function(b.build());

    let text = m.to_string();
    println!("== original IR ==\n{text}");

    // Edit as text: the slow path becomes the common case.
    let edited = text.replace("p=50‰", "p=950‰");
    let hot = parse_module(&edited).expect("edited IR parses");
    hot.verify().expect("edited IR is valid");

    let measure = |module: &Module| {
        let mut sim = Simulator::new(module, FixedResolver(slow), 7, SimConfig::default());
        let mut total = 0;
        for _ in 0..1000 {
            total += sim.call_entry(entry).expect("runs");
        }
        total as f64 / 1000.0
    };
    let cold = measure(&m);
    let hot_cycles = measure(&hot);
    println!("cycles/invocation with p=5%:  {cold:.1}");
    println!("cycles/invocation with p=95%: {hot_cycles:.1}");
    assert!(hot_cycles > cold);

    // Round trip sanity: parsing the printer's output reproduces it.
    let reparsed = parse_module(&m.to_string()).expect("parses");
    assert_eq!(reparsed.to_string(), m.to_string());
    println!("\nprint → parse → print is a fixpoint ✓");
}
