//! Security evaluation demo: which dynamic branch executions could an
//! attacker hijack under each defense posture? (§8.6)
//!
//! Runs the LMBench suite against four kernels — undefended, retpolines
//! only, and fully hardened with and without PIBE — counting every
//! executed indirect branch an attacker could poison (BTB for Spectre V2,
//! RSB for Ret2spec, unfenced loads for LVI). The fully hardened kernels
//! are clean except for the paravirt inline-assembly hypercalls, which no
//! compiler-based defense can reach (Table 11's residual 41 sites).
//!
//! ```text
//! cargo run --release --example attack_surface
//! ```

use pibe::experiments::Lab;
use pibe::{eval, PibeConfig};
use pibe_harden::DefenseSet;
use pibe_kernel::KernelSpec;
use pibe_sim::SimConfig;

fn main() {
    let lab = Lab::new(KernelSpec::test(), 8, 2).expect("profiling run succeeds");
    println!(
        "{:>26} | {:>12} | {:>12} | {:>12} | {:>12}",
        "kernel", "V2 icalls", "V2 ijumps", "ret2spec", "LVI loads"
    );
    println!("{}", "-".repeat(88));

    let postures: [(&str, PibeConfig); 4] = [
        ("undefended LTO", PibeConfig::lto()),
        (
            "retpolines only",
            PibeConfig::lto_with(DefenseSet::RETPOLINES),
        ),
        ("all defenses", PibeConfig::lto_with(DefenseSet::ALL)),
        ("all defenses + PIBE", PibeConfig::lax(DefenseSet::ALL)),
    ];

    for (name, config) in postures {
        let image = lab.image(&config);
        let report = eval::lmbench_attack_surface(
            &image.module,
            &lab.kernel,
            &lab.workload,
            &lab.suite,
            SimConfig {
                defenses: config.defenses,
                ..SimConfig::default()
            },
            lab.seed,
        );
        println!(
            "{:>26} | {:>12} | {:>12} | {:>12} | {:>12}",
            name,
            report.btb_hijackable_icalls,
            report.btb_hijackable_ijumps,
            report.rsb_hijackable_rets,
            report.lvi_injectable
        );
    }

    // The kernel's ad-hoc alternative for backward edges: RSB refilling
    // (§6.4). It blocks userspace-to-kernel poisoning but stops helping
    // once a deep call chain overflows the RSB — unlike return retpolines.
    let lto = lab.image(&PibeConfig::lto());
    let refill_report = eval::lmbench_attack_surface(
        &lto.module,
        &lab.kernel,
        &lab.workload,
        &lab.suite,
        SimConfig {
            rsb_refill: true,
            ..SimConfig::default()
        },
        lab.seed,
    );
    println!(
        "{:>26} | {:>12} | {:>12} | {:>12} | {:>12}",
        "RSB refilling only",
        refill_report.btb_hijackable_icalls,
        refill_report.btb_hijackable_ijumps,
        refill_report.rsb_hijackable_rets,
        refill_report.lvi_injectable
    );

    println!(
        "\nThe residual hijackable executions under 'all defenses' come from the \
         paravirt\ninline-assembly hypercall sites the compiler cannot instrument; \
         inlining under\nPIBE duplicates those sites (Table 11), so the count can \
         *rise* even as every\ncompiler-visible branch stays protected."
    );

    // Static view (Table 11).
    let unopt = lab.image(&PibeConfig::lto_with(DefenseSet::ALL));
    let pibe = lab.image(&PibeConfig::lax(DefenseSet::ALL));
    println!(
        "\nstatic audit (all defenses):        unoptimized            PIBE\n  \
         protected icalls {:>18} {:>18}\n  vulnerable icalls{:>18} {:>18}\n  \
         vulnerable ijumps{:>18} {:>18}",
        unopt.audit.protected_icalls,
        pibe.audit.protected_icalls,
        unopt.audit.vulnerable_icalls,
        pibe.audit.vulnerable_icalls,
        unopt.audit.vulnerable_ijumps,
        pibe.audit.vulnerable_ijumps,
    );
}
