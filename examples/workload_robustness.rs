//! Workload robustness (§8.4): what happens when the profiling workload
//! does not match deployment?
//!
//! Trains one kernel on an ApacheBench-like workload and one on LMBench,
//! hardens both comprehensively, then evaluates *both* under LMBench.
//! The paper's finding, reproduced here: the mismatched profile loses some
//! of the win (22.5% vs 10.6% in the paper) but remains an order of
//! magnitude better than no optimization (149.1%) — because hot kernel
//! paths overlap across workloads.
//!
//! ```text
//! cargo run --release --example workload_robustness
//! ```

use pibe::experiments::{robustness, Lab};
use pibe_kernel::KernelSpec;
use pibe_profile::{overlap, Budget};

fn main() {
    let lab = Lab::new(
        KernelSpec {
            scale: 0.05,
            ..KernelSpec::paper()
        },
        16,
        3,
    )
    .expect("profiling the pristine kernel succeeds");
    let (table, summary) = robustness(&lab, 60).expect("robustness experiment runs");
    println!("{table}");

    println!("paper's numbers for comparison:");
    println!(
        "  shared ICP candidate weight at 99%:     58%   (measured {:.0}%)",
        summary.icp_shared_pct
    );
    println!(
        "  shared inline candidate weight at 99%:  67%   (measured {:.0}%)",
        summary.inline_shared_pct
    );
    println!(
        "  unoptimized, all defenses:              149.1% (measured {:.1}%)",
        summary.unoptimized_pct
    );
    println!(
        "  Apache-trained:                         22.5%  (measured {:.1}%)",
        summary.apache_trained_pct
    );
    println!(
        "  LMBench-trained (matched):              10.6%  (measured {:.1}%)",
        summary.matched_pct
    );
    println!(
        "  default LLVM inliner, matched profile:  100.2% (measured {:.1}%)",
        summary.llvm_inliner_pct
    );

    // Overlap across several budgets, for the curious.
    println!("\ncandidate overlap (LMBench reference vs Apache trained):");
    let apache = pibe_kernel::measure::collect_macro_profile(
        &lab.kernel,
        &pibe_kernel::workloads::WorkloadSpec::apache(),
        &pibe_kernel::workloads::MacroBench::apache(60),
        2,
        lab.seed ^ 0xA9,
    )
    .expect("apache profiling run");
    for budget in [Budget::P99, Budget::P99_9, Budget::P99_9999] {
        let ov = overlap::overlap(&lab.profile, &apache, budget);
        println!(
            "  budget {:>9}: icp {:>5.1}% shared, inlining {:>5.1}% shared",
            budget.to_string(),
            ov.icp_shared_weight * 100.0,
            ov.inline_shared_weight * 100.0
        );
    }
}
