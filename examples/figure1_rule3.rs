//! Figure 1, reproduced: why the inliner needs Rule 3.
//!
//! `bar` has three callees: `foo_1` is hot (weight 1000) but huge (inline
//! cost ~12 000), while `foo_2` and `foo_3` are half as hot (500 each) but
//! tiny. A greedy inliner with only Rules 1–2 inlines `foo_1` first and
//! depletes `bar`'s complexity budget; Rule 3 skips the heavyweight callee
//! so both small ones fit — eliding the same execution weight at a
//! fraction of the code growth.
//!
//! ```text
//! cargo run --example figure1_rule3
//! ```

use pibe_ir::{size, FunctionBuilder, Module, OpKind};
use pibe_passes::{run_inliner, InlinerConfig, SiteWeights};
use pibe_profile::Profile;

fn build() -> (Module, Profile) {
    let mut m = Module::new("figure1");
    let mut foos = Vec::new();
    for (name, ops) in [("foo_1", 2_399usize), ("foo_2", 59), ("foo_3", 39)] {
        let mut b = FunctionBuilder::new(name, 0);
        b.ops(OpKind::Alu, ops);
        b.ret();
        foos.push(m.add_function(b.build()));
    }
    let sites: Vec<_> = (0..3).map(|_| m.fresh_site()).collect();
    let mut b = FunctionBuilder::new("bar", 0);
    for (s, f) in sites.iter().zip(&foos) {
        b.call(*s, *f, 0);
    }
    b.ret();
    m.add_function(b.build());

    let mut p = Profile::new();
    for (i, w) in [1000u64, 500, 500].iter().enumerate() {
        for _ in 0..*w {
            p.record_direct(sites[i]);
            p.record_entry(foos[i]);
        }
    }
    (m, p)
}

fn run(rule3_enabled: bool) {
    let (mut m, p) = build();
    println!(
        "\n-- greedy inliner {} Rule 3 --",
        if rule3_enabled { "WITH" } else { "WITHOUT" }
    );
    for (name, weight) in [("foo_1", 1000), ("foo_2", 500), ("foo_3", 500)] {
        let f = m.find_function(name).expect("callee exists");
        println!(
            "  {name}: weight {weight}, inline cost {}",
            size::function_cost(m.function(f))
        );
    }
    let cfg = InlinerConfig {
        // Disabling Rule 3 = raising its threshold beyond every callee.
        rule3_callee_limit: if rule3_enabled { 3_000 } else { u32::MAX },
        ..InlinerConfig::default()
    };
    let weights = SiteWeights::from_profile(&p);
    let stats = run_inliner(&mut m, &weights, &p, &cfg);
    let bar = m.find_function("bar").expect("bar exists");
    println!(
        "  => inlined {} site(s), elided weight {}, blocked by Rule 2: {}, by Rule 3: {}",
        stats.inlined_sites,
        stats.inlined_weight,
        stats.blocked_rule2_weight,
        stats.blocked_rule3_weight
    );
    println!(
        "  => bar complexity afterwards: {} (threshold 12000)",
        size::function_cost(m.function(bar))
    );
}

fn main() {
    println!("Figure 1: bar -> foo_1 (1000, cost 12000), foo_2 (500, 300), foo_3 (500, 200)");
    run(false);
    run(true);
    println!(
        "\nWithout Rule 3, the 12000-cost foo_1 fills bar's budget and blocks \
         foo_2/foo_3;\nwith Rule 3, both small callees inline — the same 1000 \
         units of weight elided\nwith ~25x less code growth."
    );
}
