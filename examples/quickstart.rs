//! Quickstart: PIBE on a 5-function toy program.
//!
//! Builds a little module with an indirect dispatch and a hot helper,
//! profiles it, runs the PIBE pipeline (indirect call promotion → security
//! inlining → hardening), and shows what changed.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pibe::{Image, PibeConfig};
use pibe_harden::DefenseSet;
use pibe_ir::{FuncId, FunctionBuilder, Module, OpKind, SiteId};
use pibe_profile::{Budget, Profile};
use pibe_sim::{MapResolver, SimConfig, Simulator};

fn main() {
    // -- 1. Build a program: main() dispatches through a function pointer
    //       to fast_path()/slow_path(), each calling a helper.
    let mut module = Module::new("quickstart");
    let mut b = FunctionBuilder::new("helper", 1);
    b.ops(OpKind::Alu, 4);
    b.ret();
    let helper = module.add_function(b.build());

    let mut paths = Vec::new();
    for name in ["fast_path", "slow_path"] {
        let site = module.fresh_site();
        let mut b = FunctionBuilder::new(name, 1);
        b.ops(OpKind::Load, 2);
        b.call(site, helper, 1);
        b.ret();
        paths.push(module.add_function(b.build()));
    }

    let dispatch_site = module.fresh_site();
    let mut b = FunctionBuilder::new("main", 0);
    b.op(OpKind::Mov);
    b.call_indirect(dispatch_site, 1);
    b.ret();
    let main_fn = module.add_function(b.build());
    module.verify().expect("hand-built module is valid");
    println!("== original program ==\n{module}");

    // -- 2. Profile it: fast_path dominates 9:1.
    let profile = run_profiling(&module, main_fn, dispatch_site, &paths);
    println!(
        "profiled {} indirect calls at the dispatch site",
        profile.indirect_count(dispatch_site)
    );

    // -- 3. The PIBE pipeline: promote + inline at a 99.9% budget, then
    //       harden everything that remains with all three defenses.
    let image = Image::builder(&module)
        .profile(&profile)
        .config(PibeConfig::full(Budget::P99_9, DefenseSet::ALL))
        .build()
        .expect("pipeline preserves validity");
    println!("\n== after PIBE ==\n{}", image.module);
    let icp = image.icp_stats.expect("icp ran");
    let inl = image.inline_stats.expect("inliner ran");
    println!(
        "promoted {} targets at {} site(s); inlined {} call site(s)",
        icp.promoted_targets, icp.promoted_sites, inl.inlined_sites
    );
    println!(
        "audit: {} protected icalls, {} protected returns, {} vulnerable",
        image.audit.protected_icalls, image.audit.protected_returns, image.audit.vulnerable_icalls
    );

    // -- 4. Measure: hardened-unoptimized vs hardened-PIBE.
    let baseline = measure(&module, main_fn, dispatch_site, &paths, DefenseSet::NONE);
    let hard_unopt = measure(&module, main_fn, dispatch_site, &paths, DefenseSet::ALL);
    let hard_pibe = measure(
        &image.module,
        main_fn,
        dispatch_site,
        &paths,
        DefenseSet::ALL,
    );
    println!("\ncycles per invocation (warm):");
    println!("  undefended            {baseline:>6.1}");
    println!(
        "  all defenses          {hard_unopt:>6.1}  (+{:.0}%)",
        (hard_unopt - baseline) / baseline * 100.0
    );
    println!(
        "  all defenses + PIBE   {hard_pibe:>6.1}  (+{:.0}%)",
        (hard_pibe - baseline) / baseline * 100.0
    );
}

fn resolver(site: SiteId, paths: &[FuncId]) -> MapResolver {
    let mut r = MapResolver::new();
    r.insert(site, vec![(paths[0], 9), (paths[1], 1)]);
    r
}

fn run_profiling(module: &Module, main_fn: FuncId, site: SiteId, paths: &[FuncId]) -> Profile {
    let cfg = SimConfig {
        collect_profile: true,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(module, resolver(site, paths), 42, cfg);
    for _ in 0..1000 {
        sim.call_entry(main_fn).expect("profiling run succeeds");
    }
    sim.take_profile()
}

fn measure(
    module: &Module,
    main_fn: FuncId,
    site: SiteId,
    paths: &[FuncId],
    defenses: DefenseSet,
) -> f64 {
    let cfg = SimConfig {
        defenses,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(module, resolver(site, paths), 42, cfg);
    for _ in 0..100 {
        sim.call_entry(main_fn).expect("warmup succeeds");
    }
    let mut total = 0;
    for _ in 0..400 {
        total += sim.call_entry(main_fn).expect("measurement succeeds");
    }
    total as f64 / 400.0
}
