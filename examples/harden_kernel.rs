//! End-to-end kernel hardening: the paper's whole pipeline in one run.
//!
//! Generates the synthetic kernel, collects the aggregated LMBench profile,
//! builds three production images (LTO, LTO + all defenses, PIBE + all
//! defenses), and reports the per-benchmark latencies and geometric-mean
//! overheads — a miniature of Tables 2 and 5.
//!
//! ```text
//! cargo run --release --example harden_kernel
//! ```

use pibe::experiments::Lab;
use pibe::PibeConfig;
use pibe_harden::DefenseSet;
use pibe_kernel::KernelSpec;

fn main() {
    println!("generating kernel and collecting the LMBench profile...");
    let lab = Lab::new(
        KernelSpec {
            scale: 0.05,
            ..KernelSpec::paper()
        },
        16,
        3,
    )
    .expect("profiling the pristine kernel succeeds");
    let census = lab.kernel.module.census();
    println!(
        "kernel: {} functions, {} indirect call sites, {} return sites, {} jump tables",
        lab.kernel.module.len(),
        census.indirect_calls,
        census.returns,
        census.indirect_jumps
    );
    println!(
        "profile: {} direct sites, {} indirect sites observed\n",
        lab.profile.stats().direct_sites,
        lab.profile.stats().indirect_sites
    );

    let unopt = lab.image(&PibeConfig::lto_with(DefenseSet::ALL));
    let pibe = lab.image(&PibeConfig::lax(DefenseSet::ALL));

    let unopt_rows = lab.latencies(&unopt);
    let pibe_rows = lab.latencies(&pibe);

    println!(
        "{:>14} | {:>10} | {:>12} | {:>10}",
        "benchmark", "LTO (us)", "all-def (us)", "PIBE (us)"
    );
    println!("{}", "-".repeat(58));
    for ((base, u), p) in lab.lto_latencies.iter().zip(&unopt_rows).zip(&pibe_rows) {
        println!(
            "{:>14} | {:>10.2} | {:>12.2} | {:>10.2}",
            base.name, base.micros, u.micros, p.micros
        );
    }
    println!("{}", "-".repeat(58));
    println!(
        "geomean overhead vs LTO:  all defenses {:+.1}%   PIBE + all defenses {:+.1}%",
        lab.geomean(&unopt_rows),
        lab.geomean(&pibe_rows)
    );

    let inl = pibe.inline_stats.expect("inliner ran");
    let icp = pibe.icp_stats.clone().expect("icp ran");
    println!(
        "\nPIBE elided {} indirect-call targets and {} call/return pairs \
         ({} of candidate weight promoted, image grew {:.1}%)",
        icp.promoted_targets,
        inl.inlined_sites,
        icp.promoted_weight,
        (pibe.module.code_bytes() as f64 / lab.kernel.module.code_bytes() as f64 - 1.0) * 100.0
    );
    println!(
        "residual attack surface: {} vulnerable icalls (paravirt asm), {} vulnerable ijumps",
        pibe.audit.vulnerable_icalls, pibe.audit.vulnerable_ijumps
    );
}
