//! `pibe-suite` — the reproduction's command-line entry point.
//!
//! ```text
//! pibe-suite bench [--scale F] [--iters N] [--rounds N] [--threads N]
//!                  [--repeat N] [--out PATH] [--baseline PATH]
//!                  [--tolerance PCT]
//!
//!   --scale F       kernel scale: 1.0 = the paper's Linux 5.1 census
//!                   (default 0.15)
//!   --iters N       LMBench iterations per benchmark when collecting the
//!                   training profile (default 4)
//!   --rounds N      profiling rounds to aggregate (default 1; paper: 11)
//!   --threads N     per-build stage threads (default: PIBE_BUILD_THREADS
//!                   if set, else the machine's available parallelism)
//!   --repeat N      how many times to rebuild each configuration
//!                   (default 2; timings are summed over all builds)
//!   --out PATH      where to write the JSON record
//!                   (default BENCH_pipeline.json)
//!   --baseline PATH compare against a previously committed record and
//!                   exit 1 on regression
//!   --tolerance PCT per-stage wall-time regression tolerance in percent
//!                   (default 25)
//! ```
//!
//! The `bench` subcommand times the hardening pipeline itself — not the
//! simulated kernel. It generates the synthetic kernel, collects a training
//! profile, then drives [`pibe::Image::builder`] directly (no farm cache, so
//! every iteration is a real build) over a fixed set of configurations that
//! together exercise every pipeline stage. The per-stage wall-clock sums
//! from [`pibe::BuildMetrics`] are printed and written as
//! `BENCH_pipeline.json`, the perf-trajectory record CI regresses against.
//!
//! The record's `stages_ns` aggregate covers the x86 configurations only,
//! so baselines committed before the multi-arch backends remain
//! comparable; the ARM and RISC-V builds of the paper-optimal
//! configuration are timed separately under `arch_stages_ns`.
//!
//! The second subcommand, `serve-bench`, times the continuous-PGO epoch
//! loop instead of individual builds — see [`serve_bench`] for its flags
//! and the `BENCH_serve.json` record it emits.

mod serve_bench;

use pibe::{Arch, BuildMetrics, Image, PibeConfig};
use pibe_harden::DefenseSet;
use pibe_kernel::measure::collect_profile;
use pibe_kernel::workloads::lmbench_suite;
use pibe_kernel::{Kernel, KernelSpec, WorkloadSpec};
use pibe_profile::Budget;
use std::time::Instant;

/// Stages whose baseline time is below this floor are excluded from the
/// regression check: a stage that took under 10ms in the baseline cannot be
/// compared meaningfully in percent across runs (timer noise dominates).
const NOISE_FLOOR_NS: u64 = 10_000_000;

struct Args {
    scale: f64,
    iters: u32,
    rounds: u32,
    threads: Option<usize>,
    repeat: u32,
    out: String,
    baseline: Option<String>,
    tolerance: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: pibe-suite bench [--scale F] [--iters N] [--rounds N] \
         [--threads N] [--repeat N] [--out PATH] [--baseline PATH] \
         [--tolerance PCT]\n\
         \x20      pibe-suite serve-bench [--scales F,F,..] [--epochs N] \
         [--iters N] [--rounds N] [--threads N] [--drift-sites N] \
         [--out PATH] [--baseline PATH] [--tolerance PCT]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        Some("bench") => {}
        Some("serve-bench") => {
            serve_bench::run(it);
            std::process::exit(0);
        }
        _ => usage(),
    }
    let mut args = Args {
        scale: 0.15,
        iters: 4,
        rounds: 1,
        threads: None,
        repeat: 2,
        out: "BENCH_pipeline.json".into(),
        baseline: None,
        tolerance: 25.0,
    };
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => args.scale = val().parse().expect("--scale takes a float"),
            "--iters" => args.iters = val().parse().expect("--iters takes an integer"),
            "--rounds" => args.rounds = val().parse().expect("--rounds takes an integer"),
            "--threads" => {
                args.threads = Some(val().parse().expect("--threads takes a positive integer"));
            }
            "--repeat" => args.repeat = val().parse().expect("--repeat takes an integer"),
            "--out" => args.out = val(),
            "--baseline" => args.baseline = Some(val()),
            "--tolerance" => args.tolerance = val().parse().expect("--tolerance takes a float"),
            _ => usage(),
        }
    }
    assert!(args.repeat >= 1, "--repeat must be at least 1");
    args
}

/// The fixed configuration set: together these exercise every stage the
/// pipeline has (validate, clone, ICP, inlining, DCE, harden, audit, size,
/// verify) from a pure-defense build up to the paper's optimal
/// configuration.
fn bench_configs() -> Vec<(&'static str, PibeConfig)> {
    vec![
        (
            "lto+all",
            PibeConfig::builder().defenses(DefenseSet::ALL).build(),
        ),
        (
            "icp99+retpolines",
            PibeConfig::builder()
                .icp(Budget::P99)
                .defenses(DefenseSet::RETPOLINES)
                .build(),
        ),
        (
            "full99+all+dce",
            PibeConfig::builder()
                .icp(Budget::P99)
                .inliner(Budget::P99)
                .defenses(DefenseSet::ALL)
                .dce(true)
                .build(),
        ),
        (
            "lax+all+dce",
            PibeConfig::builder()
                .lax()
                .defenses(DefenseSet::ALL)
                .dce(true)
                .build(),
        ),
    ]
}

/// The non-x86 builds timed under `arch_stages_ns`: the paper-optimal
/// configuration once per hardware-CFI backend. Kept out of the main
/// aggregate so `stages_ns` stays comparable with pre-multi-arch
/// baselines.
fn arch_bench_configs() -> Vec<(&'static str, PibeConfig)> {
    [Arch::Arm64, Arch::Riscv64]
        .into_iter()
        .map(|arch| {
            (
                arch.name(),
                PibeConfig::builder()
                    .lax()
                    .defenses(DefenseSet::ALL)
                    .dce(true)
                    .arch(arch)
                    .build(),
            )
        })
        .collect()
}

fn stages_json(m: &BuildMetrics) -> serde_json::Value {
    serde_json::Value::Object(
        m.stages()
            .iter()
            .map(|(name, ns)| (String::from(*name), serde_json::json!(*ns)))
            .collect(),
    )
}

fn main() {
    let args = parse_args();
    let threads = args.threads.unwrap_or_else(pibe_ir::par::default_threads);
    assert!(threads >= 1, "--threads must be at least 1");

    println!("; PIBE pipeline bench");
    println!(
        "; kernel scale {}, {} profile iters, {} profiling rounds, \
         {} stage threads, repeat {}",
        args.scale, args.iters, args.rounds, threads, args.repeat
    );

    let t0 = Instant::now();
    let spec = KernelSpec {
        scale: args.scale,
        ..KernelSpec::paper()
    };
    let kernel = Kernel::generate(spec);
    let workload = WorkloadSpec::lmbench();
    let suite = lmbench_suite(args.iters);
    let profile =
        collect_profile(&kernel, &workload, &suite, args.rounds, 0xBA5E).unwrap_or_else(|e| {
            eprintln!("error: profiling run failed: {e}");
            std::process::exit(1);
        });
    eprintln!(
        "[kernel + profile ready in {:.1?}: {} functions]",
        t0.elapsed(),
        kernel.module.len()
    );

    let configs = bench_configs();
    let mut aggregate = BuildMetrics::default();
    let mut per_config: Vec<(&'static str, BuildMetrics)> = Vec::new();
    let mut builds = 0u32;
    for (name, config) in &configs {
        let mut config_metrics = BuildMetrics::default();
        for _ in 0..args.repeat {
            let image = Image::builder(&kernel.module)
                .profile(&profile)
                .config(*config)
                .threads(threads)
                .build()
                .unwrap_or_else(|e| {
                    eprintln!("error: build of {name} failed: {e}");
                    std::process::exit(1);
                });
            config_metrics.accumulate(&image.metrics);
            builds += 1;
        }
        eprintln!(
            "[{name}: {} builds, {:.1}ms total]",
            args.repeat,
            config_metrics.total_ns as f64 / 1e6
        );
        aggregate.accumulate(&config_metrics);
        per_config.push((name, config_metrics));
    }

    let mut per_arch: Vec<(&'static str, BuildMetrics)> = Vec::new();
    for (name, config) in &arch_bench_configs() {
        let mut arch_metrics = BuildMetrics::default();
        for _ in 0..args.repeat {
            let image = Image::builder(&kernel.module)
                .profile(&profile)
                .config(*config)
                .threads(threads)
                .build()
                .unwrap_or_else(|e| {
                    eprintln!("error: build of lax+all+dce@{name} failed: {e}");
                    std::process::exit(1);
                });
            arch_metrics.accumulate(&image.metrics);
        }
        eprintln!(
            "[lax+all+dce@{name}: {} builds, {:.1}ms total]",
            args.repeat,
            arch_metrics.total_ns as f64 / 1e6
        );
        per_arch.push((name, arch_metrics));
    }

    let ms = |ns: u64| format!("{:.1}", ns as f64 / 1e6);
    println!("\n; per-stage wall time summed over {builds} builds");
    for (stage, ns) in aggregate.stages() {
        println!("stage {stage:>8} (ms)  {}", ms(ns));
    }
    println!("total build  (ms)  {}", ms(aggregate.total_ns));
    println!("stage rollbacks    {}", aggregate.rollbacks);
    for (arch, m) in &per_arch {
        println!("arch {arch:>8} (ms)  {}", ms(m.total_ns));
    }

    let doc = serde_json::json!({
        "bench": "pipeline",
        "scale": args.scale,
        "iters": args.iters,
        "rounds": args.rounds,
        "threads": threads,
        "repeat": args.repeat,
        "functions": kernel.module.len(),
        "builds": builds,
        "stages_ns": stages_json(&aggregate),
        "total_ns": aggregate.total_ns,
        "rollbacks": aggregate.rollbacks,
        "arch_stages_ns": serde_json::Value::Object(
            per_arch
                .iter()
                .map(|(arch, m)| (String::from(*arch), stages_json(m)))
                .collect(),
        ),
        "configs": per_config
            .iter()
            .map(|(name, m)| {
                serde_json::json!({
                    "name": *name,
                    "stages_ns": stages_json(m),
                    "total_ns": m.total_ns,
                })
            })
            .collect::<Vec<_>>(),
    });
    std::fs::write(
        &args.out,
        serde_json::to_string_pretty(&doc).expect("bench record serializes"),
    )
    .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!("[wrote {}]", args.out);

    if let Some(path) = &args.baseline {
        let regressions = compare_against_baseline(path, &aggregate, args.tolerance);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("regression: {r}");
            }
            std::process::exit(1);
        }
        println!(
            "; no stage regressed more than {}% vs {path}",
            args.tolerance
        );
    }
}

/// Compares this run's aggregate per-stage times against a committed
/// baseline record, returning one message per stage whose wall time grew by
/// more than `tolerance` percent. Stages below [`NOISE_FLOOR_NS`] in the
/// baseline are skipped — percent comparisons on sub-10ms stages measure
/// timer noise, not the pipeline.
fn compare_against_baseline(path: &str, current: &BuildMetrics, tolerance: f64) -> Vec<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("baseline {path} is not JSON: {e}"));
    let stages = doc
        .get("stages_ns")
        .unwrap_or_else(|| panic!("baseline {path} has no stages_ns object"));
    let mut regressions = Vec::new();
    for (stage, now_ns) in current.stages() {
        let base_ns = match stages.get(stage) {
            Some(serde_json::Value::U64(ns)) => *ns,
            Some(serde_json::Value::I64(ns)) => *ns as u64,
            _ => continue, // stage absent from an older record: nothing to compare
        };
        if base_ns < NOISE_FLOOR_NS {
            continue;
        }
        let limit = base_ns as f64 * (1.0 + tolerance / 100.0);
        if now_ns as f64 > limit {
            regressions.push(format!(
                "stage {stage}: {:.1}ms vs baseline {:.1}ms (+{:.0}%, tolerance {tolerance}%)",
                now_ns as f64 / 1e6,
                base_ns as f64 / 1e6,
                (now_ns as f64 / base_ns as f64 - 1.0) * 100.0,
            ));
        }
    }
    regressions
}
