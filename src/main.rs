//! `pibe-suite` — the reproduction's command-line entry point.
//!
//! ```text
//! pibe-suite bench [--scale F] [--iters N] [--rounds N] [--threads N]
//!                  [--repeat N] [--out PATH] [--baseline PATH]
//!                  [--tolerance PCT]
//!
//!   --scale F       kernel scale: 1.0 = the paper's Linux 5.1 census
//!                   (default 0.15)
//!   --iters N       LMBench iterations per benchmark when collecting the
//!                   training profile (default 4)
//!   --rounds N      profiling rounds to aggregate (default 1; paper: 11)
//!   --threads N     per-build stage threads (default: PIBE_BUILD_THREADS
//!                   if set, else the machine's available parallelism)
//!   --repeat N      how many times to rebuild each configuration
//!                   (default 2; timings are summed over all builds)
//!   --out PATH      where to write the JSON record
//!                   (default BENCH_pipeline.json)
//!   --baseline PATH compare against a previously committed record and
//!                   exit 1 on regression
//!   --tolerance PCT per-stage wall-time regression tolerance in percent
//!                   (default 25)
//! ```
//!
//! The `bench` subcommand times the hardening pipeline itself — not the
//! simulated kernel. It generates the synthetic kernel, collects a training
//! profile, then drives [`pibe::Image::builder`] directly (no farm cache, so
//! every iteration is a real build) over a fixed set of configurations that
//! together exercise every pipeline stage. The per-stage wall-clock sums
//! from [`pibe::BuildMetrics`] are printed and written as
//! `BENCH_pipeline.json`, the perf-trajectory record CI regresses against.
//!
//! The record's `stages_ns` aggregate covers the x86 configurations only,
//! so baselines committed before the multi-arch backends remain
//! comparable; the ARM and RISC-V builds of the paper-optimal
//! configuration are timed separately under `arch_stages_ns`. A set of IR
//! core micro-benchmarks (pool scan, interning, cold/warm verify, size
//! accounting, printing — see [`ir_core_bench`]) lands under `ir_core_ns`
//! and is gated by the same `--baseline`/`--tolerance` comparison.
//!
//! The second subcommand, `serve-bench`, times the continuous-PGO epoch
//! loop instead of individual builds — see [`serve_bench`] for its flags
//! and the `BENCH_serve.json` record it emits.

mod serve_bench;

use pibe::{Arch, BuildMetrics, Image, PibeConfig};
use pibe_harden::DefenseSet;
use pibe_kernel::measure::collect_profile;
use pibe_kernel::workloads::lmbench_suite;
use pibe_kernel::{Kernel, KernelSpec, WorkloadSpec};
use pibe_profile::Budget;
use std::time::Instant;

/// Stages whose baseline time is below this floor are excluded from the
/// regression check: a stage that took under 10ms in the baseline cannot be
/// compared meaningfully in percent across runs (timer noise dominates).
const NOISE_FLOOR_NS: u64 = 10_000_000;

struct Args {
    scale: f64,
    iters: u32,
    rounds: u32,
    threads: Option<usize>,
    repeat: u32,
    out: String,
    baseline: Option<String>,
    tolerance: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: pibe-suite bench [--scale F] [--iters N] [--rounds N] \
         [--threads N] [--repeat N] [--out PATH] [--baseline PATH] \
         [--tolerance PCT]\n\
         \x20      pibe-suite serve-bench [--scales F,F,..] [--epochs N] \
         [--iters N] [--rounds N] [--threads N] [--drift-sites N] \
         [--out PATH] [--baseline PATH] [--tolerance PCT]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        Some("bench") => {}
        Some("serve-bench") => {
            serve_bench::run(it);
            std::process::exit(0);
        }
        _ => usage(),
    }
    let mut args = Args {
        scale: 0.15,
        iters: 4,
        rounds: 1,
        threads: None,
        repeat: 2,
        out: "BENCH_pipeline.json".into(),
        baseline: None,
        tolerance: 25.0,
    };
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => args.scale = val().parse().expect("--scale takes a float"),
            "--iters" => args.iters = val().parse().expect("--iters takes an integer"),
            "--rounds" => args.rounds = val().parse().expect("--rounds takes an integer"),
            "--threads" => {
                args.threads = Some(val().parse().expect("--threads takes a positive integer"));
            }
            "--repeat" => args.repeat = val().parse().expect("--repeat takes an integer"),
            "--out" => args.out = val(),
            "--baseline" => args.baseline = Some(val()),
            "--tolerance" => args.tolerance = val().parse().expect("--tolerance takes a float"),
            _ => usage(),
        }
    }
    assert!(args.repeat >= 1, "--repeat must be at least 1");
    args
}

/// The fixed configuration set: together these exercise every stage the
/// pipeline has (validate, clone, ICP, inlining, DCE, harden, audit, size,
/// verify) from a pure-defense build up to the paper's optimal
/// configuration.
fn bench_configs() -> Vec<(&'static str, PibeConfig)> {
    vec![
        (
            "lto+all",
            PibeConfig::builder().defenses(DefenseSet::ALL).build(),
        ),
        (
            "icp99+retpolines",
            PibeConfig::builder()
                .icp(Budget::P99)
                .defenses(DefenseSet::RETPOLINES)
                .build(),
        ),
        (
            "full99+all+dce",
            PibeConfig::builder()
                .icp(Budget::P99)
                .inliner(Budget::P99)
                .defenses(DefenseSet::ALL)
                .dce(true)
                .build(),
        ),
        (
            "lax+all+dce",
            PibeConfig::builder()
                .lax()
                .defenses(DefenseSet::ALL)
                .dce(true)
                .build(),
        ),
    ]
}

/// The non-x86 builds timed under `arch_stages_ns`: the paper-optimal
/// configuration once per hardware-CFI backend. Kept out of the main
/// aggregate so `stages_ns` stays comparable with pre-multi-arch
/// baselines.
fn arch_bench_configs() -> Vec<(&'static str, PibeConfig)> {
    [Arch::Arm64, Arch::Riscv64]
        .into_iter()
        .map(|arch| {
            (
                arch.name(),
                PibeConfig::builder()
                    .lax()
                    .defenses(DefenseSet::ALL)
                    .dce(true)
                    .arch(arch)
                    .build(),
            )
        })
        .collect()
}

/// Micro-benchmarks of the arena IR's core primitives, run once against the
/// generated kernel module. They complement the pipeline stage sums: stage
/// times move with pass heuristics and config choices, these move only when
/// the IR core itself (pool scans, symbol interning, verification, size
/// accounting, printing) gets slower. Recorded under `ir_core` in the JSON
/// record and gated by the same baseline comparison as the stages.
fn ir_core_bench(module: &pibe_ir::Module, threads: usize) -> Vec<(&'static str, u64)> {
    use std::hint::black_box;
    let time = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        t.elapsed().as_nanos() as u64
    };
    let mut out = Vec::new();

    // Arena scan throughput: one raw-pool pass over every instruction.
    out.push((
        "pool_scan",
        time(&mut || {
            let calls: u64 = module
                .functions()
                .iter()
                .map(|f| {
                    f.insts()
                        .iter()
                        .filter(|i| matches!(i, pibe_ir::Inst::Call { .. }))
                        .count() as u64
                })
                .sum();
            black_box(calls);
        }),
    ));

    // Symbol re-interning: every lookup hits the intern table.
    out.push((
        "intern",
        time(&mut || {
            for f in module.functions() {
                black_box(pibe_ir::Symbol::intern(f.name()));
            }
        }),
    ));

    // Verification with cold analysis caches, then the memoized re-check.
    // The deep copy plus a mutating accessor per function resets the
    // per-function caches so the cold number is deterministic regardless of
    // what earlier builds marked on the shared bodies.
    let mut cold = module.clone();
    for id in module.func_ids().collect::<Vec<_>>() {
        let f = cold.function_mut(id);
        let fb = f.frame_bytes();
        f.set_frame_bytes(fb);
    }
    out.push((
        "verify_cold",
        time(&mut || {
            cold.verify_threaded(threads).expect("kernel verifies");
        }),
    ));
    out.push((
        "verify_warm",
        time(&mut || {
            cold.verify_threaded(threads).expect("kernel verifies");
        }),
    ));

    // Size accounting: cold walk, then the per-function byte cache.
    out.push((
        "size_cold",
        time(&mut || {
            black_box(cold.code_bytes());
        }),
    ));
    out.push((
        "size_warm",
        time(&mut || {
            black_box(cold.code_bytes());
        }),
    ));

    // Textual rendering of the whole module.
    out.push((
        "print",
        time(&mut || {
            black_box(module.to_string().len());
        }),
    ));

    out
}

fn stages_json(m: &BuildMetrics) -> serde_json::Value {
    serde_json::Value::Object(
        m.stages()
            .iter()
            .map(|(name, ns)| (String::from(*name), serde_json::json!(*ns)))
            .collect(),
    )
}

fn main() {
    let args = parse_args();
    let threads = args.threads.unwrap_or_else(pibe_ir::par::default_threads);
    assert!(threads >= 1, "--threads must be at least 1");

    println!("; PIBE pipeline bench");
    println!(
        "; kernel scale {}, {} profile iters, {} profiling rounds, \
         {} stage threads, repeat {}",
        args.scale, args.iters, args.rounds, threads, args.repeat
    );

    let t0 = Instant::now();
    let spec = KernelSpec {
        scale: args.scale,
        ..KernelSpec::paper()
    };
    let kernel = Kernel::generate(spec);
    let workload = WorkloadSpec::lmbench();
    let suite = lmbench_suite(args.iters);
    let profile =
        collect_profile(&kernel, &workload, &suite, args.rounds, 0xBA5E).unwrap_or_else(|e| {
            eprintln!("error: profiling run failed: {e}");
            std::process::exit(1);
        });
    eprintln!(
        "[kernel + profile ready in {:.1?}: {} functions]",
        t0.elapsed(),
        kernel.module.len()
    );

    let configs = bench_configs();
    let mut aggregate = BuildMetrics::default();
    let mut per_config: Vec<(&'static str, BuildMetrics)> = Vec::new();
    let mut builds = 0u32;
    for (name, config) in &configs {
        let mut config_metrics = BuildMetrics::default();
        for _ in 0..args.repeat {
            let image = Image::builder(&kernel.module)
                .profile(&profile)
                .config(*config)
                .threads(threads)
                .build()
                .unwrap_or_else(|e| {
                    eprintln!("error: build of {name} failed: {e}");
                    std::process::exit(1);
                });
            config_metrics.accumulate(&image.metrics);
            builds += 1;
        }
        eprintln!(
            "[{name}: {} builds, {:.1}ms total]",
            args.repeat,
            config_metrics.total_ns as f64 / 1e6
        );
        aggregate.accumulate(&config_metrics);
        per_config.push((name, config_metrics));
    }

    let mut per_arch: Vec<(&'static str, BuildMetrics)> = Vec::new();
    for (name, config) in &arch_bench_configs() {
        let mut arch_metrics = BuildMetrics::default();
        for _ in 0..args.repeat {
            let image = Image::builder(&kernel.module)
                .profile(&profile)
                .config(*config)
                .threads(threads)
                .build()
                .unwrap_or_else(|e| {
                    eprintln!("error: build of lax+all+dce@{name} failed: {e}");
                    std::process::exit(1);
                });
            arch_metrics.accumulate(&image.metrics);
        }
        eprintln!(
            "[lax+all+dce@{name}: {} builds, {:.1}ms total]",
            args.repeat,
            arch_metrics.total_ns as f64 / 1e6
        );
        per_arch.push((name, arch_metrics));
    }

    let ir_core = ir_core_bench(&kernel.module, threads);

    let ms = |ns: u64| format!("{:.1}", ns as f64 / 1e6);
    println!("\n; per-stage wall time summed over {builds} builds");
    for (stage, ns) in aggregate.stages() {
        println!("stage {stage:>8} (ms)  {}", ms(ns));
    }
    println!("total build  (ms)  {}", ms(aggregate.total_ns));
    println!("stage rollbacks    {}", aggregate.rollbacks);
    for (arch, m) in &per_arch {
        println!("arch {arch:>8} (ms)  {}", ms(m.total_ns));
    }
    println!("; IR core micro-benchmarks (one pass each)");
    for (name, ns) in &ir_core {
        println!("ir_core {name:>12} (ms)  {}", ms(*ns));
    }

    let doc = serde_json::json!({
        "bench": "pipeline",
        "scale": args.scale,
        "iters": args.iters,
        "rounds": args.rounds,
        "threads": threads,
        "repeat": args.repeat,
        "functions": kernel.module.len(),
        "builds": builds,
        "stages_ns": stages_json(&aggregate),
        "ir_core_ns": serde_json::Value::Object(
            ir_core
                .iter()
                .map(|(name, ns)| (String::from(*name), serde_json::json!(*ns)))
                .collect(),
        ),
        "total_ns": aggregate.total_ns,
        "rollbacks": aggregate.rollbacks,
        "arch_stages_ns": serde_json::Value::Object(
            per_arch
                .iter()
                .map(|(arch, m)| (String::from(*arch), stages_json(m)))
                .collect(),
        ),
        "configs": per_config
            .iter()
            .map(|(name, m)| {
                serde_json::json!({
                    "name": *name,
                    "stages_ns": stages_json(m),
                    "total_ns": m.total_ns,
                })
            })
            .collect::<Vec<_>>(),
    });
    std::fs::write(
        &args.out,
        serde_json::to_string_pretty(&doc).expect("bench record serializes"),
    )
    .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!("[wrote {}]", args.out);

    if let Some(path) = &args.baseline {
        let regressions = compare_against_baseline(path, &aggregate, &ir_core, args.tolerance);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("regression: {r}");
            }
            std::process::exit(1);
        }
        println!(
            "; no stage regressed more than {}% vs {path}",
            args.tolerance
        );
    }
}

/// Compares this run's aggregate per-stage times (and, when the baseline
/// has them, the `ir_core` micro-benchmarks) against a committed baseline
/// record, returning one message per entry whose wall time grew by more
/// than `tolerance` percent. Entries below [`NOISE_FLOOR_NS`] in the
/// baseline are skipped — percent comparisons on sub-10ms timings measure
/// timer noise, not the pipeline.
fn compare_against_baseline(
    path: &str,
    current: &BuildMetrics,
    ir_core: &[(&'static str, u64)],
    tolerance: f64,
) -> Vec<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("baseline {path} is not JSON: {e}"));
    let stages = doc
        .get("stages_ns")
        .unwrap_or_else(|| panic!("baseline {path} has no stages_ns object"));

    let check = |kind: &str, name: &str, base: Option<&serde_json::Value>, now_ns: u64| {
        let base_ns = match base {
            Some(serde_json::Value::U64(ns)) => *ns,
            Some(serde_json::Value::I64(ns)) => *ns as u64,
            _ => return None, // entry absent from an older record: nothing to compare
        };
        if base_ns < NOISE_FLOOR_NS {
            return None;
        }
        let limit = base_ns as f64 * (1.0 + tolerance / 100.0);
        (now_ns as f64 > limit).then(|| {
            format!(
                "{kind} {name}: {:.1}ms vs baseline {:.1}ms (+{:.0}%, tolerance {tolerance}%)",
                now_ns as f64 / 1e6,
                base_ns as f64 / 1e6,
                (now_ns as f64 / base_ns as f64 - 1.0) * 100.0,
            )
        })
    };

    let mut regressions = Vec::new();
    for (stage, now_ns) in current.stages() {
        regressions.extend(check("stage", stage, stages.get(stage), now_ns));
    }
    if let Some(base_core) = doc.get("ir_core_ns") {
        for (name, now_ns) in ir_core {
            regressions.extend(check("ir_core", name, base_core.get(name), *now_ns));
        }
    }
    regressions
}
