//! Umbrella crate for the PIBE reproduction workspace.
//!
//! Re-exports every member crate under a short name so examples and
//! downstream users can depend on one package:
//!
//! * [`ir`] — the compiler IR substrate;
//! * [`profile`] — execution profiles and optimization budgets;
//! * [`sim`] — the cycle-cost simulator and attack accounting;
//! * [`harden`] — transient-execution defenses and the security audit;
//! * [`passes`] — indirect call promotion, the PIBE inliner, DCE, and the
//!   Spectre V1 analysis;
//! * [`kernel`] — the synthetic kernel and its workloads;
//! * [`baselines`] — JumpSwitches and the default-LLVM-style inliner;
//! * [`pipeline`] — the end-to-end pipeline and every paper experiment.
//!
//! Start with the `quickstart` example (`cargo run --example quickstart`)
//! or the repository README.

pub use pibe as pipeline;
pub use pibe_baselines as baselines;
pub use pibe_harden as harden;
pub use pibe_ir as ir;
pub use pibe_kernel as kernel;
pub use pibe_passes as passes;
pub use pibe_profile as profile;
pub use pibe_sim as sim;
