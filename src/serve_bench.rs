//! `pibe-suite serve-bench` — times the continuous-PGO epoch loop.
//!
//! The serve loop's performance claim is *incrementality*: a no-drift
//! epoch costs validation + merge + decision-surface comparison (no
//! pipeline run at all), and a drifting epoch's rebuild re-hardens only
//! what changed (the warm harden cache replays the rest). So epoch
//! latency should track the **drifted-function count**, not the module
//! size — and this benchmark makes that visible by running the same
//! epoch schedule against synthetic kernels of increasing scale and
//! recording, per scale: the from-scratch build time (which *does* grow
//! with module size), the mean drift-epoch latency, and the mean
//! fast-path latency.
//!
//! The epoch schedule is deterministic and clean (no chaos — the soak
//! test owns fault coverage): even epochs ship a return-count-only delta
//! (returns feed no profile-driven decision, so the surface cannot move —
//! a guaranteed fast path), odd epochs boost a rotating window of hot
//! direct call sites enough to flip budget-prefix decisions (a guaranteed
//! rebuild).

use pibe::{Image, PibeConfig};
use pibe_harden::DefenseSet;
use pibe_ir::{FuncId, SiteId};
use pibe_kernel::measure::collect_profile;
use pibe_kernel::workloads::lmbench_suite;
use pibe_kernel::{Kernel, KernelSpec, WorkloadSpec};
use pibe_profile::Profile;
use pibe_serve::{EpochOutcome, PibeService, ProfileDelta, ServeConfig};
use std::time::{Duration, Instant};

/// Per-scale latency means below this floor are excluded from the
/// baseline regression check: percent comparisons on sub-5ms figures
/// measure timer noise, not the serve loop.
const NOISE_FLOOR_NS: u64 = 5_000_000;

/// Counts added to each boosted site on drift epochs — large enough to
/// reorder budget prefixes against the LMBench-trained base profile.
const DRIFT_BOOST: u64 = 10_000;

struct Args {
    scales: Vec<f64>,
    epochs: u64,
    iters: u32,
    rounds: u32,
    threads: Option<usize>,
    drift_sites: usize,
    out: String,
    baseline: Option<String>,
    tolerance: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: pibe-suite serve-bench [--scales F,F,..] [--epochs N] \
         [--iters N] [--rounds N] [--threads N] [--drift-sites N] \
         [--out PATH] [--baseline PATH] [--tolerance PCT]"
    );
    std::process::exit(2);
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Args {
    let mut args = Args {
        scales: vec![0.05, 0.1, 0.2],
        epochs: 32,
        iters: 2,
        rounds: 1,
        threads: None,
        drift_sites: 3,
        out: "BENCH_serve.json".into(),
        baseline: None,
        tolerance: 50.0,
    };
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scales" => {
                args.scales = val()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--scales takes floats"))
                    .collect();
            }
            "--epochs" => args.epochs = val().parse().expect("--epochs takes an integer"),
            "--iters" => args.iters = val().parse().expect("--iters takes an integer"),
            "--rounds" => args.rounds = val().parse().expect("--rounds takes an integer"),
            "--threads" => {
                args.threads = Some(val().parse().expect("--threads takes a positive integer"));
            }
            "--drift-sites" => {
                args.drift_sites = val().parse().expect("--drift-sites takes an integer");
            }
            "--out" => args.out = val(),
            "--baseline" => args.baseline = Some(val()),
            "--tolerance" => args.tolerance = val().parse().expect("--tolerance takes a float"),
            _ => usage(),
        }
    }
    assert!(!args.scales.is_empty(), "--scales must name at least one");
    assert!(args.epochs >= 2, "--epochs must be at least 2");
    assert!(args.drift_sites >= 1, "--drift-sites must be at least 1");
    args
}

/// A return-count-only delta: guaranteed fast path.
fn fast_delta(seq: u64) -> ProfileDelta {
    let mut p = Profile::new();
    p.record_return(FuncId::from_raw(0));
    ProfileDelta {
        shard: 0,
        seq,
        profile: p,
    }
}

/// Boosts a rotating window of `width` direct sites: guaranteed drift.
fn drift_delta(seq: u64, round: u64, sites: &[SiteId], width: usize) -> ProfileDelta {
    let mut p = Profile::new();
    for i in 0..width {
        let site = sites[(round as usize * width + i) % sites.len()];
        for _ in 0..DRIFT_BOOST {
            p.record_direct(site);
        }
    }
    ProfileDelta {
        shard: 0,
        seq,
        profile: p,
    }
}

struct ScaleResult {
    scale: f64,
    functions: usize,
    full_build_ns: u64,
    fast_path_epochs: u64,
    fast_path_ns_mean: u64,
    drift_epochs: u64,
    drift_ns_mean: u64,
    drifted_functions_mean: f64,
    cache_hits: u64,
    cache_misses: u64,
}

fn mean(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        0
    } else {
        (samples.iter().map(|&n| u128::from(n)).sum::<u128>() / samples.len() as u128) as u64
    }
}

fn run_scale(scale: f64, args: &Args, threads: usize) -> ScaleResult {
    let spec = KernelSpec {
        scale,
        ..KernelSpec::paper()
    };
    let kernel = Kernel::generate(spec);
    let workload = WorkloadSpec::lmbench();
    let suite = lmbench_suite(args.iters);
    let profile =
        collect_profile(&kernel, &workload, &suite, args.rounds, 0xBA5E).unwrap_or_else(|e| {
            eprintln!("error: profiling run failed at scale {scale}: {e}");
            std::process::exit(1);
        });
    let config = PibeConfig::builder()
        .lax()
        .defenses(DefenseSet::ALL)
        .dce(true)
        .build();

    // The module-size reference point: what one cold pipeline run costs.
    let t = Instant::now();
    Image::builder(&kernel.module)
        .profile(&profile)
        .config(config)
        .threads(threads)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("error: cold build failed at scale {scale}: {e}");
            std::process::exit(1);
        });
    let full_build_ns = t.elapsed().as_nanos() as u64;

    let mut sites: Vec<SiteId> = profile.iter_direct().map(|(s, _)| s).collect();
    sites.sort();
    assert!(
        !sites.is_empty(),
        "scale {scale}: the training profile recorded no direct sites"
    );

    let serve = ServeConfig {
        watchdog: Duration::from_secs(300),
        max_retries: 0,
        freeze_after: 3,
        backoff: Duration::ZERO,
        threads,
    };
    let mut svc = PibeService::bootstrap(kernel.module.clone(), profile, config, serve)
        .unwrap_or_else(|e| {
            eprintln!("error: bootstrap failed at scale {scale}: {e}");
            std::process::exit(1);
        });

    let mut fast_ns = Vec::new();
    let mut drift_ns = Vec::new();
    let mut drifted_total = 0usize;
    for epoch in 0..args.epochs {
        let delta = if epoch % 2 == 0 {
            fast_delta(epoch)
        } else {
            drift_delta(epoch, epoch / 2, &sites, args.drift_sites)
        };
        let t = Instant::now();
        let record = svc.ingest_epoch(vec![delta]);
        let ns = t.elapsed().as_nanos() as u64;
        match record.outcome {
            EpochOutcome::FastPath => fast_ns.push(ns),
            EpochOutcome::Rebuilt { drifted, .. } => {
                drift_ns.push(ns);
                drifted_total += drifted;
            }
            ref other => {
                eprintln!("error: clean epoch {epoch} at scale {scale} ended in {other:?}");
                std::process::exit(1);
            }
        }
    }
    assert_eq!(fast_ns.len() as u64, args.epochs.div_ceil(2));

    let cache = svc.harden_cache_stats();
    ScaleResult {
        scale,
        functions: kernel.module.len(),
        full_build_ns,
        fast_path_epochs: fast_ns.len() as u64,
        fast_path_ns_mean: mean(&fast_ns),
        drift_epochs: drift_ns.len() as u64,
        drift_ns_mean: mean(&drift_ns),
        drifted_functions_mean: if drift_ns.is_empty() {
            0.0
        } else {
            drifted_total as f64 / drift_ns.len() as f64
        },
        cache_hits: cache.hits,
        cache_misses: cache.misses,
    }
}

/// Entry point for the `serve-bench` subcommand; `it` yields the
/// arguments after the subcommand name.
pub fn run(it: impl Iterator<Item = String>) {
    let args = parse_args(it);
    let threads = args.threads.unwrap_or_else(pibe_ir::par::default_threads);
    assert!(threads >= 1, "--threads must be at least 1");

    println!("; PIBE serve-loop bench");
    println!(
        "; scales {:?}, {} epochs each, {} stage threads, {} drift sites/epoch",
        args.scales, args.epochs, threads, args.drift_sites
    );

    let ms = |ns: u64| format!("{:.1}", ns as f64 / 1e6);
    let mut results = Vec::new();
    for &scale in &args.scales {
        let r = run_scale(scale, &args, threads);
        eprintln!(
            "[scale {scale}: {} fns | cold build {}ms | drift epoch {}ms \
             (mean {:.1} drifted fns) | fast path {}ms | cache {}h/{}m]",
            r.functions,
            ms(r.full_build_ns),
            ms(r.drift_ns_mean),
            r.drifted_functions_mean,
            ms(r.fast_path_ns_mean),
            r.cache_hits,
            r.cache_misses,
        );
        results.push(r);
    }

    println!("\n; scale   functions  cold(ms)  drift(ms)  fast(ms)");
    for r in &results {
        println!(
            "  {:<7} {:>9} {:>9} {:>10} {:>9}",
            r.scale,
            r.functions,
            ms(r.full_build_ns),
            ms(r.drift_ns_mean),
            ms(r.fast_path_ns_mean),
        );
    }

    let doc = serde_json::json!({
        "bench": "serve",
        "epochs": args.epochs,
        "iters": args.iters,
        "rounds": args.rounds,
        "threads": threads,
        "drift_sites": args.drift_sites,
        "scales": results
            .iter()
            .map(|r| {
                serde_json::json!({
                    "scale": r.scale,
                    "functions": r.functions,
                    "full_build_ns": r.full_build_ns,
                    "fast_path_epochs": r.fast_path_epochs,
                    "fast_path_ns_mean": r.fast_path_ns_mean,
                    "drift_epochs": r.drift_epochs,
                    "drift_ns_mean": r.drift_ns_mean,
                    "drifted_functions_mean": r.drifted_functions_mean,
                    "cache_hits": r.cache_hits,
                    "cache_misses": r.cache_misses,
                })
            })
            .collect::<Vec<_>>(),
    });
    std::fs::write(
        &args.out,
        serde_json::to_string_pretty(&doc).expect("bench record serializes"),
    )
    .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!("[wrote {}]", args.out);

    if let Some(path) = &args.baseline {
        let regressions = compare_against_baseline(path, &results, args.tolerance);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("regression: {r}");
            }
            std::process::exit(1);
        }
        println!(
            "; no serve latency regressed more than {}% vs {path}",
            args.tolerance
        );
    }
}

/// Compares this run's per-scale latency means against a committed
/// baseline record, returning one message per figure that grew by more
/// than `tolerance` percent. Baseline figures below [`NOISE_FLOOR_NS`]
/// are skipped, as are scales absent from the baseline.
fn compare_against_baseline(path: &str, results: &[ScaleResult], tolerance: f64) -> Vec<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("baseline {path} is not JSON: {e}"));
    let baseline_scales = match doc.get("scales") {
        Some(serde_json::Value::Array(entries)) => entries,
        _ => panic!("baseline {path} has no scales array"),
    };
    let as_u64 = |v: Option<&serde_json::Value>| match v {
        Some(serde_json::Value::U64(n)) => Some(*n),
        Some(serde_json::Value::I64(n)) => Some(*n as u64),
        _ => None,
    };
    let mut regressions = Vec::new();
    for r in results {
        let base = baseline_scales.iter().find(|e| {
            matches!(e.get("scale"), Some(serde_json::Value::F64(s)) if (s - r.scale).abs() < 1e-9)
        });
        let Some(base) = base else { continue };
        for (figure, now_ns, base_ns) in [
            (
                "fast_path_ns_mean",
                r.fast_path_ns_mean,
                as_u64(base.get("fast_path_ns_mean")),
            ),
            (
                "drift_ns_mean",
                r.drift_ns_mean,
                as_u64(base.get("drift_ns_mean")),
            ),
        ] {
            let Some(base_ns) = base_ns else { continue };
            if base_ns < NOISE_FLOOR_NS {
                continue;
            }
            let limit = base_ns as f64 * (1.0 + tolerance / 100.0);
            if now_ns as f64 > limit {
                regressions.push(format!(
                    "scale {} {figure}: {:.1}ms vs baseline {:.1}ms (+{:.0}%, tolerance {tolerance}%)",
                    r.scale,
                    now_ns as f64 / 1e6,
                    base_ns as f64 / 1e6,
                    (now_ns as f64 / base_ns as f64 - 1.0) * 100.0,
                ));
            }
        }
    }
    regressions
}
