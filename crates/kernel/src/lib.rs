//! # pibe-kernel
//!
//! A deterministic, seeded generator for a synthetic Linux-kernel-like
//! program, plus analogues of every workload the paper measures.
//!
//! The paper evaluates on Linux 5.1: ~21 k static indirect call sites,
//! ~133 k return sites, 20 LMBench microbenchmarks, and Apache/Nginx/DBench
//! macrobenchmarks. This crate rebuilds the *structure* those experiments
//! depend on:
//!
//! * a module whose static branch census matches the kernel's (scaled by
//!   [`KernelSpec::scale`]),
//! * per-syscall hot paths through shared subsystem trunks (vfs, net, mm,
//!   sched, ipc, signal, security), so different workloads overlap partially
//!   — the property the robustness experiment of §8.4 measures,
//! * indirect-call *interface sites* whose target-multiplicity distribution
//!   matches Table 4 (517 single-target sites, 109 two-target, … 22 with
//!   more than six),
//! * 41 paravirt hypercall sites implemented as (modelled) inline assembly
//!   that no defense can reach (Table 11), five assembly jump tables, a
//!   boot-only section, and a long tail of cold driver code,
//! * workload definitions: the 20 LMBench latency benchmarks of Table 2,
//!   an LMBench profiling workload (11 aggregated iterations, as in §8),
//!   and Apache-, Nginx-, and DBench-like macro workloads (Table 7), each
//!   with its own indirect-target distribution (a web server resolves
//!   `file_ops` to socket implementations more often than a file benchmark
//!   does).
//!
//! Everything is reproducible: the same [`KernelSpec`] always generates the
//! same module, and workload randomness comes from seeds carried by the
//! workload definitions.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod gen;
pub mod measure;
mod spec;
mod syscalls;
pub mod workloads;

pub use gen::{InterfaceSite, Kernel};
pub use spec::{KernelSpec, KernelTuning, Provider, Subsystem};
pub use syscalls::Syscall;
pub use workloads::{Benchmark, MacroBench, WorkloadSpec};
