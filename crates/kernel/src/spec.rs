//! Kernel generation parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of the synthetic kernel.
///
/// `scale = 1.0` targets the paper's Linux 5.1 static census (§8.6,
/// Tables 4, 10, 11): ~21 k indirect call sites, ~133 k return sites, 723
/// profiled indirect-call sites distributed per Table 4, 41 unhardenable
/// paravirt call sites, 5 assembly jump tables, ~1 400 compiler jump tables.
/// Smaller scales shrink the cold mass and the interface-site quotas
/// proportionally while keeping the hot-path *structure* (chain lengths,
/// subsystem sharing) identical — tests use [`KernelSpec::test`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Seed for all structural randomness (function sizes, site placement).
    pub seed: u64,
    /// Linear scale factor on site quotas and cold mass.
    pub scale: f64,
}

impl KernelSpec {
    /// Full paper-scale kernel (use for the table-regeneration binaries).
    pub fn paper() -> Self {
        KernelSpec {
            seed: 0x51BE,
            scale: 1.0,
        }
    }

    /// A small kernel for unit and integration tests (~2% of paper scale).
    pub fn test() -> Self {
        KernelSpec {
            seed: 0x51BE,
            scale: 0.02,
        }
    }

    /// A mid-size kernel for Criterion benches (~15% of paper scale).
    pub fn bench() -> Self {
        KernelSpec {
            seed: 0x51BE,
            scale: 0.15,
        }
    }

    /// Scales an absolute paper-census quota, keeping at least `min`.
    pub(crate) fn scaled(&self, paper_count: u64, min: u64) -> u64 {
        ((paper_count as f64 * self.scale).round() as u64).max(min)
    }
}

impl Default for KernelSpec {
    fn default() -> Self {
        Self::test()
    }
}

/// The generator's calibration knobs: the dynamic-behaviour parameters that
/// were tuned so the simulated kernel reproduces the paper's overhead
/// *shapes* (see EXPERIMENTS.md). Exposed so the calibration is inspectable
/// and sweepable rather than buried in the generator; `Default` is the
/// calibrated configuration every experiment uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTuning {
    /// Body-op range of shared helper leaves (`helper_*`).
    pub helper_ops: (usize, usize),
    /// Body-op range of hot utility leaves (`lib_*`).
    pub lib_ops: (usize, usize),
    /// Body-op range of ordinary hooks, and the heavy-tail range a
    /// `hook_tail_prob` fraction of hooks draw from instead (real LSM hooks
    /// straddle the inliner thresholds).
    pub hook_ops: (usize, usize),
    /// Heavy-tail body-op range for hooks and handlers.
    pub tail_ops: (usize, usize),
    /// Probability a hook is heavy-tailed.
    pub hook_tail_prob: f64,
    /// Probability a provider handler is heavy-tailed.
    pub handler_tail_prob: f64,
    /// Probability a hook is self-recursive (uninlinable; part of the
    /// residual defense cost, Table 9's "other").
    pub hook_recursion_prob: f64,
    /// Probability a hook is annotated `noinline`.
    pub hook_noinline_prob: f64,
    /// Probability a provider handler is annotated `noinline`.
    pub handler_noinline_prob: f64,
    /// Continue-probability (per mille) of the interface dispatch loop —
    /// how many times per traversal a notifier chain re-fires.
    pub dispatch_loop_permille: u16,
    /// Execution-gate tiers cycled across interface sites: the per-mille
    /// probability each site actually fires per traversal, giving site
    /// weights the heavy skew the paper's budget sweep depends on.
    pub gates: Vec<u16>,
}

impl Default for KernelTuning {
    fn default() -> Self {
        KernelTuning {
            helper_ops: (4, 14),
            lib_ops: (6, 24),
            hook_ops: (10, 24),
            tail_ops: (150, 400),
            hook_tail_prob: 0.08,
            handler_tail_prob: 0.10,
            hook_recursion_prob: 0.10,
            hook_noinline_prob: 0.08,
            handler_noinline_prob: 0.10,
            dispatch_loop_permille: 700,
            gates: vec![1000, 1000, 500, 120, 30, 8, 3, 3, 3, 3, 3, 3],
        }
    }
}

/// Who implements a dispatched operation — the tag workloads use to skew
/// indirect-call target distributions (a file benchmark resolves
/// `file_ops->read` to tmpfs, a web server to sockets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Provider {
    /// tmpfs (the paper's dbench runs on tmpfs).
    Tmpfs,
    /// A disk filesystem.
    Ext4,
    /// procfs-style virtual files.
    Proc,
    /// Sockets.
    Sock,
    /// Pipes and FIFOs.
    Pipe,
    /// Device files.
    Dev,
    /// Anything else (notifier chains, LSM hooks, timers, …).
    Generic,
}

impl Provider {
    /// All providers.
    pub const ALL: [Provider; 7] = [
        Provider::Tmpfs,
        Provider::Ext4,
        Provider::Proc,
        Provider::Sock,
        Provider::Pipe,
        Provider::Dev,
        Provider::Generic,
    ];
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Provider::Tmpfs => "tmpfs",
            Provider::Ext4 => "ext4",
            Provider::Proc => "proc",
            Provider::Sock => "sock",
            Provider::Pipe => "pipe",
            Provider::Dev => "dev",
            Provider::Generic => "generic",
        };
        f.write_str(s)
    }
}

/// Kernel subsystems: each owns a shared trunk of hot functions that
/// several syscall paths flow through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Subsystem {
    /// VFS layer.
    Vfs,
    /// Network core + protocols.
    Net,
    /// Memory management.
    Mm,
    /// Scheduler / process management.
    Sched,
    /// Pipes, futexes, SysV IPC.
    Ipc,
    /// Signal delivery.
    Signal,
    /// LSM security hooks.
    Security,
}

impl Subsystem {
    /// All subsystems with trunks.
    pub const ALL: [Subsystem; 7] = [
        Subsystem::Vfs,
        Subsystem::Net,
        Subsystem::Mm,
        Subsystem::Sched,
        Subsystem::Ipc,
        Subsystem::Signal,
        Subsystem::Security,
    ];
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Subsystem::Vfs => "vfs",
            Subsystem::Net => "net",
            Subsystem::Mm => "mm",
            Subsystem::Sched => "sched",
            Subsystem::Ipc => "ipc",
            Subsystem::Signal => "signal",
            Subsystem::Security => "security",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_minimum() {
        let s = KernelSpec::test();
        assert!(s.scaled(100, 5) >= 5);
        assert_eq!(KernelSpec::paper().scaled(517, 1), 517);
    }

    #[test]
    fn presets_differ_in_scale_only() {
        assert!(KernelSpec::test().scale < KernelSpec::bench().scale);
        assert!(KernelSpec::bench().scale < KernelSpec::paper().scale);
        assert_eq!(KernelSpec::test().seed, KernelSpec::paper().seed);
    }

    #[test]
    fn provider_and_subsystem_display() {
        assert_eq!(Provider::Tmpfs.to_string(), "tmpfs");
        assert_eq!(Subsystem::Vfs.to_string(), "vfs");
        assert_eq!(Provider::ALL.len(), 7);
        assert_eq!(Subsystem::ALL.len(), 7);
    }
}
