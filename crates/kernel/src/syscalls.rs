//! Kernel entry points — one per LMBench latency benchmark of Table 2.

use crate::spec::Subsystem;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kernel entry points exercised by the evaluation, named after the 20
/// LMBench latency benchmarks of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // names mirror Table 2 rows
pub enum Syscall {
    Null,
    Read,
    Write,
    Open,
    Stat,
    Fstat,
    AfUnix,
    ForkExit,
    ForkExec,
    ForkShell,
    Pipe,
    SelectFile,
    SelectTcp,
    TcpConn,
    Udp,
    Tcp,
    Mmap,
    PageFault,
    SigInstall,
    SigDispatch,
}

impl Syscall {
    /// All entry points, in Table 2 row order.
    pub const ALL: [Syscall; 20] = [
        Syscall::Null,
        Syscall::Read,
        Syscall::Write,
        Syscall::Open,
        Syscall::Stat,
        Syscall::Fstat,
        Syscall::AfUnix,
        Syscall::ForkExit,
        Syscall::ForkExec,
        Syscall::ForkShell,
        Syscall::Pipe,
        Syscall::SelectFile,
        Syscall::SelectTcp,
        Syscall::TcpConn,
        Syscall::Udp,
        Syscall::Tcp,
        Syscall::Mmap,
        Syscall::PageFault,
        Syscall::SigInstall,
        Syscall::SigDispatch,
    ];

    /// Table 2's name for this benchmark/entry point.
    pub fn name(self) -> &'static str {
        match self {
            Syscall::Null => "null",
            Syscall::Read => "read",
            Syscall::Write => "write",
            Syscall::Open => "open",
            Syscall::Stat => "stat",
            Syscall::Fstat => "fstat",
            Syscall::AfUnix => "af_unix",
            Syscall::ForkExit => "fork/exit",
            Syscall::ForkExec => "fork/exec",
            Syscall::ForkShell => "fork/shell",
            Syscall::Pipe => "pipe",
            Syscall::SelectFile => "select_file",
            Syscall::SelectTcp => "select_tcp",
            Syscall::TcpConn => "tcp_conn",
            Syscall::Udp => "udp",
            Syscall::Tcp => "tcp",
            Syscall::Mmap => "mmap",
            Syscall::PageFault => "page_fault",
            Syscall::SigInstall => "sig_install",
            Syscall::SigDispatch => "sig_dispatch",
        }
    }

    /// The subsystem trunks this entry's hot path flows through, in order.
    /// Sharing these trunks across syscalls is what gives two different
    /// workloads partially-overlapping hot sets (§8.4).
    pub fn trunks(self) -> &'static [Subsystem] {
        use Subsystem::*;
        match self {
            Syscall::Null => &[Sched],
            Syscall::Read | Syscall::Write => &[Security, Vfs],
            Syscall::Open => &[Security, Vfs, Mm],
            Syscall::Stat => &[Security, Vfs],
            Syscall::Fstat => &[Vfs],
            Syscall::AfUnix => &[Security, Net, Ipc],
            Syscall::ForkExit => &[Sched, Mm, Signal],
            Syscall::ForkExec => &[Sched, Mm, Vfs, Security],
            Syscall::ForkShell => &[Sched, Mm, Vfs, Security, Signal],
            Syscall::Pipe => &[Ipc, Vfs],
            Syscall::SelectFile => &[Vfs, Ipc],
            Syscall::SelectTcp => &[Net, Vfs],
            Syscall::TcpConn => &[Security, Net, Sched],
            Syscall::Udp => &[Net],
            Syscall::Tcp => &[Security, Net],
            Syscall::Mmap => &[Mm, Vfs],
            Syscall::PageFault => &[Mm],
            Syscall::SigInstall => &[Signal],
            Syscall::SigDispatch => &[Signal, Sched],
        }
    }

    /// Relative path heaviness: `(private_chain_len, body_scale,
    /// loop_continue_permille)` tuned so simulated latencies land in the
    /// magnitude ordering of Table 2 (null ≈ 0.14 µs … fork/shell ≈ 419 µs).
    pub fn path_shape(self) -> (usize, usize, u16) {
        match self {
            Syscall::Null => (2, 6, 0),
            Syscall::Read | Syscall::Write => (4, 14, 0),
            Syscall::Fstat => (4, 16, 0),
            Syscall::Stat => (6, 24, 200),
            Syscall::Open => (8, 28, 300),
            Syscall::Pipe => (6, 30, 500),
            Syscall::AfUnix => (7, 32, 600),
            Syscall::SelectFile => (6, 26, 700),
            Syscall::SelectTcp => (7, 30, 800),
            Syscall::TcpConn => (8, 34, 780),
            Syscall::Udp => (7, 30, 620),
            Syscall::Tcp => (7, 32, 650),
            Syscall::Mmap => (8, 30, 800),
            Syscall::PageFault => (3, 10, 0),
            Syscall::SigInstall => (3, 12, 0),
            Syscall::SigDispatch => (5, 20, 300),
            Syscall::ForkExit => (12, 40, 960),
            Syscall::ForkExec => (14, 44, 975),
            Syscall::ForkShell => (16, 48, 985),
        }
    }
}

impl fmt::Display for Syscall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_entries_matching_table2() {
        assert_eq!(Syscall::ALL.len(), 20);
        assert_eq!(Syscall::ALL[0].name(), "null");
        assert_eq!(Syscall::ALL[19].name(), "sig_dispatch");
    }

    #[test]
    fn every_entry_has_at_least_one_trunk() {
        for s in Syscall::ALL {
            assert!(!s.trunks().is_empty(), "{s} must traverse a subsystem");
        }
    }

    #[test]
    fn fork_paths_are_the_heaviest() {
        let weight = |s: Syscall| {
            let (len, body, p) = s.path_shape();
            len * body * (1000 / (1000 - p as usize).max(1))
        };
        assert!(weight(Syscall::ForkShell) > weight(Syscall::ForkExit));
        assert!(weight(Syscall::ForkExit) > weight(Syscall::Read));
        assert!(weight(Syscall::Read) > weight(Syscall::Null));
    }

    #[test]
    fn read_and_write_share_trunks() {
        assert_eq!(Syscall::Read.trunks(), Syscall::Write.trunks());
    }
}
