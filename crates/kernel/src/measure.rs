//! Measurement harness: runs workloads over a kernel module under the
//! simulator, producing latencies, throughputs, and profiles.
//!
//! The module being measured is passed in explicitly (not taken from the
//! [`Kernel`]) because the pipeline measures *transformed* copies of the
//! kernel — optimized and hardened images — against the same workloads.

use crate::gen::Kernel;
use crate::workloads::{Benchmark, MacroBench, WorkloadSpec};
use pibe_ir::Module;
use pibe_profile::Profile;
use pibe_sim::{AttackReport, ExecStats, SimConfig, SimError, Simulator};
use serde::{Deserialize, Serialize};

/// Simulated CPU frequency used to convert cycles to wall-clock analogues
/// (the paper's testbed is a 3.7 GHz i7-8700K; LMBench reports µs).
pub const CPU_HZ: f64 = 3.7e9;

/// Result of one latency benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyResult {
    /// Mean cycles per iteration over the timed phase.
    pub cycles_per_iter: f64,
    /// The latency analogue in microseconds at [`CPU_HZ`].
    pub micros: f64,
}

/// Result of one macrobenchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputResult {
    /// Mean cycles per request.
    pub cycles_per_request: f64,
    /// Requests per second at [`CPU_HZ`].
    pub requests_per_sec: f64,
}

/// Runs one LMBench-style latency benchmark of `bench` against `module`
/// under `cfg`, resolving indirect calls per `workload`.
///
/// # Errors
/// Propagates simulator failures (see [`SimError`]); a well-formed kernel
/// and workload cannot fail.
pub fn run_latency(
    module: &Module,
    kernel: &Kernel,
    workload: &WorkloadSpec,
    bench: Benchmark,
    cfg: SimConfig,
    seed: u64,
) -> Result<(LatencyResult, ExecStats, AttackReport), SimError> {
    let resolver = workload.resolver(kernel);
    let mut sim = Simulator::new(module, resolver, seed, cfg);
    let entry = kernel.entry(bench.syscall);
    for _ in 0..bench.warmup {
        sim.call_entry(entry)?;
    }
    let mut total = 0u64;
    for _ in 0..bench.iterations {
        total += sim.call_entry(entry)?;
    }
    let cycles_per_iter = total as f64 / f64::from(bench.iterations.max(1));
    Ok((
        LatencyResult {
            cycles_per_iter,
            micros: cycles_per_iter / CPU_HZ * 1e6,
        },
        *sim.stats(),
        *sim.attacks(),
    ))
}

/// Runs a macrobenchmark (repeated multi-syscall requests) and reports the
/// throughput analogue.
///
/// # Errors
/// Propagates simulator failures (see [`SimError`]).
pub fn run_throughput(
    module: &Module,
    kernel: &Kernel,
    workload: &WorkloadSpec,
    bench: &MacroBench,
    cfg: SimConfig,
    seed: u64,
) -> Result<(ThroughputResult, ExecStats), SimError> {
    let resolver = workload.resolver(kernel);
    let mut sim = Simulator::new(module, resolver, seed, cfg);
    let run_request = |sim: &mut Simulator<'_, _>| -> Result<u64, SimError> {
        let mut c = 0;
        for (sc, n) in &bench.request {
            let entry = kernel.entry(*sc);
            for _ in 0..*n {
                c += sim.call_entry(entry)?;
            }
        }
        Ok(c)
    };
    for _ in 0..bench.warmup {
        run_request(&mut sim)?;
    }
    let mut total = 0u64;
    for _ in 0..bench.requests {
        total += run_request(&mut sim)?;
    }
    let cycles_per_request = total as f64 / f64::from(bench.requests.max(1));
    Ok((
        ThroughputResult {
            cycles_per_request,
            requests_per_sec: CPU_HZ / cycles_per_request,
        },
        *sim.stats(),
    ))
}

/// Collects an aggregated execution profile of the whole `suite`, merged
/// over `rounds` independent runs — the paper "run\[s\] the same LMBench
/// configuration 11 times and collect\[s\] all edge execution counts observed
/// across all 11 iterations" (§8).
///
/// # Errors
/// Propagates simulator failures (see [`SimError`]).
pub fn collect_profile(
    kernel: &Kernel,
    workload: &WorkloadSpec,
    suite: &[Benchmark],
    rounds: u32,
    seed: u64,
) -> Result<Profile, SimError> {
    let mut merged = Profile::new();
    for round in 0..rounds {
        let resolver = workload.resolver(kernel);
        let cfg = SimConfig {
            collect_profile: true,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&kernel.module, resolver, seed ^ u64::from(round), cfg);
        for b in suite {
            let entry = kernel.entry(b.syscall);
            for _ in 0..b.warmup + b.iterations {
                sim.call_entry(entry)?;
            }
        }
        merged.merge(&sim.take_profile());
    }
    Ok(merged)
}

/// Collects a profile of a macro workload (used to train the Apache-profile
/// kernels of §8.4 and the macro rows of Table 7).
///
/// # Errors
/// Propagates simulator failures (see [`SimError`]).
pub fn collect_macro_profile(
    kernel: &Kernel,
    workload: &WorkloadSpec,
    bench: &MacroBench,
    rounds: u32,
    seed: u64,
) -> Result<Profile, SimError> {
    let mut merged = Profile::new();
    for round in 0..rounds {
        let resolver = workload.resolver(kernel);
        let cfg = SimConfig {
            collect_profile: true,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&kernel.module, resolver, seed ^ u64::from(round), cfg);
        for _ in 0..bench.requests {
            for (sc, n) in &bench.request {
                let entry = kernel.entry(*sc);
                for _ in 0..*n {
                    sim.call_entry(entry)?;
                }
            }
        }
        merged.merge(&sim.take_profile());
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::lmbench_suite;
    use crate::{KernelSpec, Syscall};
    use pibe_harden::DefenseSet;

    fn kernel() -> Kernel {
        Kernel::generate(KernelSpec::test())
    }

    #[test]
    fn latency_benchmark_runs_and_orders_sanely() {
        let k = kernel();
        let wl = WorkloadSpec::lmbench();
        let cfg = SimConfig::default();
        let run = |sc: Syscall| {
            let b = Benchmark {
                syscall: sc,
                iterations: 12,
                warmup: 3,
            };
            run_latency(&k.module, &k, &wl, b, cfg, 7).unwrap().0
        };
        let null = run(Syscall::Null);
        let fork = run(Syscall::ForkShell);
        assert!(null.micros > 0.0);
        assert!(
            fork.cycles_per_iter > 4.0 * null.cycles_per_iter,
            "fork/shell ({}) must dwarf null ({})",
            fork.cycles_per_iter,
            null.cycles_per_iter
        );
    }

    #[test]
    fn defended_kernel_is_slower() {
        let k = kernel();
        let wl = WorkloadSpec::lmbench();
        let b = Benchmark {
            syscall: Syscall::Read,
            iterations: 20,
            warmup: 5,
        };
        let base = run_latency(&k.module, &k, &wl, b, SimConfig::default(), 7)
            .unwrap()
            .0;
        let cfg = SimConfig {
            defenses: DefenseSet::ALL,
            ..SimConfig::default()
        };
        let hard = run_latency(&k.module, &k, &wl, b, cfg, 7).unwrap().0;
        assert!(
            hard.cycles_per_iter > 1.3 * base.cycles_per_iter,
            "all defenses must cost >30% on read ({} vs {})",
            hard.cycles_per_iter,
            base.cycles_per_iter
        );
    }

    #[test]
    fn throughput_benchmark_runs() {
        let k = kernel();
        let wl = WorkloadSpec::nginx();
        let mb = MacroBench::nginx(6);
        let (t, stats) = run_throughput(&k.module, &k, &wl, &mb, SimConfig::default(), 7).unwrap();
        assert!(t.requests_per_sec > 0.0);
        assert!(stats.icalls > 0, "requests exercise dispatch sites");
    }

    #[test]
    fn profile_collection_sees_hot_sites() {
        let k = kernel();
        let wl = WorkloadSpec::lmbench();
        let suite = lmbench_suite(8);
        let p = collect_profile(&k, &wl, &suite, 2, 7).unwrap();
        let stats = p.stats();
        assert!(
            stats.direct_sites > 50,
            "direct sites: {}",
            stats.direct_sites
        );
        assert!(stats.indirect_sites > 5);
        assert!(stats.return_weight > stats.direct_weight / 2);
        // Interface sites dominate observed indirect calls.
        let hist = p.target_multiplicity_histogram();
        assert!(hist.iter().sum::<u64>() > 0);
    }

    #[test]
    fn profiles_merge_across_rounds_monotonically() {
        let k = kernel();
        let wl = WorkloadSpec::lmbench();
        let suite = vec![Benchmark {
            syscall: Syscall::Read,
            iterations: 5,
            warmup: 1,
        }];
        let p1 = collect_profile(&k, &wl, &suite, 1, 7).unwrap();
        let p2 = collect_profile(&k, &wl, &suite, 2, 7).unwrap();
        assert!(p2.stats().direct_weight > p1.stats().direct_weight);
    }
}
