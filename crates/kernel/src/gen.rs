//! The synthetic kernel generator.
//!
//! Layout of the generated program (hot paths first):
//!
//! ```text
//! sys_<name>            20 entry points (Table 2 benchmarks)
//!   └─ <name>_c0..cK    per-syscall private prefix chain (with loops for
//!                        heavyweight paths like fork)
//!        └─ calls each subsystem trunk the syscall traverses
//! <sub>_t0..t9          shared subsystem trunks (vfs, net, …): the code
//!                        several syscalls have in common; carry the
//!                        interface dispatch sites
//! h_<provider>_<i>      provider handler pools (tmpfs/ext4/sock/… ops) —
//!                        the targets of multi-target dispatch sites
//! hook_<i>              singleton hook targets (notifier chains, LSM
//!                        hooks): the 1-target population of Table 4
//! pv_<i>                41 paravirt hypercall helpers whose indirect call
//!                        is inline assembly (unhardenable, Table 11)
//! lib_<i>               hot utility leaves (memcpy, locks, …)
//! cold_<i>              never-executed driver/init mass supplying the
//!                        static census (icalls, returns, jump tables)
//! boot_<i>              boot-only code (returns exempt from the audit)
//! ```

use crate::spec::{KernelSpec, KernelTuning, Provider, Subsystem};
use crate::syscalls::Syscall;
use pibe_ir::{Cond, FnAttrs, FuncId, FunctionBuilder, Module, OpKind, SiteId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// An indirect-call site on a hot path, with the target set workloads
/// resolve it over.
#[derive(Debug, Clone)]
pub struct InterfaceSite {
    /// The call site.
    pub site: SiteId,
    /// The subsystem trunk the site lives in (`None` for syscall prefixes
    /// and paravirt helpers).
    pub subsystem: Option<Subsystem>,
    /// Possible targets with their provider tags.
    pub targets: Vec<(FuncId, Provider)>,
    /// Whether the site is inline assembly (paravirt hypercalls).
    pub asm: bool,
}

/// A generated synthetic kernel: the module plus everything a workload
/// needs to drive it.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The kernel program.
    pub module: Module,
    /// The generation parameters.
    pub spec: KernelSpec,
    /// Hot indirect-call sites and their target sets.
    pub interface_sites: Vec<InterfaceSite>,
    entries: BTreeMap<Syscall, FuncId>,
}

impl Kernel {
    /// Generates the kernel described by `spec` with the calibrated default
    /// [`KernelTuning`]. Deterministic: equal specs produce identical
    /// kernels.
    pub fn generate(spec: KernelSpec) -> Kernel {
        Gen::new(spec, KernelTuning::default()).run()
    }

    /// Generates with explicit [`KernelTuning`] — for calibration sweeps
    /// and sensitivity experiments.
    pub fn generate_with(spec: KernelSpec, tuning: KernelTuning) -> Kernel {
        Gen::new(spec, tuning).run()
    }

    /// The entry function for a syscall.
    pub fn entry(&self, syscall: Syscall) -> FuncId {
        self.entries[&syscall]
    }

    /// All `(syscall, entry)` pairs in Table 2 order.
    pub fn entries(&self) -> impl Iterator<Item = (Syscall, FuncId)> + '_ {
        Syscall::ALL.iter().map(move |s| (*s, self.entries[s]))
    }
}

/// Paper census constants (Linux 5.1 defaults, §8.6).
mod census {
    /// Profiled single-target indirect call sites (Table 4).
    pub const SINGLE_SITES: u64 = 517;
    /// Profiled multi-target sites: (multiplicity, count) from Table 4;
    /// ">6" spreads over 7..=12.
    pub const MULTI_SITES: &[(usize, u64)] = &[
        (2, 109),
        (3, 34),
        (4, 23),
        (5, 6),
        (6, 12),
        (7, 8),
        (8, 6),
        (10, 5),
        (12, 3),
    ];
    /// Unhardenable paravirt call sites (Table 11).
    pub const PARAVIRT_SITES: u64 = 41;
    /// Assembly jump tables surviving hardening (Table 11).
    pub const ASM_JUMP_TABLES: u64 = 5;
    /// Compiler jump tables in a vanilla build (§8.6: 1432 total).
    pub const COLD_JUMP_TABLES: u64 = 1427;
    /// Total static indirect call sites (Tables 10/11: 20 927).
    pub const TOTAL_ICALLS: u64 = 20_927;
    /// Total static return sites (Table 10: ~133 005).
    pub const TOTAL_RETURNS: u64 = 133_005;
}

const TRUNK_LEN: usize = 10;

struct Gen {
    spec: KernelSpec,
    tuning: KernelTuning,
    rng: SmallRng,
    module: Module,
    libs: Vec<(FuncId, u8)>,
    stubs: Vec<FuncId>,
    handlers: Vec<(FuncId, Provider, u8)>,
    pv_helpers: Vec<(FuncId, u8)>,
    pv_cursor: usize,
    interface_sites: Vec<InterfaceSite>,
    single_quota: u64,
    multi_quota: Vec<usize>,
    chain_funcs_left: u64,
    gate_cursor: usize,
    hook_n: usize,
    helper_n: usize,
}

impl Gen {
    fn new(spec: KernelSpec, tuning: KernelTuning) -> Self {
        let mut multi_quota = Vec::new();
        for &(k, n) in census::MULTI_SITES {
            for _ in 0..spec.scaled(n, 1) {
                multi_quota.push(k);
            }
        }
        // Interleave multiplicities so every trunk sees a mix.
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        for i in (1..multi_quota.len()).rev() {
            let j = rng.gen_range(0..=i);
            multi_quota.swap(i, j);
        }
        let chain_funcs: usize = TRUNK_LEN * Subsystem::ALL.len()
            + Syscall::ALL.iter().map(|s| s.path_shape().0).sum::<usize>();
        Gen {
            spec,
            tuning,
            rng,
            module: Module::new("synthetic-linux-5.1"),
            libs: Vec::new(),
            stubs: Vec::new(),
            handlers: Vec::new(),
            pv_helpers: Vec::new(),
            pv_cursor: 0,
            interface_sites: Vec::new(),
            single_quota: spec.scaled(census::SINGLE_SITES, 40),
            multi_quota,
            chain_funcs_left: chain_funcs as u64,
            gate_cursor: 0,
            hook_n: 0,
            helper_n: 0,
        }
    }

    fn run(mut self) -> Kernel {
        self.gen_libs();
        self.gen_stubs();
        self.gen_handlers();
        self.gen_paravirt();
        let trunk_heads = self.gen_trunks();
        let entries = self.gen_syscall_chains(&trunk_heads);
        self.gen_cold_mass();
        self.gen_boot();
        debug_assert!(self.module.verify().is_ok());
        Kernel {
            module: self.module,
            spec: self.spec,
            interface_sites: self.interface_sites,
            entries,
        }
    }

    // -- building blocks ---------------------------------------------------

    /// Emits a mixed compute body of roughly `n` ops.
    fn body(b: &mut FunctionBuilder, rng: &mut SmallRng, n: usize) {
        for _ in 0..n {
            let k = match rng.gen_range(0..100) {
                0..=54 => OpKind::Alu,
                55..=74 => OpKind::Load,
                75..=84 => OpKind::Store,
                85..=94 => OpKind::Mov,
                _ => OpKind::Cmp,
            };
            b.op(k);
        }
    }

    /// A tiny leaf function.
    fn leaf(&mut self, name: String, ops: usize) -> (FuncId, u8) {
        let args = self.rng.gen_range(0..=2u8);
        let frame = self.rng.gen_range(16..=64);
        let mut b = FunctionBuilder::new(name, args);
        b.frame_bytes(frame);
        Self::body(&mut b, &mut self.rng, ops);
        b.ret();
        (self.module.add_function(b.build()), args)
    }

    fn fresh_helper(&mut self) -> (FuncId, u8) {
        self.helper_n += 1;
        let n = self.helper_n;
        let (lo, hi) = self.tuning.helper_ops;
        let ops = self.rng.gen_range(lo..=hi);
        self.leaf(format!("helper_{n}"), ops)
    }

    fn gen_libs(&mut self) {
        for i in 0..24 {
            let (lo, hi) = self.tuning.lib_ops;
            let ops = self.rng.gen_range(lo..=hi);
            let (id, args) = self.leaf(format!("lib_{i}"), ops);
            if i % 12 == 0 {
                self.module.function_mut(id).attrs_mut().noinline = true;
            }
            self.libs.push((id, args));
        }
    }

    fn gen_stubs(&mut self) {
        for i in 0..3 {
            let (id, _) = self.leaf(format!("hv_stub_{i}"), 2);
            self.stubs.push(id);
        }
    }

    fn lib_call(&mut self, b: &mut FunctionBuilder) {
        let (id, args) = self.libs[self.rng.gen_range(0..self.libs.len())];
        let site = self.module.fresh_site();
        b.call(site, id, args);
    }

    /// Singleton hook target: hook -> 2 helpers (+ maybe a lib call).
    fn gen_hook(&mut self) -> (FuncId, u8) {
        let h1 = self.fresh_helper();
        let h2 = self.fresh_helper();
        self.hook_n += 1;
        let n = self.hook_n;
        let args = self.rng.gen_range(0..=2u8);
        let frame = self.rng.gen_range(32..=96);
        // Heavy-tailed hook sizes: most hooks are small, but a fifth are
        // substantial (real LSM hooks and notifier callbacks straddle the
        // inliner thresholds, which is what separates PIBE's lax mode from
        // size-capped inlining).
        let ops = if self.rng.gen_bool(self.tuning.hook_tail_prob) {
            let (lo, hi) = self.tuning.tail_ops;
            self.rng.gen_range(lo..=hi)
        } else {
            let (lo, hi) = self.tuning.hook_ops;
            self.rng.gen_range(lo..=hi)
        };
        // ~10% of hooks are recursive (path walking, tree traversal):
        // recursive callees can never be inlined (§5.2), so their returns
        // stay hot and keep paying the backward-edge defense — part of the
        // paper's residual overhead and of Table 9's "other" blocked weight.
        let self_id = if self.rng.gen_bool(self.tuning.hook_recursion_prob) {
            let mut placeholder = FunctionBuilder::new(format!("hook_{n}"), args);
            placeholder.ret();
            Some(self.module.add_function(placeholder.build()))
        } else {
            None
        };
        let mut b = FunctionBuilder::new(format!("hook_{n}"), args);
        b.frame_bytes(frame);
        Self::body(&mut b, &mut self.rng, ops);
        let s1 = self.module.fresh_site();
        b.call(s1, h1.0, h1.1);
        if let Some(me) = self_id {
            // Bounded self-recursion: taken ~1 time in 5.
            let rec_bb = b.new_block();
            let cont = b.new_block();
            b.branch(Cond::Random { ptaken_milli: 200 }, rec_bb, cont);
            b.switch_to(rec_bb);
            let s = self.module.fresh_site();
            b.call(s, me, args);
            b.jump(cont);
            b.switch_to(cont);
        } else if self.rng.gen_bool(0.5) {
            self.lib_call(&mut b);
        }
        let s2 = self.module.fresh_site();
        b.call(s2, h2.0, h2.1);
        b.ret();
        let id = match self_id {
            Some(id) => {
                self.module.replace_function(id, b.build());
                id
            }
            None => self.module.add_function(b.build()),
        };
        if self.rng.gen_bool(self.tuning.hook_noinline_prob) {
            self.module.function_mut(id).attrs_mut().noinline = true;
        }
        (id, args)
    }

    /// Provider handler pools: the targets of multi-target dispatch sites.
    fn gen_handlers(&mut self) {
        for provider in Provider::ALL {
            for i in 0..12 {
                let deps: Vec<(FuncId, u8)> = (0..3).map(|_| self.fresh_helper()).collect();
                let args = self.rng.gen_range(1..=3u8);
                let frame = self.rng.gen_range(48..=160);
                let ops = if self.rng.gen_bool(self.tuning.handler_tail_prob) {
                    let (lo, hi) = self.tuning.tail_ops;
                    self.rng.gen_range(lo..=hi)
                } else {
                    self.rng.gen_range(12..=40)
                };
                let mut b = FunctionBuilder::new(format!("h_{provider}_{i}"), args);
                b.frame_bytes(frame);
                Self::body(&mut b, &mut self.rng, ops);
                for (id, a) in &deps {
                    let s = self.module.fresh_site();
                    b.call(s, *id, *a);
                }
                self.lib_call(&mut b);
                b.ret();
                let id = self.module.add_function(b.build());
                // Real kernels annotate a sizable share of callbacks
                // noinline (stack usage, tracing, cold attributes); these
                // keep paying the backward-edge defense.
                if self.rng.gen_bool(self.tuning.handler_noinline_prob) {
                    self.module.function_mut(id).attrs_mut().noinline = true;
                }
                self.handlers.push((id, provider, args));
            }
        }
    }

    /// 41 paravirt helpers: tiny bodies around an inline-asm indirect call,
    /// plus the five assembly jump tables.
    fn gen_paravirt(&mut self) {
        let n = self.spec.scaled(census::PARAVIRT_SITES, 3);
        for i in 0..n {
            let site = self.module.fresh_site();
            let ops = self.rng.gen_range(2..=6);
            let mut b = FunctionBuilder::new(format!("pv_{i}"), 1);
            b.frame_bytes(16);
            Self::body(&mut b, &mut self.rng, ops);
            b.call_indirect_asm(site, 1);
            b.ret();
            let id = self.module.add_function(b.build());
            self.pv_helpers.push((id, 1));
            self.interface_sites.push(InterfaceSite {
                site,
                subsystem: None,
                targets: self.stubs.iter().map(|s| (*s, Provider::Generic)).collect(),
                asm: true,
            });
        }
        for i in 0..census::ASM_JUMP_TABLES {
            let mut b = FunctionBuilder::new(format!("pv_switch_{i}"), 1);
            b.attrs(FnAttrs {
                inline_asm: true,
                ..FnAttrs::default()
            });
            let cases: Vec<_> = (0..3).map(|_| b.new_block()).collect();
            let exit = b.new_block();
            Self::body(&mut b, &mut self.rng, 3);
            b.switch(vec![1, 1, 1], cases.clone(), 1, exit, true);
            for c in cases {
                b.switch_to(c);
                b.op(OpKind::Alu);
                b.jump(exit);
            }
            b.switch_to(exit);
            b.ret();
            self.module.add_function(b.build());
        }
    }

    /// Fair-share allotment so the quotas are fully distributed over the
    /// remaining chain functions.
    fn take_share(quota: u64, funcs_left: u64) -> u64 {
        if funcs_left == 0 {
            quota
        } else {
            quota.div_ceil(funcs_left)
        }
    }

    /// Execution-probability gates cycled across interface sites: a hook is
    /// only consulted when its registration condition holds, so site weights
    /// spread over orders of magnitude — the skew that makes the paper's
    /// 99% / 99.9% / 99.9999% budget prefixes genuinely different site sets
    /// (Table 8: the 99% budget covers just 17% of the sites).
    fn next_gate(&mut self) -> u16 {
        let gates = &self.tuning.gates;
        let g = gates[self.gate_cursor % gates.len()];
        self.gate_cursor += 1;
        g
    }

    /// Emits one indirect call behind its probability gate.
    fn gated_icall(b: &mut FunctionBuilder, gate: u16, site: SiteId, args: u8) {
        if gate >= 1000 {
            b.op(OpKind::Load);
            b.call_indirect(site, args);
            return;
        }
        let call_bb = b.new_block();
        let cont = b.new_block();
        b.op(OpKind::Cmp);
        b.branch(Cond::Random { ptaken_milli: gate }, call_bb, cont);
        b.switch_to(call_bb);
        b.op(OpKind::Load);
        b.call_indirect(site, args);
        b.jump(cont);
        b.switch_to(cont);
    }

    fn emit_single_sites(&mut self, b: &mut FunctionBuilder, sub: Option<Subsystem>, n: u64) {
        for _ in 0..n.min(self.single_quota) {
            self.single_quota -= 1;
            let (hook, args) = self.gen_hook();
            let site = self.module.fresh_site();
            let gate = self.next_gate();
            Self::gated_icall(b, gate, site, args);
            self.interface_sites.push(InterfaceSite {
                site,
                subsystem: sub,
                targets: vec![(hook, Provider::Generic)],
                asm: false,
            });
        }
    }

    fn emit_multi_sites(&mut self, b: &mut FunctionBuilder, sub: Option<Subsystem>, n: u64) {
        for _ in 0..n {
            let Some(k) = self.multi_quota.pop() else {
                return;
            };
            let mut targets = Vec::with_capacity(k);
            let start = self.rng.gen_range(0..Provider::ALL.len());
            for j in 0..k {
                let provider = Provider::ALL[(start + j) % Provider::ALL.len()];
                loop {
                    let cand = self.handlers[self.rng.gen_range(0..self.handlers.len())];
                    if cand.1 == provider && !targets.iter().any(|(t, _)| *t == cand.0) {
                        targets.push((cand.0, provider));
                        break;
                    }
                }
            }
            let args = self.module.function(targets[0].0).arg_count();
            let site = self.module.fresh_site();
            let gate = self.next_gate();
            Self::gated_icall(b, gate, site, args);
            self.interface_sites.push(InterfaceSite {
                site,
                subsystem: sub,
                targets,
                asm: false,
            });
        }
    }

    /// A hot chain function shared by the trunk and syscall-prefix builders.
    fn chain_func(
        &mut self,
        name: String,
        sub: Option<Subsystem>,
        body_ops: usize,
        loop_permille: u16,
        call_pv: bool,
        tail_calls: &[(FuncId, u8)],
    ) -> (FuncId, u8) {
        let singles = Self::take_share(self.single_quota, self.chain_funcs_left);
        let multis = Self::take_share(self.multi_quota.len() as u64, self.chain_funcs_left);
        self.chain_funcs_left = self.chain_funcs_left.saturating_sub(1);

        let own_helpers: Vec<(FuncId, u8)> = (0..2).map(|_| self.fresh_helper()).collect();
        let args = self.rng.gen_range(0..=3u8);
        let frame = self.rng.gen_range(48..=256);
        let mut b = FunctionBuilder::new(name, args);
        b.frame_bytes(frame);
        Self::body(&mut b, &mut self.rng, body_ops / 2);

        if loop_permille > 0 {
            let loop_bb = b.new_block();
            let cont = b.new_block();
            b.jump(loop_bb);
            b.switch_to(loop_bb);
            Self::body(&mut b, &mut self.rng, (body_ops / 2).max(1));
            self.lib_call(&mut b);
            self.lib_call(&mut b);
            b.branch(
                Cond::Random {
                    ptaken_milli: loop_permille,
                },
                loop_bb,
                cont,
            );
            b.switch_to(cont);
        } else {
            Self::body(&mut b, &mut self.rng, body_ops / 2);
        }

        for (h, a) in &own_helpers {
            let s = self.module.fresh_site();
            b.call(s, *h, *a);
        }
        // Interface dispatches iterate like notifier chains / LSM hook
        // lists: each traversal invokes the sites a couple of times, which
        // is what makes kernel indirect calls such a large share of syscall
        // time (Table 3's 20.2% retpoline overhead).
        let singles_take = singles.min(self.single_quota);
        let multis_take = (multis as usize).min(self.multi_quota.len()) as u64;
        if singles_take + multis_take > 0 {
            let disp = b.new_block();
            let after = b.new_block();
            b.jump(disp);
            b.switch_to(disp);
            self.emit_single_sites(&mut b, sub, singles_take);
            self.emit_multi_sites(&mut b, sub, multis_take);
            b.branch(
                Cond::Random {
                    ptaken_milli: self.tuning.dispatch_loop_permille,
                },
                disp,
                after,
            );
            b.switch_to(after);
        }
        if call_pv && !self.pv_helpers.is_empty() {
            let (pv, a) = self.pv_helpers[self.pv_cursor % self.pv_helpers.len()];
            self.pv_cursor += 1;
            let s = self.module.fresh_site();
            b.call(s, pv, a);
        }
        self.lib_call(&mut b);
        for (t, a) in tail_calls {
            let s = self.module.fresh_site();
            b.call(s, *t, *a);
        }
        b.ret();
        let id = self.module.add_function(b.build());
        if self.rng.gen_bool(0.02) {
            self.module.function_mut(id).attrs_mut().optnone = true;
        }
        (id, args)
    }

    /// Shared subsystem trunks; returns each trunk's head function.
    fn gen_trunks(&mut self) -> BTreeMap<Subsystem, (FuncId, u8)> {
        let mut heads = BTreeMap::new();
        for sub in Subsystem::ALL {
            let mut next: Option<(FuncId, u8)> = None;
            for i in (0..TRUNK_LEN).rev() {
                let tail: Vec<(FuncId, u8)> = next.into_iter().collect();
                let ops = self.rng.gen_range(12..=30);
                let f = self.chain_func(
                    format!("{sub}_t{i}"),
                    Some(sub),
                    ops,
                    0,
                    i == TRUNK_LEN / 2,
                    &tail,
                );
                next = Some(f);
            }
            heads.insert(sub, next.expect("trunk has at least one stage"));
        }
        heads
    }

    /// Per-syscall prefixes + entry functions.
    fn gen_syscall_chains(
        &mut self,
        trunks: &BTreeMap<Subsystem, (FuncId, u8)>,
    ) -> BTreeMap<Syscall, FuncId> {
        let mut entries = BTreeMap::new();
        for sc in Syscall::ALL {
            let (len, body, permille) = sc.path_shape();
            let trunk_calls: Vec<(FuncId, u8)> = sc.trunks().iter().map(|s| trunks[s]).collect();
            let mut next: Vec<(FuncId, u8)> = trunk_calls;
            for i in (0..len).rev() {
                let f = self.chain_func(
                    format!("{}_c{i}", sc.name().replace('/', "_")),
                    None,
                    body,
                    if i % 2 == 0 { permille } else { 0 },
                    i == 1,
                    &next,
                );
                next = vec![f];
            }
            let mut b = FunctionBuilder::new(format!("sys_{}", sc.name().replace('/', "_")), 2);
            b.frame_bytes(64);
            Self::body(&mut b, &mut self.rng, 4);
            let s = self.module.fresh_site();
            let (head, a) = next[0];
            b.call(s, head, a);
            b.ret();
            entries.insert(sc, self.module.add_function(b.build()));
        }
        entries
    }

    /// The never-executed static mass: drivers, init code, etc.
    fn gen_cold_mass(&mut self) {
        let hot_census = self.module.census();
        let target_returns = self.spec.scaled(census::TOTAL_RETURNS, 200);
        let target_icalls = self.spec.scaled(census::TOTAL_ICALLS, 60);
        let mut icall_quota = target_icalls.saturating_sub(hot_census.indirect_calls);
        let mut table_quota = self.spec.scaled(census::COLD_JUMP_TABLES, 8);
        let mut returns = hot_census.returns;
        let mut cold: Vec<(FuncId, u8)> = Vec::new();

        while returns < target_returns {
            let i = cold.len();
            let args = self.rng.gen_range(0..=3u8);
            let frame = self.rng.gen_range(32..=192);
            let mut b = FunctionBuilder::new(format!("cold_{i}"), args);
            b.frame_bytes(frame);
            let rets = self.rng.gen_range(2..=4u32);

            let exits: Vec<_> = (0..rets - 1).map(|_| b.new_block()).collect();
            let ops = self.rng.gen_range(6..=30);
            Self::body(&mut b, &mut self.rng, ops);
            let ncalls = self.rng.gen_range(0..=2);
            for _ in 0..ncalls {
                if cold.is_empty() {
                    self.lib_call(&mut b);
                } else {
                    let (callee, a) = cold[self.rng.gen_range(0..cold.len())];
                    let s = self.module.fresh_site();
                    b.call(s, callee, a);
                }
            }
            for _ in 0..3 {
                if icall_quota == 0 {
                    break;
                }
                icall_quota -= 1;
                let s = self.module.fresh_site();
                let a = self.rng.gen_range(0..=3);
                b.op(OpKind::Load);
                b.call_indirect(s, a);
            }
            if table_quota > 0 {
                table_quota -= 1;
                let ncases = self.rng.gen_range(3..=8);
                let cases: Vec<_> = (0..ncases).map(|_| b.new_block()).collect();
                let merge = b.new_block();
                let weights = vec![1u16; cases.len()];
                b.switch(weights, cases.clone(), 1, merge, true);
                for c in &cases {
                    b.switch_to(*c);
                    b.op(OpKind::Alu);
                    b.jump(merge);
                }
                b.switch_to(merge);
            }
            // Route to the early exits: each gets its own return block.
            for e in &exits {
                let cont = b.new_block();
                b.branch(Cond::Random { ptaken_milli: 200 }, *e, cont);
                b.switch_to(cont);
                Self::body(&mut b, &mut self.rng, 3);
            }
            b.ret();
            for e in exits {
                b.switch_to(e);
                b.ret();
            }
            let id = self.module.add_function(b.build());
            returns += u64::from(rets);
            cold.push((id, args));
        }
    }

    /// Boot-only code: present, unexecuted, audit-exempt returns.
    fn gen_boot(&mut self) {
        let mut prev: Option<(FuncId, u8)> = None;
        for i in 0..4 {
            let mut b = FunctionBuilder::new(format!("boot_{i}"), 0);
            b.attrs(FnAttrs {
                boot_only: true,
                ..FnAttrs::default()
            });
            Self::body(&mut b, &mut self.rng, 10);
            if let Some((p, a)) = prev {
                let s = self.module.fresh_site();
                b.call(s, p, a);
            }
            let s = self.module.fresh_site();
            b.op(OpKind::Load);
            b.call_indirect(s, 0);
            b.ret();
            prev = Some((self.module.add_function(b.build()), 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Kernel {
        Kernel::generate(KernelSpec::test())
    }

    #[test]
    fn generated_kernel_verifies() {
        let k = small();
        k.module.verify().unwrap();
        assert!(k.module.len() > 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Kernel::generate(KernelSpec::test());
        let b = Kernel::generate(KernelSpec::test());
        assert_eq!(a.module.len(), b.module.len());
        assert_eq!(a.module.code_bytes(), b.module.code_bytes());
        assert_eq!(a.interface_sites.len(), b.interface_sites.len());
    }

    #[test]
    fn every_syscall_has_an_entry() {
        let k = small();
        for sc in Syscall::ALL {
            let f = k.entry(sc);
            assert!(k.module.function(f).name().starts_with("sys_"));
        }
        assert_eq!(k.entries().count(), 20);
    }

    #[test]
    fn interface_sites_have_targets_and_tags() {
        let k = small();
        assert!(!k.interface_sites.is_empty());
        for s in &k.interface_sites {
            assert!(!s.targets.is_empty(), "{} has no targets", s.site);
        }
        let asm = k.interface_sites.iter().filter(|s| s.asm).count();
        assert!(asm >= 3, "paravirt sites present");
        let multi = k
            .interface_sites
            .iter()
            .filter(|s| !s.asm && s.targets.len() > 1)
            .count();
        assert!(multi > 0, "multi-target dispatch sites present");
    }

    #[test]
    fn quotas_are_fully_distributed() {
        let k = small();
        let spec = KernelSpec::test();
        let singles = k
            .interface_sites
            .iter()
            .filter(|s| !s.asm && s.targets.len() == 1)
            .count() as u64;
        assert_eq!(singles, spec.scaled(517, 40));
    }

    #[test]
    fn census_scales_with_spec() {
        let small = Kernel::generate(KernelSpec {
            seed: 1,
            scale: 0.02,
        });
        let bigger = Kernel::generate(KernelSpec {
            seed: 1,
            scale: 0.06,
        });
        let cs = small.module.census();
        let cb = bigger.module.census();
        assert!(cb.returns > cs.returns);
        assert!(cb.indirect_calls > cs.indirect_calls);
        assert!(cb.indirect_jumps > cs.indirect_jumps);
    }

    #[test]
    fn paper_scale_census_matches_linux() {
        let k = Kernel::generate(KernelSpec::paper());
        let c = k.module.census();
        let icalls = c.indirect_calls as f64;
        let rets = c.returns as f64;
        assert!(
            (icalls - 20_927.0).abs() / 20_927.0 < 0.1,
            "icall census ~20927, got {icalls}"
        );
        assert!(
            (rets - 133_005.0).abs() / 133_005.0 < 0.1,
            "return census ~133005, got {rets}"
        );
        // Table 4 histogram of hot sites (excluding paravirt).
        let mut hist = [0u64; 7];
        for s in k.interface_sites.iter().filter(|s| !s.asm) {
            let n = s.targets.len();
            hist[if n > 6 { 6 } else { n - 1 }] += 1;
        }
        assert_eq!(hist[0], 517);
        assert_eq!(hist[1], 109);
        assert_eq!(hist[2], 34);
        assert_eq!(hist[3], 23);
        assert_eq!(hist[4], 6);
        assert_eq!(hist[5], 12);
        assert_eq!(hist[6], 22);
    }

    #[test]
    fn tuning_knobs_change_the_generated_kernel() {
        let spec = KernelSpec::test();
        let default = Kernel::generate(spec);
        let hot_tuning = KernelTuning {
            gates: vec![1000], // every interface site ungated
            hook_recursion_prob: 0.0,
            ..KernelTuning::default()
        };
        let hot = Kernel::generate_with(spec, hot_tuning);
        hot.module.verify().unwrap();
        // The tuned kernel is a genuinely different program.
        assert_ne!(hot.module.code_bytes(), default.module.code_bytes());
        // No recursion: the call graph is a DAG everywhere.
        let graph = pibe_ir::CallGraph::build(&hot.module);
        assert!(hot.module.func_ids().all(|f| !graph.is_recursive(f)));
    }

    #[test]
    fn boot_functions_are_marked() {
        let k = small();
        let boot = k
            .module
            .functions()
            .iter()
            .filter(|f| f.attrs().boot_only)
            .count();
        assert_eq!(boot, 4);
    }
}
