//! Workload definitions: LMBench, Apache, Nginx, DBench analogues.
//!
//! A [`WorkloadSpec`] owns everything that makes execution workload-
//! dependent: which entry points run (the benchmark definitions reference
//! them) and how indirect-call sites resolve (per-provider preference
//! weights plus a workload-specific oracle seed). The paper's robustness
//! experiment (§8.4) relies on exactly this: LMBench and ApacheBench
//! exercise overlapping-but-different hot sets and skew shared dispatch
//! sites toward different targets.

use crate::gen::Kernel;
use crate::spec::Provider;
use crate::syscalls::Syscall;
use pibe_sim::MapResolver;
use serde::{Deserialize, Serialize};

/// A workload: a name, an oracle seed, and provider preferences.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name (used in reports).
    pub name: String,
    /// Seed for per-site target-weight jitter.
    pub oracle_seed: u64,
    /// Relative preference per provider: how often this workload's indirect
    /// dispatches land on each provider's implementation.
    pub provider_weight: Vec<(Provider, u32)>,
}

impl WorkloadSpec {
    fn weight_of(&self, p: Provider) -> u32 {
        self.provider_weight
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, w)| *w)
            .unwrap_or(1)
    }

    /// Builds the target resolver this workload induces over `kernel`'s
    /// interface sites: per site, each target's weight is a deterministic
    /// jitter (from `oracle_seed`) scaled by the provider preference.
    pub fn resolver(&self, kernel: &Kernel) -> MapResolver {
        let mut r = MapResolver::new();
        for iface in &kernel.interface_sites {
            let dist: Vec<_> = iface
                .targets
                .iter()
                .map(|(f, p)| {
                    let jitter = 1
                        + (splitmix(self.oracle_seed ^ iface.site.raw() ^ f.index() as u64) % 16)
                            as u32;
                    (*f, jitter * self.weight_of(*p))
                })
                .collect();
            r.insert(iface.site, dist);
        }
        r
    }

    /// The LMBench workload: balanced across providers (the suite touches
    /// files, pipes, sockets, and processes alike).
    pub fn lmbench() -> Self {
        WorkloadSpec {
            name: "lmbench".into(),
            oracle_seed: 0x11AA,
            provider_weight: vec![
                (Provider::Tmpfs, 6),
                (Provider::Ext4, 5),
                (Provider::Proc, 2),
                (Provider::Sock, 5),
                (Provider::Pipe, 4),
                (Provider::Dev, 2),
                (Provider::Generic, 3),
            ],
        }
    }

    /// The ApacheBench workload: socket-dominated with static-file reads.
    pub fn apache() -> Self {
        WorkloadSpec {
            name: "apache".into(),
            oracle_seed: 0x22BB,
            provider_weight: vec![
                (Provider::Tmpfs, 3),
                (Provider::Ext4, 4),
                (Provider::Proc, 1),
                (Provider::Sock, 14),
                (Provider::Pipe, 1),
                (Provider::Dev, 1),
                (Provider::Generic, 2),
            ],
        }
    }

    /// The Nginx workload: like Apache but even more socket/event heavy.
    pub fn nginx() -> Self {
        WorkloadSpec {
            name: "nginx".into(),
            oracle_seed: 0x33CC,
            provider_weight: vec![
                (Provider::Tmpfs, 2),
                (Provider::Ext4, 3),
                (Provider::Proc, 1),
                (Provider::Sock, 16),
                (Provider::Pipe, 1),
                (Provider::Dev, 1),
                (Provider::Generic, 2),
            ],
        }
    }

    /// The DBench workload: a file-server simulation on tmpfs.
    pub fn dbench() -> Self {
        WorkloadSpec {
            name: "dbench".into(),
            oracle_seed: 0x44DD,
            provider_weight: vec![
                (Provider::Tmpfs, 16),
                (Provider::Ext4, 2),
                (Provider::Proc, 1),
                (Provider::Sock, 2),
                (Provider::Pipe, 2),
                (Provider::Dev, 1),
                (Provider::Generic, 2),
            ],
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One LMBench latency benchmark: repeated invocations of one entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Benchmark {
    /// The entry point exercised (its [`Syscall::name`] is the Table 2 row).
    pub syscall: Syscall,
    /// Timed iterations.
    pub iterations: u32,
    /// Warm-up iterations (caches and predictors, as LMBench does).
    pub warmup: u32,
}

/// The 20-benchmark LMBench latency suite of Table 2. `iters` scales the
/// per-benchmark iteration count (tests use small values; tables larger).
pub fn lmbench_suite(iters: u32) -> Vec<Benchmark> {
    Syscall::ALL
        .iter()
        .map(|s| {
            // Heavy fork benchmarks run fewer iterations, as in LMBench.
            let heavy = matches!(
                s,
                Syscall::ForkExit | Syscall::ForkExec | Syscall::ForkShell
            );
            Benchmark {
                syscall: *s,
                iterations: if heavy {
                    iters.div_ceil(4).max(2)
                } else {
                    iters
                },
                warmup: if heavy { 1 } else { (iters / 8).max(2) },
            }
        })
        .collect()
}

/// A macrobenchmark: a repeated *request* composed of several syscalls
/// (Table 7 reports throughput = requests per second).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacroBench {
    /// Benchmark name (Table 7 row).
    pub name: String,
    /// The syscalls one request performs, with multiplicities.
    pub request: Vec<(Syscall, u32)>,
    /// Requests per measurement.
    pub requests: u32,
    /// Warm-up requests.
    pub warmup: u32,
}

impl MacroBench {
    /// Nginx serving a small static page over keep-alive connections.
    pub fn nginx(requests: u32) -> Self {
        MacroBench {
            name: "Nginx".into(),
            request: vec![
                (Syscall::SelectTcp, 2),
                (Syscall::Tcp, 2),
                (Syscall::Write, 1),
                (Syscall::Open, 1),
                (Syscall::Read, 1),
                (Syscall::Fstat, 1),
            ],
            requests,
            warmup: (requests / 8).max(1),
        }
    }

    /// Apache (MPM event) serving the same page with more per-request work.
    pub fn apache(requests: u32) -> Self {
        MacroBench {
            name: "Apache".into(),
            request: vec![
                (Syscall::SelectTcp, 1),
                (Syscall::TcpConn, 1),
                (Syscall::Tcp, 2),
                (Syscall::Stat, 2),
                (Syscall::Open, 1),
                (Syscall::Read, 2),
                (Syscall::Write, 1),
                (Syscall::SigDispatch, 1),
            ],
            requests,
            warmup: (requests / 8).max(1),
        }
    }

    /// DBench file-server load on tmpfs.
    pub fn dbench(requests: u32) -> Self {
        MacroBench {
            name: "DBench".into(),
            request: vec![
                (Syscall::Open, 2),
                (Syscall::Read, 4),
                (Syscall::Write, 4),
                (Syscall::Stat, 3),
                (Syscall::Fstat, 2),
                (Syscall::Mmap, 1),
            ],
            requests,
            warmup: (requests / 8).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelSpec;

    #[test]
    fn resolver_covers_every_interface_site() {
        let k = Kernel::generate(KernelSpec::test());
        let r = WorkloadSpec::lmbench().resolver(&k);
        for s in &k.interface_sites {
            let dist = r.get(s.site).expect("site must be resolvable");
            assert_eq!(dist.len(), s.targets.len());
            assert!(dist.iter().all(|(_, w)| *w > 0));
        }
    }

    #[test]
    fn workloads_skew_shared_sites_differently() {
        let k = Kernel::generate(KernelSpec::test());
        let lm = WorkloadSpec::lmbench().resolver(&k);
        let ap = WorkloadSpec::apache().resolver(&k);
        // Find a multi-provider site and compare weight vectors.
        let site = k
            .interface_sites
            .iter()
            .find(|s| s.targets.len() >= 3)
            .expect("a multi-target site exists");
        let a = lm.get(site.site).unwrap();
        let b = ap.get(site.site).unwrap();
        assert_ne!(a, b, "different workloads induce different distributions");
    }

    #[test]
    fn lmbench_suite_covers_table2() {
        let suite = lmbench_suite(64);
        assert_eq!(suite.len(), 20);
        let fork = suite
            .iter()
            .find(|b| b.syscall == Syscall::ForkShell)
            .unwrap();
        assert!(fork.iterations < 64, "fork benchmarks run fewer iterations");
    }

    #[test]
    fn macro_benches_have_nonempty_requests() {
        for mb in [
            MacroBench::nginx(10),
            MacroBench::apache(10),
            MacroBench::dbench(10),
        ] {
            assert!(!mb.request.is_empty());
            assert!(mb.requests > 0);
            let total: u32 = mb.request.iter().map(|(_, n)| *n).sum();
            assert!(total >= 4, "{} request too trivial", mb.name);
        }
    }
}
