//! The hardening phase: profile + config → production image.

use crate::config::PibeConfig;
use pibe_harden::{audit, costs, HardenReport, SecurityAudit};
use pibe_ir::Module;
use pibe_passes::{
    promote_indirect_calls, run_inliner, IcpStats, InlinerStats, SiteWeights,
};
use pibe_profile::Profile;
use serde::{Deserialize, Serialize};

/// A production kernel image: the transformed module plus every statistic
/// the evaluation section reports about how it was built.
#[derive(Debug, Clone)]
pub struct Image {
    /// The transformed, hardened module.
    pub module: Module,
    /// The configuration that built it.
    pub config: PibeConfig,
    /// ICP statistics, when promotion ran.
    pub icp_stats: Option<IcpStats>,
    /// Inliner statistics, when inlining ran.
    pub inline_stats: Option<InlinerStats>,
    /// Jump-table handling report.
    pub harden_report: HardenReport,
    /// Static security classification of every indirect branch (Table 11).
    pub audit: SecurityAudit,
    /// Image size statistics.
    pub size: ImageSize,
}

/// Size measures of an image (Table 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageSize {
    /// Model machine-code bytes including defense sequences.
    pub bytes: u64,
    /// Resident kernel-text memory: bytes rounded up to 2 MiB huge pages
    /// (why Table 12's "mem size" moves in 12.5%/25% steps).
    pub mem_pages_2m: u64,
}

impl ImageSize {
    fn of(module: &Module, defenses: pibe_harden::DefenseSet) -> Self {
        let bytes = costs::hardened_image_bytes(module, defenses);
        ImageSize {
            bytes,
            mem_pages_2m: bytes.div_ceil(2 * 1024 * 1024),
        }
    }
}

/// Runs the hardening phase: clones `base`, applies indirect call promotion
/// and the security inliner per `config` (ICP first, as in the paper), then
/// the defense transforms, and audits the result.
///
/// `base` itself is never modified; experiments build many images from one
/// profiled kernel.
pub fn build_image(base: &Module, profile: &Profile, config: &PibeConfig) -> Image {
    let mut module = base.clone();
    let mut weights = SiteWeights::from_profile(profile);

    let icp_stats = config
        .icp
        .as_ref()
        .map(|icp| promote_indirect_calls(&mut module, &mut weights, profile, icp));
    let inline_stats = config
        .inliner
        .as_ref()
        .map(|inl| run_inliner(&mut module, &weights, profile, inl));

    let harden_report = pibe_harden::apply(&mut module, config.defenses);
    let audit = audit(&module, config.defenses);
    let size = ImageSize::of(&module, config.defenses);

    debug_assert!(module.verify().is_ok(), "pipeline must preserve validity");
    Image {
        module,
        config: *config,
        icp_stats,
        inline_stats,
        harden_report,
        audit,
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_harden::DefenseSet;
    use pibe_kernel::{
        measure::collect_profile,
        workloads::{lmbench_suite, WorkloadSpec},
        Kernel, KernelSpec,
    };
    use pibe_profile::Budget;

    fn profiled_kernel() -> (Kernel, Profile) {
        let k = Kernel::generate(KernelSpec::test());
        let p = collect_profile(&k, &WorkloadSpec::lmbench(), &lmbench_suite(6), 2, 7)
            .expect("profiling run succeeds");
        (k, p)
    }

    #[test]
    fn lto_image_is_the_identity() {
        let (k, p) = profiled_kernel();
        let img = build_image(&k.module, &p, &PibeConfig::lto());
        assert_eq!(img.module.code_bytes(), k.module.code_bytes());
        assert!(img.icp_stats.is_none() && img.inline_stats.is_none());
    }

    #[test]
    fn full_image_elides_and_grows() {
        let (k, p) = profiled_kernel();
        let img = build_image(&k.module, &p, &PibeConfig::full(Budget::P99_9, DefenseSet::ALL));
        let icp = img.icp_stats.unwrap();
        let inl = img.inline_stats.unwrap();
        assert!(icp.promoted_targets > 0, "hot targets promoted");
        assert!(inl.inlined_sites > 0, "hot sites inlined");
        assert!(
            img.module.code_bytes() > k.module.code_bytes(),
            "optimization grows the image"
        );
        img.module.verify().unwrap();
    }

    #[test]
    fn hardening_disables_jump_tables_and_audits() {
        let (k, p) = profiled_kernel();
        let img = build_image(&k.module, &p, &PibeConfig::lto_with(DefenseSet::ALL));
        assert!(img.harden_report.jump_tables_disabled > 0);
        assert_eq!(img.harden_report.jump_tables_kept, 5, "asm tables remain");
        assert_eq!(img.audit.vulnerable_ijumps, 5);
        assert!(img.audit.vulnerable_icalls > 0, "paravirt icalls remain");
        assert_eq!(img.audit.vulnerable_returns, 0);
        assert!(img.audit.boot_returns > 0);
    }

    #[test]
    fn inlining_duplicates_paravirt_gadgets() {
        let (k, p) = profiled_kernel();
        let before = build_image(&k.module, &p, &PibeConfig::lto_with(DefenseSet::ALL));
        let after = build_image(&k.module, &p, &PibeConfig::lax(DefenseSet::ALL));
        assert!(
            after.audit.vulnerable_icalls >= before.audit.vulnerable_icalls,
            "Table 11: vulnerable icalls grow with inlining ({} -> {})",
            before.audit.vulnerable_icalls,
            after.audit.vulnerable_icalls
        );
        assert!(after.audit.protected_icalls > before.audit.protected_icalls);
    }

    #[test]
    fn image_size_reports_huge_pages() {
        let (k, p) = profiled_kernel();
        let img = build_image(&k.module, &p, &PibeConfig::lto());
        assert_eq!(
            img.size.mem_pages_2m,
            img.size.bytes.div_ceil(2 * 1024 * 1024)
        );
        let hard = build_image(&k.module, &p, &PibeConfig::lto_with(DefenseSet::ALL));
        assert!(hard.size.bytes > img.size.bytes, "defense sequences add bytes");
    }
}
