//! The hardening phase: profile + config → production image.
//!
//! The staged [`ImageBuilder`] is the canonical entry point:
//!
//! ```ignore
//! let image = Image::builder(&base)
//!     .profile(&profile)
//!     .config(cfg)
//!     .build()?;
//! ```
//!
//! [`build_image`] remains as a thin forwarding wrapper for callers that
//! want the original panicking signature.

use crate::config::PibeConfig;
use pibe_harden::{audit, costs, HardenReport, SecurityAudit};
use pibe_ir::{Module, VerifyError};
use pibe_passes::{promote_indirect_calls, run_inliner, IcpStats, InlinerStats, SiteWeights};
use pibe_profile::Profile;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// A production kernel image: the transformed module plus every statistic
/// the evaluation section reports about how it was built.
#[derive(Debug, Clone)]
pub struct Image {
    /// The transformed, hardened module.
    pub module: Module,
    /// The configuration that built it.
    pub config: PibeConfig,
    /// ICP statistics, when promotion ran.
    pub icp_stats: Option<IcpStats>,
    /// Inliner statistics, when inlining ran.
    pub inline_stats: Option<InlinerStats>,
    /// Jump-table handling report.
    pub harden_report: HardenReport,
    /// Static security classification of every indirect branch (Table 11).
    pub audit: SecurityAudit,
    /// Image size statistics.
    pub size: ImageSize,
    /// Wall-clock cost of each pipeline stage for this build.
    pub metrics: BuildMetrics,
}

impl Image {
    /// Starts a staged build over `base`. The base module is never
    /// modified; the pipeline clones it.
    pub fn builder(base: &Module) -> ImageBuilder<'_> {
        ImageBuilder { base }
    }
}

/// Size measures of an image (Table 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageSize {
    /// Model machine-code bytes including defense sequences.
    pub bytes: u64,
    /// Resident kernel-text memory: bytes rounded up to 2 MiB huge pages
    /// (why Table 12's "mem size" moves in 12.5%/25% steps).
    pub mem_pages_2m: u64,
}

impl ImageSize {
    fn of(module: &Module, defenses: pibe_harden::DefenseSet) -> Self {
        let bytes = costs::hardened_image_bytes(module, defenses);
        ImageSize {
            bytes,
            mem_pages_2m: bytes.div_ceil(2 * 1024 * 1024),
        }
    }
}

/// Wall-clock nanoseconds spent in each pipeline stage of one build.
///
/// Timings are measurement artifacts, not build outputs: two builds of the
/// same configuration produce identical modules and statistics but
/// different `BuildMetrics`. The farm's aggregated report sums these across
/// every image it built.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BuildMetrics {
    /// Cloning the base module.
    pub clone_ns: u64,
    /// Indirect call promotion (zero when the config disables ICP).
    pub icp_ns: u64,
    /// The security inliner (zero when the config disables inlining).
    pub inline_ns: u64,
    /// Defense transforms.
    pub harden_ns: u64,
    /// The static security audit.
    pub audit_ns: u64,
    /// Size accounting.
    pub size_ns: u64,
    /// Post-pipeline structural verification.
    pub verify_ns: u64,
    /// End-to-end build time (at least the sum of the stages).
    pub total_ns: u64,
}

impl BuildMetrics {
    /// Stage labels and durations in pipeline order (excludes the total).
    pub fn stages(&self) -> [(&'static str, u64); 7] {
        [
            ("clone", self.clone_ns),
            ("icp", self.icp_ns),
            ("inline", self.inline_ns),
            ("harden", self.harden_ns),
            ("audit", self.audit_ns),
            ("size", self.size_ns),
            ("verify", self.verify_ns),
        ]
    }

    /// Accumulates another build's timings into this aggregate.
    pub fn accumulate(&mut self, other: &BuildMetrics) {
        self.clone_ns += other.clone_ns;
        self.icp_ns += other.icp_ns;
        self.inline_ns += other.inline_ns;
        self.harden_ns += other.harden_ns;
        self.audit_ns += other.audit_ns;
        self.size_ns += other.size_ns;
        self.verify_ns += other.verify_ns;
        self.total_ns += other.total_ns;
    }
}

/// Why the pipeline refused to produce an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The transformed module failed structural verification — a pass
    /// violated an IR invariant. Unlike the original `debug_assert!`, this
    /// check runs in release builds too: a silently malformed image would
    /// invalidate every downstream measurement.
    InvalidModule(VerifyError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidModule(e) => {
                write!(f, "pipeline produced an invalid module: {e}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// First builder stage: has a base module, needs a profile.
#[derive(Debug, Clone, Copy)]
pub struct ImageBuilder<'m> {
    base: &'m Module,
}

impl<'m> ImageBuilder<'m> {
    /// Attaches the profile that drives budget selection in both passes.
    pub fn profile<'p>(self, profile: &'p Profile) -> ProfiledImageBuilder<'m, 'p> {
        ProfiledImageBuilder {
            base: self.base,
            profile,
            config: PibeConfig::lto(),
        }
    }
}

/// Second builder stage: ready to build. The configuration defaults to the
/// LTO baseline ([`PibeConfig::lto`]) until [`config`](Self::config)
/// replaces it.
#[derive(Debug, Clone, Copy)]
pub struct ProfiledImageBuilder<'m, 'p> {
    base: &'m Module,
    profile: &'p Profile,
    config: PibeConfig,
}

impl<'m, 'p> ProfiledImageBuilder<'m, 'p> {
    /// Selects the build configuration.
    pub fn config(mut self, config: PibeConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the hardening phase: clones the base, applies indirect call
    /// promotion and the security inliner per the configuration (ICP first,
    /// as in the paper), then the defense transforms, audits the result,
    /// and verifies the final module.
    ///
    /// # Errors
    /// [`PipelineError::InvalidModule`] if the transformed module fails
    /// structural verification.
    pub fn build(self) -> Result<Image, PipelineError> {
        let config = self.config;
        let build_start = Instant::now();
        let mut metrics = BuildMetrics::default();

        let stage = Instant::now();
        let mut module = self.base.clone();
        metrics.clone_ns = stage.elapsed().as_nanos() as u64;

        let mut weights = SiteWeights::from_profile(self.profile);

        let stage = Instant::now();
        let icp_stats = config
            .icp
            .as_ref()
            .map(|icp| promote_indirect_calls(&mut module, &mut weights, self.profile, icp));
        metrics.icp_ns = stage.elapsed().as_nanos() as u64;

        let stage = Instant::now();
        let inline_stats = config
            .inliner
            .as_ref()
            .map(|inl| run_inliner(&mut module, &weights, self.profile, inl));
        metrics.inline_ns = stage.elapsed().as_nanos() as u64;

        let stage = Instant::now();
        let harden_report = pibe_harden::apply(&mut module, config.defenses);
        metrics.harden_ns = stage.elapsed().as_nanos() as u64;

        let stage = Instant::now();
        let audit = audit(&module, config.defenses);
        metrics.audit_ns = stage.elapsed().as_nanos() as u64;

        let stage = Instant::now();
        let size = ImageSize::of(&module, config.defenses);
        metrics.size_ns = stage.elapsed().as_nanos() as u64;

        let stage = Instant::now();
        module.verify().map_err(PipelineError::InvalidModule)?;
        metrics.verify_ns = stage.elapsed().as_nanos() as u64;

        metrics.total_ns = build_start.elapsed().as_nanos() as u64;
        Ok(Image {
            module,
            config,
            icp_stats,
            inline_stats,
            harden_report,
            audit,
            size,
            metrics,
        })
    }
}

/// Runs the hardening phase with the original signature; forwards to
/// [`Image::builder`].
///
/// `base` itself is never modified; experiments build many images from one
/// profiled kernel.
///
/// # Panics
/// Panics if the pipeline produces a structurally invalid module (the
/// builder API returns this as [`PipelineError::InvalidModule`] instead).
pub fn build_image(base: &Module, profile: &Profile, config: &PibeConfig) -> Image {
    Image::builder(base)
        .profile(profile)
        .config(*config)
        .build()
        .expect("pipeline must preserve validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_harden::DefenseSet;
    use pibe_ir::FunctionBuilder;
    use pibe_kernel::{
        measure::collect_profile,
        workloads::{lmbench_suite, WorkloadSpec},
        Kernel, KernelSpec,
    };
    use pibe_profile::Budget;

    fn profiled_kernel() -> (Kernel, Profile) {
        let k = Kernel::generate(KernelSpec::test());
        let p = collect_profile(&k, &WorkloadSpec::lmbench(), &lmbench_suite(6), 2, 7)
            .expect("profiling run succeeds");
        (k, p)
    }

    #[test]
    fn lto_image_is_the_identity() {
        let (k, p) = profiled_kernel();
        let img = build_image(&k.module, &p, &PibeConfig::lto());
        assert_eq!(img.module.code_bytes(), k.module.code_bytes());
        assert!(img.icp_stats.is_none() && img.inline_stats.is_none());
    }

    #[test]
    fn full_image_elides_and_grows() {
        let (k, p) = profiled_kernel();
        let img = build_image(
            &k.module,
            &p,
            &PibeConfig::full(Budget::P99_9, DefenseSet::ALL),
        );
        let icp = img.icp_stats.unwrap();
        let inl = img.inline_stats.unwrap();
        assert!(icp.promoted_targets > 0, "hot targets promoted");
        assert!(inl.inlined_sites > 0, "hot sites inlined");
        assert!(
            img.module.code_bytes() > k.module.code_bytes(),
            "optimization grows the image"
        );
        img.module.verify().unwrap();
    }

    #[test]
    fn hardening_disables_jump_tables_and_audits() {
        let (k, p) = profiled_kernel();
        let img = build_image(&k.module, &p, &PibeConfig::lto_with(DefenseSet::ALL));
        assert!(img.harden_report.jump_tables_disabled > 0);
        assert_eq!(img.harden_report.jump_tables_kept, 5, "asm tables remain");
        assert_eq!(img.audit.vulnerable_ijumps, 5);
        assert!(img.audit.vulnerable_icalls > 0, "paravirt icalls remain");
        assert_eq!(img.audit.vulnerable_returns, 0);
        assert!(img.audit.boot_returns > 0);
    }

    #[test]
    fn inlining_duplicates_paravirt_gadgets() {
        let (k, p) = profiled_kernel();
        let before = build_image(&k.module, &p, &PibeConfig::lto_with(DefenseSet::ALL));
        let after = build_image(&k.module, &p, &PibeConfig::lax(DefenseSet::ALL));
        assert!(
            after.audit.vulnerable_icalls >= before.audit.vulnerable_icalls,
            "Table 11: vulnerable icalls grow with inlining ({} -> {})",
            before.audit.vulnerable_icalls,
            after.audit.vulnerable_icalls
        );
        assert!(after.audit.protected_icalls > before.audit.protected_icalls);
    }

    #[test]
    fn image_size_reports_huge_pages() {
        let (k, p) = profiled_kernel();
        let img = build_image(&k.module, &p, &PibeConfig::lto());
        assert_eq!(
            img.size.mem_pages_2m,
            img.size.bytes.div_ceil(2 * 1024 * 1024)
        );
        let hard = build_image(&k.module, &p, &PibeConfig::lto_with(DefenseSet::ALL));
        assert!(
            hard.size.bytes > img.size.bytes,
            "defense sequences add bytes"
        );
    }

    #[test]
    fn builder_matches_build_image_and_defaults_to_lto() {
        let (k, p) = profiled_kernel();
        let via_fn = build_image(&k.module, &p, &PibeConfig::lax(DefenseSet::ALL));
        let via_builder = Image::builder(&k.module)
            .profile(&p)
            .config(PibeConfig::lax(DefenseSet::ALL))
            .build()
            .expect("builds");
        assert_eq!(via_fn.size, via_builder.size);
        assert_eq!(via_fn.icp_stats, via_builder.icp_stats);
        assert_eq!(via_fn.inline_stats, via_builder.inline_stats);

        // Without an explicit config the builder produces the LTO baseline.
        let default = Image::builder(&k.module)
            .profile(&p)
            .build()
            .expect("builds");
        assert_eq!(default.config, PibeConfig::lto());
        assert!(default.icp_stats.is_none());
    }

    #[test]
    fn build_metrics_cover_every_stage() {
        let (k, p) = profiled_kernel();
        let img = Image::builder(&k.module)
            .profile(&p)
            .config(PibeConfig::lax(DefenseSet::ALL))
            .build()
            .expect("builds");
        let m = img.metrics;
        assert!(m.clone_ns > 0 && m.icp_ns > 0 && m.inline_ns > 0);
        assert!(m.harden_ns > 0 && m.verify_ns > 0);
        let stage_sum: u64 = m.stages().iter().map(|(_, ns)| ns).sum();
        assert!(m.total_ns >= stage_sum, "total covers the stages");

        let mut agg = BuildMetrics::default();
        agg.accumulate(&m);
        agg.accumulate(&m);
        assert_eq!(agg.total_ns, 2 * m.total_ns);
        assert_eq!(agg.stages()[1].1, 2 * m.icp_ns);
    }

    #[test]
    fn invalid_pipeline_output_is_reported_in_release_builds() {
        // A function whose entry jumps to itself violates the IR's "every
        // function returns" invariant; with no optimization or defenses the
        // pipeline passes the module through and must surface the
        // verification failure (even in release builds, where the old
        // `debug_assert!` was compiled out).
        let mut m = Module::new("broken");
        let mut b = FunctionBuilder::new("spin", 0);
        b.op(pibe_ir::OpKind::Alu);
        b.ret();
        let f = m.add_function(b.build());
        m.function_mut(f).blocks_mut()[0].term = pibe_ir::Terminator::Jump {
            target: pibe_ir::BlockId::from_raw(0),
        };
        let p = Profile::new();
        let err = Image::builder(&m)
            .profile(&p)
            .config(PibeConfig::lto())
            .build()
            .expect_err("invalid module must be rejected");
        let PipelineError::InvalidModule(_) = err;
        assert!(err.to_string().contains("invalid module"));
    }
}
