//! The hardening phase: profile + config → production image.
//!
//! The staged [`ImageBuilder`] is the canonical entry point:
//!
//! ```ignore
//! let image = Image::builder(&base)
//!     .profile(&profile)
//!     .config(cfg)
//!     .build()?;
//! ```
//!
//! The pipeline is *fault tolerant*: the profile is validated (and, under
//! [`ValidationPolicy::Repair`], repaired) against the module before any
//! pass consumes it, and each transform stage runs transactionally — the
//! module is snapshotted before the stage, verified after it, and rolled
//! back to the snapshot if the stage produced structurally invalid IR. What
//! happens next is the [`FailurePolicy`]'s call: abort with a typed
//! [`PipelineError::StageFailed`], or record a [`StageFault`] and continue
//! with the remaining stages. A hardening failure always aborts — skipping
//! the defense stage would silently weaken the image.
//!
//! [`build_image`] remains as a thin forwarding wrapper for callers that
//! want the original panicking signature.

use crate::chaos::{ModuleCorruption, SemanticCorruption};
use crate::config::{FailurePolicy, PibeConfig, ValidationPolicy};
use pibe_harden::{
    audit_backend, AuditError, DefenseBackend, HardenCache, HardenReport, SecurityAudit,
};
use pibe_ir::{FuncId, Module, VerifyError};
use pibe_passes::{
    promote_indirect_calls, run_inliner, strip_unreachable_threaded, DceMap, DceStats, IcpStats,
    InlinerStats, SiteWeights,
};
use pibe_profile::{Profile, ProfileIssue, ProfileRepair};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// A production kernel image: the transformed module plus every statistic
/// the evaluation section reports about how it was built.
#[derive(Debug, Clone)]
pub struct Image {
    /// The transformed, hardened module.
    pub module: Module,
    /// The configuration that built it.
    pub config: PibeConfig,
    /// ICP statistics, when promotion ran.
    pub icp_stats: Option<IcpStats>,
    /// Inliner statistics, when inlining ran.
    pub inline_stats: Option<InlinerStats>,
    /// Dead-function elimination statistics, when DCE ran.
    pub dce_stats: Option<DceStats>,
    /// Old-id → new-id translation for the DCE renumbering, when DCE ran
    /// (needed to remap entry tables and target oracles onto the image).
    pub dce_map: Option<DceMap>,
    /// Jump-table handling report.
    pub harden_report: HardenReport,
    /// Static security classification of every indirect branch (Table 11).
    pub audit: SecurityAudit,
    /// Image size statistics.
    pub size: ImageSize,
    /// Wall-clock cost of each pipeline stage for this build.
    pub metrics: BuildMetrics,
    /// What profile repair did, when [`ValidationPolicy::Repair`] had to
    /// fix the input profile (`None` when the profile was already clean).
    pub repair: Option<ProfileRepair>,
    /// Stage faults survived during this build (empty unless a stage was
    /// rolled back and skipped under [`FailurePolicy::SkipStage`]).
    pub faults: FaultLog,
}

impl Image {
    /// Starts a staged build over `base`. The base module is never
    /// modified; the pipeline clones it.
    pub fn builder(base: &Module) -> ImageBuilder<'_> {
        ImageBuilder { base }
    }
}

/// Size measures of an image (Table 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageSize {
    /// Model machine-code bytes including defense sequences.
    pub bytes: u64,
    /// Resident kernel-text memory: bytes rounded up to 2 MiB huge pages
    /// (why Table 12's "mem size" moves in 12.5%/25% steps).
    pub mem_pages_2m: u64,
}

impl ImageSize {
    fn of(
        module: &Module,
        backend: &dyn DefenseBackend,
        defenses: pibe_harden::DefenseSet,
    ) -> Self {
        let bytes = backend.hardened_image_bytes(module, defenses);
        ImageSize {
            bytes,
            mem_pages_2m: bytes.div_ceil(2 * 1024 * 1024),
        }
    }
}

/// A transform stage of the pipeline, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Indirect call promotion.
    Icp,
    /// The security inliner.
    Inline,
    /// Dead-function elimination.
    Dce,
    /// The defense transforms.
    Harden,
}

impl Stage {
    /// The stage's label as used in reports and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Icp => "icp",
            Stage::Inline => "inline",
            Stage::Dce => "dce",
            Stage::Harden => "harden",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One survived stage failure: the stage produced structurally invalid IR,
/// was rolled back, and the build continued without it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageFault {
    /// The stage that failed.
    pub stage: Stage,
    /// The verifier error its output exhibited.
    pub error: VerifyError,
}

impl fmt::Display for StageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rolled back: {}", self.stage, self.error)
    }
}

/// The stage faults survived during one build, in pipeline order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    faults: Vec<StageFault>,
}

impl FaultLog {
    /// No faults recorded.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faults recorded.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The recorded faults, in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = &StageFault> {
        self.faults.iter()
    }

    /// Whether `stage` was rolled back during this build.
    pub fn contains(&self, stage: Stage) -> bool {
        self.faults.iter().any(|f| f.stage == stage)
    }

    fn push(&mut self, stage: Stage, error: VerifyError) {
        self.faults.push(StageFault { stage, error });
    }
}

/// Wall-clock nanoseconds spent in each pipeline stage of one build.
///
/// Timings are measurement artifacts, not build outputs: two builds of the
/// same configuration produce identical modules and statistics but
/// different `BuildMetrics`. The farm's aggregated report sums these across
/// every image it built.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BuildMetrics {
    /// Profile validation/repair against the base module.
    pub validate_ns: u64,
    /// Cloning the base module.
    pub clone_ns: u64,
    /// Indirect call promotion (zero when the config disables ICP).
    pub icp_ns: u64,
    /// The security inliner (zero when the config disables inlining).
    pub inline_ns: u64,
    /// Dead-function elimination (zero when the config disables DCE).
    pub dce_ns: u64,
    /// Defense transforms.
    pub harden_ns: u64,
    /// The static security audit.
    pub audit_ns: u64,
    /// Size accounting.
    pub size_ns: u64,
    /// Structural verification (input, per-stage, and final).
    pub verify_ns: u64,
    /// End-to-end build time (at least the sum of the stages).
    pub total_ns: u64,
    /// Stages rolled back after failing post-stage verification (not a
    /// timing; aggregated like one by the farm report).
    pub rollbacks: u64,
}

impl BuildMetrics {
    /// Stage labels and durations in pipeline order (excludes the total
    /// and the rollback counter).
    pub fn stages(&self) -> [(&'static str, u64); 9] {
        [
            ("validate", self.validate_ns),
            ("clone", self.clone_ns),
            ("icp", self.icp_ns),
            ("inline", self.inline_ns),
            ("dce", self.dce_ns),
            ("harden", self.harden_ns),
            ("audit", self.audit_ns),
            ("size", self.size_ns),
            ("verify", self.verify_ns),
        ]
    }

    /// Accumulates another build's timings into this aggregate.
    pub fn accumulate(&mut self, other: &BuildMetrics) {
        self.validate_ns += other.validate_ns;
        self.clone_ns += other.clone_ns;
        self.icp_ns += other.icp_ns;
        self.inline_ns += other.inline_ns;
        self.dce_ns += other.dce_ns;
        self.harden_ns += other.harden_ns;
        self.audit_ns += other.audit_ns;
        self.size_ns += other.size_ns;
        self.verify_ns += other.verify_ns;
        self.total_ns += other.total_ns;
        self.rollbacks += other.rollbacks;
    }
}

/// Why the pipeline refused to produce an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The input (or final) module failed structural verification. Unlike
    /// the original `debug_assert!`, this check runs in release builds too:
    /// a silently malformed image would invalidate every downstream
    /// measurement.
    InvalidModule(VerifyError),
    /// The profile failed validation against the module under
    /// [`ValidationPolicy::Strict`]; the issue names the faulty entity.
    ProfileInvalid(ProfileIssue),
    /// A transform stage produced an invalid module and the
    /// [`FailurePolicy`] (or the stage being `harden`, which never skips)
    /// demanded an abort. The stage was rolled back before returning.
    StageFailed {
        /// The stage whose output failed verification.
        stage: Stage,
        /// The verifier error its output exhibited.
        error: VerifyError,
    },
    /// The build panicked inside a farm worker thread; the panic was
    /// contained and converted into this error (the message is the panic
    /// payload, when it was a string).
    StagePanicked {
        /// The panic payload, or a placeholder for non-string payloads.
        message: String,
    },
    /// The security audit could not classify a branch — evidence that the
    /// image was hardened under a different backend or defense set than
    /// the one it was audited against. The inner error names the offending
    /// function and site.
    AuditFailed(AuditError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidModule(e) => {
                write!(f, "pipeline produced an invalid module: {e}")
            }
            PipelineError::ProfileInvalid(issue) => {
                write!(f, "profile failed validation: {issue}")
            }
            PipelineError::StageFailed { stage, error } => {
                write!(
                    f,
                    "stage {stage} produced an invalid module (rolled back): {error}"
                )
            }
            PipelineError::StagePanicked { message } => {
                write!(f, "build panicked in a worker thread: {message}")
            }
            PipelineError::AuditFailed(e) => {
                write!(f, "security audit rejected the image: {e}")
            }
        }
    }
}

impl PipelineError {
    /// Whether a supervisor (the serve loop, a build farm) may reasonably
    /// retry or continue past this failure while serving its last-known-good
    /// image.
    ///
    /// *Recoverable* errors are faults of one build attempt — a stage rolled
    /// back ([`Self::StageFailed`]) or a contained worker panic
    /// ([`Self::StagePanicked`]); the base module and cumulative profile are
    /// intact, so a later epoch (or a retry under a different policy) can
    /// succeed. *Unrecoverable* errors indict the inputs or the toolchain
    /// itself — a structurally invalid module ([`Self::InvalidModule`]), a
    /// profile rejected under strict validation ([`Self::ProfileInvalid`]),
    /// or an audit mismatch ([`Self::AuditFailed`]) — and will deterministically
    /// recur until an operator intervenes.
    pub fn is_recoverable(&self) -> bool {
        match self {
            PipelineError::StageFailed { .. } | PipelineError::StagePanicked { .. } => true,
            PipelineError::InvalidModule(_)
            | PipelineError::ProfileInvalid(_)
            | PipelineError::AuditFailed(_) => false,
        }
    }
}

impl std::error::Error for PipelineError {}

/// First builder stage: has a base module, needs a profile.
#[derive(Debug, Clone, Copy)]
pub struct ImageBuilder<'m> {
    base: &'m Module,
}

impl<'m> ImageBuilder<'m> {
    /// Attaches the profile that drives budget selection in both passes.
    pub fn profile<'p>(self, profile: &'p Profile) -> ProfiledImageBuilder<'m, 'p> {
        ProfiledImageBuilder {
            base: self.base,
            profile,
            config: PibeConfig::lto(),
            threads: pibe_ir::par::default_threads(),
            sabotage: None,
            semantic_sabotage: None,
            observer: None,
            harden_cache: None,
        }
    }
}

/// The committed output of one pipeline stage, handed to a stage observer
/// registered with
/// [`ProfiledImageBuilder::observe_stages`]. Borrows are only valid for the
/// duration of the callback; observers that need the module later clone it.
#[derive(Debug, Clone, Copy)]
pub struct StageSnapshot<'a> {
    /// The stage that just committed.
    pub stage: Stage,
    /// The module as it stands after the stage.
    pub module: &'a Module,
    /// The DCE renumbering, present from the DCE stage onward (needed to
    /// translate pre-DCE function ids when interpreting later snapshots).
    pub dce_map: Option<&'a DceMap>,
}

/// Second builder stage: ready to build. The configuration defaults to the
/// LTO baseline ([`PibeConfig::lto`]) until [`config`](Self::config)
/// replaces it.
#[derive(Clone, Copy)]
pub struct ProfiledImageBuilder<'m, 'p> {
    base: &'m Module,
    profile: &'p Profile,
    config: PibeConfig,
    threads: usize,
    sabotage: Option<(Stage, ModuleCorruption, u64)>,
    semantic_sabotage: Option<(Stage, SemanticCorruption, u64)>,
    observer: Option<&'m dyn Fn(StageSnapshot<'_>)>,
    harden_cache: Option<&'m HardenCache>,
}

impl fmt::Debug for ProfiledImageBuilder<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProfiledImageBuilder")
            .field("base", &self.base.name())
            .field("config", &self.config)
            .field("threads", &self.threads)
            .field("sabotage", &self.sabotage)
            .field("semantic_sabotage", &self.semantic_sabotage)
            .field("observer", &self.observer.is_some())
            .field("harden_cache", &self.harden_cache.is_some())
            .finish()
    }
}

impl<'m, 'p> ProfiledImageBuilder<'m, 'p> {
    /// Selects the build configuration.
    pub fn config(mut self, config: PibeConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the number of worker threads the per-function stages
    /// (harden, DCE edge scanning, verification) fan across. Defaults to
    /// `PIBE_BUILD_THREADS` when set, else the machine's available
    /// parallelism. Outputs are bit-identical under any thread count; the
    /// farm pins its builds to one thread each so the pool, not the
    /// stages, owns the machine.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "a build needs at least one thread");
        self.threads = threads;
        self
    }

    /// Chaos hook: corrupts the module immediately after `stage` runs (the
    /// corruption only fires if the stage's pass actually executes under
    /// the configuration), simulating a buggy pass for the transactional
    /// rollback machinery. Deterministic in `seed`.
    pub fn inject_fault(mut self, stage: Stage, fault: ModuleCorruption, seed: u64) -> Self {
        self.sabotage = Some((stage, fault, seed));
        self
    }

    /// Chaos hook for *semantic* faults: corrupts the module immediately
    /// after `stage` runs with a [`SemanticCorruption`] — IR that still
    /// verifies but behaves differently. The per-stage verifier cannot
    /// catch these (that is their point); the `pibe-difftest` differential
    /// oracle is what this hook exists to exercise. Deterministic in
    /// `seed`.
    pub fn inject_semantic_fault(
        mut self,
        stage: Stage,
        fault: SemanticCorruption,
        seed: u64,
    ) -> Self {
        self.semantic_sabotage = Some((stage, fault, seed));
        self
    }

    /// Registers an observer invoked with the module as committed after
    /// each transform stage that ran (in pipeline order: icp, inline, dce,
    /// harden). Rolled-back stages produce no snapshot — the observer sees
    /// exactly the intermediate states the image was actually built
    /// through. This is the differential-testing tap: an oracle can replay
    /// the same workload against every snapshot and diff the traces.
    pub fn observe_stages(mut self, observer: &'m dyn Fn(StageSnapshot<'_>)) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a warm [`HardenCache`]: functions whose copy-on-write `Arc`
    /// identity survived the earlier stages of this build (because no pass
    /// touched them) reuse the harden result memoized by a previous build
    /// against the same cache, instead of being rescanned. The resulting
    /// image is bit-identical with or without the cache — this is the serve
    /// loop's way of making re-optimization cost scale with the functions an
    /// epoch actually changed.
    pub fn warm_harden_cache(mut self, cache: &'m HardenCache) -> Self {
        self.harden_cache = Some(cache);
        self
    }

    fn sabotage(&self, stage: Stage, module: &mut Module) {
        if let Some((s, fault, seed)) = self.sabotage {
            if s == stage {
                fault.apply(module, seed);
            }
        }
        if let Some((s, fault, seed)) = self.semantic_sabotage {
            if s == stage {
                fault.apply(module, seed);
            }
        }
    }

    fn notify(&self, stage: Stage, module: &Module, dce_map: Option<&DceMap>) {
        if let Some(obs) = self.observer {
            obs(StageSnapshot {
                stage,
                module,
                dce_map,
            });
        }
    }

    /// Runs the hardening phase: validates (and under
    /// [`ValidationPolicy::Repair`], repairs) the profile against the base,
    /// clones the base, applies indirect call promotion and the security
    /// inliner per the configuration (ICP first, as in the paper), then the
    /// defense transforms — each stage transactionally, with a post-stage
    /// verify and rollback-on-failure — audits the result, and verifies the
    /// final module.
    ///
    /// Under [`ValidationPolicy::TrustProfile`] both profile validation and
    /// the per-stage verification are skipped (the legacy fast path with a
    /// single end-of-pipeline verify).
    ///
    /// # Errors
    /// * [`PipelineError::ProfileInvalid`] — strict validation rejected
    ///   the profile;
    /// * [`PipelineError::StageFailed`] — a stage produced invalid IR and
    ///   the failure policy (or the stage being `harden`) aborts;
    /// * [`PipelineError::InvalidModule`] — the input or final module
    ///   failed structural verification.
    pub fn build(self) -> Result<Image, PipelineError> {
        let config = self.config;
        let threads = self.threads;
        let build_start = Instant::now();
        let mut metrics = BuildMetrics::default();
        let mut faults = FaultLog::default();
        let _build_span = pibe_trace::span_args("pipeline.build", || {
            vec![
                ("icp", pibe_trace::Value::from(config.icp.is_some())),
                ("inline", pibe_trace::Value::from(config.inliner.is_some())),
                (
                    "defenses",
                    pibe_trace::Value::from(format!("{:?}", config.defenses)),
                ),
                ("arch", pibe_trace::Value::from(config.arch.name())),
                (
                    "validation",
                    pibe_trace::Value::from(format!("{:?}", config.validation)),
                ),
            ]
        });

        // Stage 0: profile validation/repair.
        let stage = Instant::now();
        let trace_span = pibe_trace::span("stage.validate");
        let mut repair = None;
        let mut repaired_profile = None;
        match config.validation {
            ValidationPolicy::Strict => {
                if let Some(issue) = self.profile.validate_against(self.base).first() {
                    return Err(PipelineError::ProfileInvalid(issue));
                }
            }
            ValidationPolicy::Repair => {
                if !self.profile.validate_against(self.base).is_clean() {
                    let mut fixed = self.profile.clone();
                    let report = fixed.repair_against(self.base);
                    repair = Some(report);
                    repaired_profile = Some(fixed);
                }
            }
            ValidationPolicy::TrustProfile => {}
        }
        let profile = repaired_profile.as_ref().unwrap_or(self.profile);
        metrics.validate_ns = stage.elapsed().as_nanos() as u64;
        drop(trace_span);

        // Per-stage verification is what makes rollback possible; trusting
        // the profile also means trusting the passes (legacy fast path).
        let guarded = !matches!(config.validation, ValidationPolicy::TrustProfile);

        let stage = Instant::now();
        let trace_span = pibe_trace::span("stage.clone");
        let mut module = self.base.clone();
        metrics.clone_ns = stage.elapsed().as_nanos() as u64;
        drop(trace_span);

        // Input verification: reject corrupt bases before any pass touches
        // them, so a stage failure always implicates the stage.
        if guarded {
            let stage = Instant::now();
            let _trace_span = pibe_trace::span("stage.verify");
            module
                .verify_threaded(threads)
                .map_err(PipelineError::InvalidModule)?;
            metrics.verify_ns += stage.elapsed().as_nanos() as u64;
        }

        let mut weights = SiteWeights::from_profile(profile);

        // Stage 1: indirect call promotion (transactional when guarded;
        // ICP also mutates the site weights, so both are snapshotted).
        let stage = Instant::now();
        let trace_span = pibe_trace::span("stage.icp");
        let mut icp_stats = None;
        if let Some(icp) = config.icp.as_ref() {
            if guarded {
                // CoW: the snapshot is O(#functions) pointer bumps, and the
                // weights roll back through their delta journal instead of a
                // table copy.
                let module_snapshot = module.clone();
                weights.begin_undo();
                let stats = promote_indirect_calls(&mut module, &mut weights, profile, icp);
                self.sabotage(Stage::Icp, &mut module);
                match module.verify_threaded(threads) {
                    Ok(()) => {
                        icp_stats = Some(stats);
                        weights.commit_undo();
                        self.notify(Stage::Icp, &module, None);
                    }
                    Err(error) => {
                        module = module_snapshot;
                        weights.rollback_undo();
                        metrics.rollbacks += 1;
                        pibe_trace::event_args("stage.rollback", || {
                            vec![
                                ("stage", pibe_trace::Value::from("icp")),
                                ("error", pibe_trace::Value::from(error.to_string())),
                            ]
                        });
                        faults.push(Stage::Icp, error.clone());
                        if matches!(config.failure, FailurePolicy::Abort) {
                            return Err(PipelineError::StageFailed {
                                stage: Stage::Icp,
                                error,
                            });
                        }
                    }
                }
            } else {
                icp_stats = Some(promote_indirect_calls(
                    &mut module,
                    &mut weights,
                    profile,
                    icp,
                ));
                self.sabotage(Stage::Icp, &mut module);
                self.notify(Stage::Icp, &module, None);
            }
        }
        metrics.icp_ns = stage.elapsed().as_nanos() as u64;
        drop(trace_span);

        // Stage 2: the security inliner.
        let stage = Instant::now();
        let trace_span = pibe_trace::span("stage.inline");
        let mut inline_stats = None;
        if let Some(inl) = config.inliner.as_ref() {
            if guarded {
                let module_snapshot = module.clone();
                let stats = run_inliner(&mut module, &weights, profile, inl);
                self.sabotage(Stage::Inline, &mut module);
                match module.verify_threaded(threads) {
                    Ok(()) => {
                        inline_stats = Some(stats);
                        self.notify(Stage::Inline, &module, None);
                    }
                    Err(error) => {
                        module = module_snapshot;
                        metrics.rollbacks += 1;
                        pibe_trace::event_args("stage.rollback", || {
                            vec![
                                ("stage", pibe_trace::Value::from("inline")),
                                ("error", pibe_trace::Value::from(error.to_string())),
                            ]
                        });
                        faults.push(Stage::Inline, error.clone());
                        if matches!(config.failure, FailurePolicy::Abort) {
                            return Err(PipelineError::StageFailed {
                                stage: Stage::Inline,
                                error,
                            });
                        }
                    }
                }
            } else {
                inline_stats = Some(run_inliner(&mut module, &weights, profile, inl));
                self.sabotage(Stage::Inline, &mut module);
                self.notify(Stage::Inline, &module, None);
            }
        }
        metrics.inline_ns = stage.elapsed().as_nanos() as u64;
        drop(trace_span);

        // Stage 3: dead-function elimination. Roots are the call-graph
        // sources plus every function the profile saw entered; the
        // address-taken set is every profiled indirect-call target. The
        // pass trusts the profile here the way real `--gc-sections` trusts
        // relocations — a target the profile never named *can* be stripped,
        // which is exactly the kind of assumption the differential oracle
        // keeps honest. Transactional like the optimization stages; the
        // pass rebuilds into a fresh module, so rollback is just not
        // committing it.
        let stage = Instant::now();
        let trace_span = pibe_trace::span("stage.dce");
        let mut dce_stats = None;
        let mut dce_map = None;
        if config.dce {
            let (roots, taken) = dce_roots(&module, profile);
            let (mut stripped, map, stats) =
                strip_unreachable_threaded(&module, &roots, &taken, threads);
            self.sabotage(Stage::Dce, &mut stripped);
            let commit = if guarded {
                match stripped.verify_threaded(threads) {
                    Ok(()) => true,
                    Err(error) => {
                        metrics.rollbacks += 1;
                        pibe_trace::event_args("stage.rollback", || {
                            vec![
                                ("stage", pibe_trace::Value::from("dce")),
                                ("error", pibe_trace::Value::from(error.to_string())),
                            ]
                        });
                        faults.push(Stage::Dce, error.clone());
                        if matches!(config.failure, FailurePolicy::Abort) {
                            return Err(PipelineError::StageFailed {
                                stage: Stage::Dce,
                                error,
                            });
                        }
                        false
                    }
                }
            } else {
                true
            };
            if commit {
                module = stripped;
                dce_stats = Some(stats);
                self.notify(Stage::Dce, &module, Some(&map));
                dce_map = Some(map);
            }
        }
        metrics.dce_ns = stage.elapsed().as_nanos() as u64;
        drop(trace_span);

        // Stage 4: defenses. A hardening failure always aborts, whatever
        // the failure policy: shipping an image whose defense stage was
        // skipped would weaken every surviving indirect branch. (No
        // snapshot — an abort discards the module either way.)
        let stage = Instant::now();
        let trace_span = pibe_trace::span("stage.harden");
        let backend = config.arch.backend();
        let run_harden = |module: &mut Module| match self.harden_cache {
            Some(cache) => {
                pibe_harden::apply_cached(module, backend, config.defenses, threads, cache)
            }
            None => pibe_harden::apply_with(module, backend, config.defenses, threads),
        };
        let harden_report;
        if guarded {
            let report = run_harden(&mut module);
            self.sabotage(Stage::Harden, &mut module);
            match module.verify_threaded(threads) {
                Ok(()) => harden_report = report,
                Err(error) => {
                    return Err(PipelineError::StageFailed {
                        stage: Stage::Harden,
                        error,
                    });
                }
            }
        } else {
            harden_report = run_harden(&mut module);
            self.sabotage(Stage::Harden, &mut module);
        }
        self.notify(Stage::Harden, &module, dce_map.as_ref());
        metrics.harden_ns = stage.elapsed().as_nanos() as u64;
        drop(trace_span);

        let stage = Instant::now();
        let trace_span = pibe_trace::span("stage.audit");
        let audit =
            audit_backend(&module, backend, config.defenses).map_err(PipelineError::AuditFailed)?;
        metrics.audit_ns = stage.elapsed().as_nanos() as u64;
        drop(trace_span);

        let stage = Instant::now();
        let trace_span = pibe_trace::span("stage.size");
        let size = ImageSize::of(&module, backend, config.defenses);
        metrics.size_ns = stage.elapsed().as_nanos() as u64;
        drop(trace_span);

        // Final verification runs under every policy: no image leaves the
        // pipeline unverified.
        let stage = Instant::now();
        let trace_span = pibe_trace::span("stage.verify");
        module
            .verify_threaded(threads)
            .map_err(PipelineError::InvalidModule)?;
        metrics.verify_ns += stage.elapsed().as_nanos() as u64;
        drop(trace_span);

        metrics.total_ns = build_start.elapsed().as_nanos() as u64;
        pibe_trace::record_value("pipeline.build_us", metrics.total_ns / 1_000);
        Ok(Image {
            module,
            config,
            icp_stats,
            inline_stats,
            dce_stats,
            dce_map,
            harden_report,
            audit,
            size,
            metrics,
            repair,
            faults,
        })
    }
}

/// Derives the DCE root and address-taken sets from the profile.
///
/// * Roots: every function the profile recorded an entry for. The profiler
///   records an entry on *every* dynamic function entry, so this is the set
///   of functions the profiling workload actually reached — the model's
///   `--gc-sections` keep-list.
/// * Address-taken: every target named by any value profile — the model's
///   stand-in for relocation-visible function addresses (an indirect call
///   may reach them even when no static edge does).
///
/// An empty profile yields no information, so every function becomes a
/// root (DCE degrades to a verified no-op rather than stripping the whole
/// module). Profile entries naming out-of-range functions are ignored
/// (they only survive validation under
/// [`ValidationPolicy::TrustProfile`]).
fn dce_roots(module: &Module, profile: &Profile) -> (Vec<FuncId>, Vec<FuncId>) {
    let nfuncs = module.len();
    let roots: Vec<FuncId> = profile
        .iter_entries()
        .map(|(func, _count)| func)
        .filter(|f| f.index() < nfuncs)
        .collect();
    if roots.is_empty() {
        return (module.func_ids().collect(), Vec::new());
    }
    let mut taken: Vec<FuncId> = Vec::new();
    for (_site, entries) in profile.iter_indirect() {
        for e in entries {
            if e.target.index() < nfuncs {
                taken.push(e.target);
            }
        }
    }
    (roots, taken)
}

/// Runs the hardening phase with the original signature; forwards to
/// [`Image::builder`].
///
/// `base` itself is never modified; experiments build many images from one
/// profiled kernel.
///
/// # Panics
/// Panics if the pipeline refuses to produce an image (the builder API
/// returns the typed [`PipelineError`] instead).
pub fn build_image(base: &Module, profile: &Profile, config: &PibeConfig) -> Image {
    Image::builder(base)
        .profile(profile)
        .config(*config)
        .build()
        .expect("pipeline must preserve validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_harden::DefenseSet;
    use pibe_ir::FunctionBuilder;
    use pibe_kernel::{
        measure::collect_profile,
        workloads::{lmbench_suite, WorkloadSpec},
        Kernel, KernelSpec,
    };
    use pibe_profile::{corrupt_profile, Budget};

    fn profiled_kernel() -> (Kernel, Profile) {
        let k = Kernel::generate(KernelSpec::test());
        let p = collect_profile(&k, &WorkloadSpec::lmbench(), &lmbench_suite(6), 2, 7)
            .expect("profiling run succeeds");
        (k, p)
    }

    #[test]
    fn lto_image_is_the_identity() {
        let (k, p) = profiled_kernel();
        let img = build_image(&k.module, &p, &PibeConfig::lto());
        assert_eq!(img.module.code_bytes(), k.module.code_bytes());
        assert!(img.icp_stats.is_none() && img.inline_stats.is_none());
        assert!(img.repair.is_none(), "clean profile needs no repair");
        assert!(img.faults.is_empty());
    }

    #[test]
    fn full_image_elides_and_grows() {
        let (k, p) = profiled_kernel();
        let img = build_image(
            &k.module,
            &p,
            &PibeConfig::full(Budget::P99_9, DefenseSet::ALL),
        );
        let icp = img.icp_stats.unwrap();
        let inl = img.inline_stats.unwrap();
        assert!(icp.promoted_targets > 0, "hot targets promoted");
        assert!(inl.inlined_sites > 0, "hot sites inlined");
        assert!(
            img.module.code_bytes() > k.module.code_bytes(),
            "optimization grows the image"
        );
        img.module.verify().unwrap();
    }

    #[test]
    fn hardening_disables_jump_tables_and_audits() {
        let (k, p) = profiled_kernel();
        let img = build_image(&k.module, &p, &PibeConfig::lto_with(DefenseSet::ALL));
        assert!(img.harden_report.jump_tables_disabled > 0);
        assert_eq!(img.harden_report.jump_tables_kept, 5, "asm tables remain");
        assert_eq!(img.audit.vulnerable_ijumps, 5);
        assert!(img.audit.vulnerable_icalls > 0, "paravirt icalls remain");
        assert_eq!(img.audit.vulnerable_returns, 0);
        assert!(img.audit.boot_returns > 0);
    }

    #[test]
    fn hardware_cfi_arch_keeps_and_protects_jump_tables() {
        let (k, p) = profiled_kernel();
        let x86 = build_image(&k.module, &p, &PibeConfig::lto_with(DefenseSet::ALL));
        for arch in [pibe_harden::Arch::Arm64, pibe_harden::Arch::Riscv64] {
            let cfg = PibeConfig::lto_with(DefenseSet::ALL).with_arch(arch);
            let img = build_image(&k.module, &p, &cfg);
            assert_eq!(
                img.harden_report.jump_tables_disabled, 0,
                "{arch:?}: landing pads cover table targets, tables stay"
            );
            assert!(img.audit.protected_ijumps > 0, "{arch:?}");
            assert_eq!(img.audit.vulnerable_ijumps, 0, "{arch:?}");
            assert_eq!(img.audit.vulnerable_returns, 0, "{arch:?}");
            assert!(
                img.size.bytes < x86.size.bytes,
                "{arch:?}: hardware CFI is lighter than retpoline thunks"
            );
        }
    }

    #[test]
    fn inlining_duplicates_paravirt_gadgets() {
        let (k, p) = profiled_kernel();
        let before = build_image(&k.module, &p, &PibeConfig::lto_with(DefenseSet::ALL));
        let after = build_image(&k.module, &p, &PibeConfig::lax(DefenseSet::ALL));
        assert!(
            after.audit.vulnerable_icalls >= before.audit.vulnerable_icalls,
            "Table 11: vulnerable icalls grow with inlining ({} -> {})",
            before.audit.vulnerable_icalls,
            after.audit.vulnerable_icalls
        );
        assert!(after.audit.protected_icalls > before.audit.protected_icalls);
    }

    #[test]
    fn image_size_reports_huge_pages() {
        let (k, p) = profiled_kernel();
        let img = build_image(&k.module, &p, &PibeConfig::lto());
        assert_eq!(
            img.size.mem_pages_2m,
            img.size.bytes.div_ceil(2 * 1024 * 1024)
        );
        let hard = build_image(&k.module, &p, &PibeConfig::lto_with(DefenseSet::ALL));
        assert!(
            hard.size.bytes > img.size.bytes,
            "defense sequences add bytes"
        );
    }

    #[test]
    fn builder_matches_build_image_and_defaults_to_lto() {
        let (k, p) = profiled_kernel();
        let via_fn = build_image(&k.module, &p, &PibeConfig::lax(DefenseSet::ALL));
        let via_builder = Image::builder(&k.module)
            .profile(&p)
            .config(PibeConfig::lax(DefenseSet::ALL))
            .build()
            .expect("builds");
        assert_eq!(via_fn.size, via_builder.size);
        assert_eq!(via_fn.icp_stats, via_builder.icp_stats);
        assert_eq!(via_fn.inline_stats, via_builder.inline_stats);

        // Without an explicit config the builder produces the LTO baseline.
        let default = Image::builder(&k.module)
            .profile(&p)
            .build()
            .expect("builds");
        assert_eq!(default.config, PibeConfig::lto());
        assert!(default.icp_stats.is_none());
    }

    #[test]
    fn build_metrics_cover_every_stage() {
        let (k, p) = profiled_kernel();
        let img = Image::builder(&k.module)
            .profile(&p)
            .config(PibeConfig::lax(DefenseSet::ALL))
            .build()
            .expect("builds");
        let m = img.metrics;
        assert!(m.clone_ns > 0 && m.icp_ns > 0 && m.inline_ns > 0);
        assert!(m.harden_ns > 0 && m.verify_ns > 0);
        let stage_sum: u64 = m.stages().iter().map(|(_, ns)| ns).sum();
        assert!(m.total_ns >= stage_sum, "total covers the stages");
        assert_eq!(m.rollbacks, 0, "clean build rolls nothing back");

        let mut agg = BuildMetrics::default();
        agg.accumulate(&m);
        agg.accumulate(&m);
        assert_eq!(agg.total_ns, 2 * m.total_ns);
        assert_eq!(agg.stages()[2].1, 2 * m.icp_ns);
    }

    #[test]
    fn invalid_pipeline_output_is_reported_in_release_builds() {
        // A function whose entry jumps to itself violates the IR's "every
        // function returns" invariant; with no optimization or defenses the
        // pipeline passes the module through and must surface the
        // verification failure (even in release builds, where the old
        // `debug_assert!` was compiled out).
        let mut m = Module::new("broken");
        let mut b = FunctionBuilder::new("spin", 0);
        b.op(pibe_ir::OpKind::Alu);
        b.ret();
        let f = m.add_function(b.build());
        *m.function_mut(f).term_mut(pibe_ir::BlockId::ENTRY) = pibe_ir::Terminator::Jump {
            target: pibe_ir::BlockId::from_raw(0),
        };
        let p = Profile::new();
        let err = Image::builder(&m)
            .profile(&p)
            .config(PibeConfig::lto())
            .build()
            .expect_err("invalid module must be rejected");
        assert!(matches!(err, PipelineError::InvalidModule(_)));
        assert!(err.to_string().contains("invalid module"));
    }

    #[test]
    fn strict_validation_rejects_a_corrupt_profile_by_name() {
        let (k, p) = profiled_kernel();
        let mut seen = 0;
        for seed in 0..40 {
            let (bad, _kind, landed) = corrupt_profile(&p, &k.module, seed);
            if !landed {
                continue;
            }
            seen += 1;
            let err = Image::builder(&k.module)
                .profile(&bad)
                .config(PibeConfig::lax(DefenseSet::ALL).with_validation(ValidationPolicy::Strict))
                .build()
                .expect_err("strict mode must reject the corrupt profile");
            assert!(
                matches!(err, PipelineError::ProfileInvalid(_)),
                "seed {seed}: wanted ProfileInvalid, got {err}"
            );
        }
        assert!(seen > 20, "corruptions must land: {seen}/40");
    }

    #[test]
    fn repair_mode_builds_through_a_corrupt_profile_and_reports_it() {
        let (k, p) = profiled_kernel();
        // Seed chosen so the corruption lands (determinism guarantees it
        // keeps landing).
        let (bad, _kind, landed) = corrupt_profile(&p, &k.module, 2);
        assert!(landed);
        let img = Image::builder(&k.module)
            .profile(&bad)
            .config(PibeConfig::lax(DefenseSet::ALL))
            .build()
            .expect("repair mode must build through corruption");
        let repair = img.repair.expect("repair report attached");
        assert!(repair.changed(), "repair must have acted");
        img.module.verify().expect("image verifies");
    }

    #[test]
    fn injected_stage_fault_aborts_or_skips_by_policy() {
        let (k, p) = profiled_kernel();
        let cfg = PibeConfig::lax(DefenseSet::ALL);

        // Abort (the default): a sabotaged inline stage is a typed error.
        let err = Image::builder(&k.module)
            .profile(&p)
            .config(cfg)
            .inject_fault(Stage::Inline, ModuleCorruption::DanglingBlock, 11)
            .build()
            .expect_err("abort policy must surface the stage fault");
        match err {
            PipelineError::StageFailed { stage, .. } => assert_eq!(stage, Stage::Inline),
            other => panic!("wanted StageFailed, got {other}"),
        }

        // SkipStage: the stage rolls back, the build completes, and the
        // fault is on the record.
        let img = Image::builder(&k.module)
            .profile(&p)
            .config(cfg.with_failure(FailurePolicy::SkipStage))
            .inject_fault(Stage::Inline, ModuleCorruption::DanglingBlock, 11)
            .build()
            .expect("skip policy must survive the stage fault");
        assert!(img.faults.contains(Stage::Inline));
        assert_eq!(img.metrics.rollbacks, 1);
        assert!(img.inline_stats.is_none(), "skipped stage reports no stats");
        assert!(img.icp_stats.is_some(), "other stages still ran");
        img.module.verify().expect("image verifies");

        // A hardening fault aborts even under SkipStage.
        let err = Image::builder(&k.module)
            .profile(&p)
            .config(cfg.with_failure(FailurePolicy::SkipStage))
            .inject_fault(Stage::Harden, ModuleCorruption::DanglingBlock, 11)
            .build()
            .expect_err("a hardening fault must always abort");
        match err {
            PipelineError::StageFailed { stage, .. } => assert_eq!(stage, Stage::Harden),
            other => panic!("wanted StageFailed, got {other}"),
        }
    }

    #[test]
    fn dce_stage_strips_cold_mass_and_reports_the_map() {
        let (k, p) = profiled_kernel();
        let cfg = PibeConfig::lax(DefenseSet::ALL).with_dce(true);
        let img = Image::builder(&k.module)
            .profile(&p)
            .config(cfg)
            .build()
            .expect("dce build succeeds");
        let stats = img.dce_stats.expect("dce ran");
        assert!(stats.removed_functions > 0, "cold mass stripped");
        let map = img.dce_map.expect("map attached");
        img.module.verify().unwrap();
        // Profiled syscall entries survive and the map translates them.
        let entry = k.module.find_function("sys_read").expect("entry exists");
        let new_entry = map.translate(entry).expect("profiled entry kept");
        assert_eq!(img.module.function(new_entry).name(), "sys_read");
        // Without the knob nothing changes.
        let plain = Image::builder(&k.module)
            .profile(&p)
            .config(PibeConfig::lax(DefenseSet::ALL))
            .build()
            .expect("builds");
        assert!(plain.dce_stats.is_none() && plain.dce_map.is_none());
        assert!(plain.module.len() > img.module.len());
    }

    #[test]
    fn stage_observer_sees_each_committed_stage_in_order() {
        use std::cell::RefCell;
        let (k, p) = profiled_kernel();
        let seen: RefCell<Vec<(Stage, usize, bool)>> = RefCell::new(Vec::new());
        let obs = |s: StageSnapshot<'_>| {
            seen.borrow_mut()
                .push((s.stage, s.module.len(), s.dce_map.is_some()));
        };
        let img = Image::builder(&k.module)
            .profile(&p)
            .config(PibeConfig::lax(DefenseSet::ALL).with_dce(true))
            .observe_stages(&obs)
            .build()
            .expect("builds");
        let seen = seen.into_inner();
        let stages: Vec<Stage> = seen.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(
            stages,
            vec![Stage::Icp, Stage::Inline, Stage::Dce, Stage::Harden]
        );
        // The dce map is visible from the dce snapshot onward, and the
        // final snapshot is the image module.
        assert!(!seen[0].2 && !seen[1].2 && seen[2].2 && seen[3].2);
        assert_eq!(seen[3].1, img.module.len());
        // A config that runs no optimization stages only snapshots harden.
        let seen2: RefCell<Vec<Stage>> = RefCell::new(Vec::new());
        let obs2 = |s: StageSnapshot<'_>| seen2.borrow_mut().push(s.stage);
        Image::builder(&k.module)
            .profile(&p)
            .config(PibeConfig::lto())
            .observe_stages(&obs2)
            .build()
            .expect("builds");
        assert_eq!(seen2.into_inner(), vec![Stage::Harden]);
    }

    #[test]
    fn semantic_faults_slip_past_the_stage_verifier() {
        // The structural rollback machinery must NOT catch a semantic
        // corruption: the build succeeds, nothing rolls back — which is
        // precisely why the differential oracle exists.
        let (k, p) = profiled_kernel();
        let img = Image::builder(&k.module)
            .profile(&p)
            .config(PibeConfig::lax(DefenseSet::ALL))
            .inject_semantic_fault(Stage::Inline, SemanticCorruption::SwapBranchArms, 9)
            .build()
            .expect("semantically-wrong IR still builds");
        assert!(img.faults.is_empty(), "no stage fault recorded");
        assert_eq!(img.metrics.rollbacks, 0);
        img.module.verify().expect("corrupted image still verifies");
    }

    #[test]
    fn warm_harden_cache_is_invisible_in_the_image() {
        let (k, p) = profiled_kernel();
        let cfg = PibeConfig::lax(DefenseSet::ALL);
        let cold = build_image(&k.module, &p, &cfg);

        let cache = HardenCache::new();
        for round in 0..3 {
            let img = Image::builder(&k.module)
                .profile(&p)
                .config(cfg)
                .warm_harden_cache(&cache)
                .build()
                .expect("cached build succeeds");
            assert_eq!(
                img.module.to_string(),
                cold.module.to_string(),
                "round {round}: cache must not change the image"
            );
            assert_eq!(img.harden_report, cold.harden_report, "round {round}");
            assert_eq!(img.audit, cold.audit, "round {round}");
        }
        let stats = cache.stats();
        assert_eq!(stats.generation, 3);
        assert!(
            stats.hits > 0,
            "functions untouched by the passes keep their Arc identity \
             across builds and must hit: {stats:?}"
        );
    }

    #[test]
    fn error_recoverability_matches_the_supervision_contract() {
        let (k, p) = profiled_kernel();
        // A rolled-back stage under the abort policy: one bad build, inputs
        // intact — recoverable.
        let err = Image::builder(&k.module)
            .profile(&p)
            .config(PibeConfig::lax(DefenseSet::ALL))
            .inject_fault(Stage::Inline, ModuleCorruption::DanglingBlock, 11)
            .build()
            .expect_err("sabotaged stage fails");
        assert!(err.is_recoverable(), "{err}");
        assert!(PipelineError::StagePanicked {
            message: "worker".into()
        }
        .is_recoverable());

        // A corrupt profile under strict validation deterministically recurs
        // until the operator intervenes — unrecoverable.
        let (bad, _kind, landed) = corrupt_profile(&p, &k.module, 2);
        assert!(landed);
        let err = Image::builder(&k.module)
            .profile(&bad)
            .config(PibeConfig::lax(DefenseSet::ALL).with_validation(ValidationPolicy::Strict))
            .build()
            .expect_err("strict validation rejects");
        assert!(!err.is_recoverable(), "{err}");
    }

    #[test]
    fn skipped_stage_never_weakens_defenses() {
        let (k, p) = profiled_kernel();
        let cfg = PibeConfig::lax(DefenseSet::ALL);
        let clean = build_image(&k.module, &p, &cfg);
        let degraded = Image::builder(&k.module)
            .profile(&p)
            .config(cfg.with_failure(FailurePolicy::SkipStage))
            .inject_fault(Stage::Icp, ModuleCorruption::DanglingCallee, 5)
            .build()
            .expect("skip policy builds");
        assert!(degraded.faults.contains(Stage::Icp));
        assert_eq!(degraded.audit.vulnerable_returns, 0);
        assert!(
            degraded.audit.vulnerable_icalls <= clean.audit.vulnerable_icalls,
            "less optimization must not add vulnerable branches ({} > {})",
            degraded.audit.vulnerable_icalls,
            clean.audit.vulnerable_icalls
        );
    }
}
