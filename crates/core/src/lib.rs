//! # pibe
//!
//! The PIBE pipeline: profile-guided indirect branch elimination plus
//! hardening, orchestrated end to end (§4).
//!
//! ```text
//!            ┌────────────┐   profile    ┌──────────────────────────────┐
//!  kernel ──►│ simulator  ├─────────────►│ hardening phase              │
//!            │ (profiling │              │  1. indirect call promotion  │
//!            │  workload) │              │  2. security inlining        │
//!            └────────────┘              │  3. defenses on the rest     │
//!                                        └──────────────┬───────────────┘
//!                                                       ▼
//!                                         production image → evaluation
//! ```
//!
//! * [`PibeConfig`] selects the optimization budgets and defenses — the
//!   paper's evaluated configurations are provided as constructors;
//! * [`build_image`] runs the hardening phase over a profiled module and
//!   returns the production image with all transformation statistics;
//! * [`eval`] measures images against workloads (latency, throughput,
//!   geometric-mean overhead);
//! * [`experiments`] regenerates every table and figure in the paper's
//!   evaluation section (run the `tables` binary from `pibe-bench`);
//! * [`report`] renders the results as aligned text tables.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
pub mod eval;
pub mod experiments;
mod pipeline;
pub mod report;

pub use config::PibeConfig;
pub use pipeline::{build_image, Image};
