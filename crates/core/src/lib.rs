//! # pibe
//!
//! The PIBE pipeline: profile-guided indirect branch elimination plus
//! hardening, orchestrated end to end (§4).
//!
//! ```text
//!            ┌────────────┐   profile    ┌──────────────────────────────┐
//!  kernel ──►│ simulator  ├─────────────►│ hardening phase              │
//!            │ (profiling │              │  1. indirect call promotion  │
//!            │  workload) │              │  2. security inlining        │
//!            └────────────┘              │  3. defenses on the rest     │
//!                                        └──────────────┬───────────────┘
//!                                                       ▼
//!                                         production image → evaluation
//! ```
//!
//! * [`PibeConfig`] selects the optimization budgets and defenses — the
//!   paper's evaluated configurations are provided as constructors;
//! * [`Image::builder`] is the staged entry point into the hardening phase
//!   (`Image::builder(&base).profile(&profile).config(cfg).build()`);
//!   [`build_image`] wraps it with the original panicking signature;
//! * [`ImageFarm`] builds images for whole configuration sets in parallel,
//!   memoizing each distinct configuration so it is built exactly once per
//!   lab; [`BuildMetrics`] records per-stage wall-clock costs;
//! * [`eval`] measures images against workloads (latency, throughput,
//!   geometric-mean overhead);
//! * [`experiments`] regenerates every table and figure in the paper's
//!   evaluation section (run the `tables` binary from `pibe-bench`);
//! * [`report`] renders the results as aligned text tables.
//!
//! The pipeline is fault tolerant: profiles are validated/repaired against
//! the module per [`ValidationPolicy`], each transform stage runs
//! transactionally (snapshot → run → verify → roll back on failure) per
//! [`FailurePolicy`], and the [`chaos`] module injects deterministic module
//! corruption to test exactly that machinery.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
mod config;
pub mod eval;
pub mod experiments;
mod farm;
mod pipeline;
pub mod report;

pub use chaos::{corrupt_module, ModuleCorruption, SemanticCorruption};
pub use config::{FailurePolicy, PibeConfig, PibeConfigBuilder, ValidationPolicy};
pub use farm::{FarmStats, ImageFarm};
pub use pibe_harden::{Arch, DefenseBackend, DefenseSet, HardenCache, HardenCacheStats};
pub use pipeline::{
    build_image, BuildMetrics, FaultLog, Image, ImageBuilder, ImageSize, PipelineError,
    ProfiledImageBuilder, Stage, StageFault, StageSnapshot,
};
