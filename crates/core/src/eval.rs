//! Measurement sweeps and overhead arithmetic.

use pibe_ir::Module;
use pibe_kernel::measure::{run_latency, run_throughput};
use pibe_kernel::workloads::{Benchmark, MacroBench, WorkloadSpec};
use pibe_kernel::Kernel;
use pibe_sim::{AttackReport, SimConfig};
use serde::{Deserialize, Serialize};

/// One LMBench row measured on one image.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Benchmark name (Table 2 row).
    pub name: String,
    /// Mean cycles per iteration.
    pub cycles: f64,
    /// Latency analogue in µs.
    pub micros: f64,
}

/// Runs the whole latency `suite` against `module`, one warm simulator per
/// benchmark (as LMBench runs each micro in its own process), in parallel
/// across benchmarks.
///
/// # Panics
/// Panics if the simulator fails, which a well-formed kernel image cannot
/// cause — an error here means the image or workload is malformed.
pub fn lmbench_latencies(
    module: &Module,
    kernel: &Kernel,
    workload: &WorkloadSpec,
    suite: &[Benchmark],
    cfg: SimConfig,
    seed: u64,
) -> Vec<LatencyRow> {
    let mut rows: Vec<Option<LatencyRow>> = Vec::new();
    rows.resize_with(suite.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (slot, bench) in rows.iter_mut().zip(suite.iter()) {
            scope.spawn(move |_| {
                let (lat, _, _) = run_latency(module, kernel, workload, *bench, cfg, seed)
                    .expect("latency benchmark must run on a well-formed image");
                *slot = Some(LatencyRow {
                    name: bench.syscall.name().to_string(),
                    cycles: lat.cycles_per_iter,
                    micros: lat.micros,
                });
            });
        }
    })
    .expect("benchmark thread panicked");
    rows.into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Runs the suite and additionally aggregates the dynamic attack surface
/// across all benchmarks (for the security evaluation).
pub fn lmbench_attack_surface(
    module: &Module,
    kernel: &Kernel,
    workload: &WorkloadSpec,
    suite: &[Benchmark],
    cfg: SimConfig,
    seed: u64,
) -> AttackReport {
    let cfg = SimConfig {
        track_attacks: true,
        ..cfg
    };
    let mut total = AttackReport::default();
    for bench in suite {
        let (_, _, attacks) = run_latency(module, kernel, workload, *bench, cfg, seed)
            .expect("attack-tracked benchmark must run");
        total.merge(&attacks);
    }
    total
}

/// Macro throughput of `bench` on `module` (requests/sec analogue).
pub fn macro_throughput(
    module: &Module,
    kernel: &Kernel,
    workload: &WorkloadSpec,
    bench: &MacroBench,
    cfg: SimConfig,
    seed: u64,
) -> f64 {
    let (t, _) = run_throughput(module, kernel, workload, bench, cfg, seed)
        .expect("macro benchmark must run on a well-formed image");
    t.requests_per_sec
}

/// Percent overhead of `new` relative to `base` ("(+) means slowdown while
/// (-) means speedup", Table 2).
pub fn overhead_pct(base: f64, new: f64) -> f64 {
    (new - base) / base * 100.0
}

/// Geometric-mean percent overhead across paired measurements — the
/// summary statistic of Tables 2, 3, 5, and 6.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or contain
/// non-positive measurements.
pub fn geomean_overhead_pct(base: &[f64], new: &[f64]) -> f64 {
    assert_eq!(base.len(), new.len(), "paired measurements required");
    assert!(!base.is_empty(), "at least one measurement required");
    let log_sum: f64 = base
        .iter()
        .zip(new)
        .map(|(b, n)| {
            assert!(*b > 0.0 && *n > 0.0, "measurements must be positive");
            (n / b).ln()
        })
        .sum();
    ((log_sum / base.len() as f64).exp() - 1.0) * 100.0
}

/// Convenience: the `cycles` column of a row set.
pub fn cycles_of(rows: &[LatencyRow]) -> Vec<f64> {
    rows.iter().map(|r| r.cycles).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_kernel::workloads::lmbench_suite;
    use pibe_kernel::KernelSpec;

    #[test]
    fn overhead_signs_match_the_paper_convention() {
        assert_eq!(overhead_pct(100.0, 120.0), 20.0);
        assert_eq!(overhead_pct(100.0, 90.0), -10.0);
    }

    #[test]
    fn geomean_of_identical_runs_is_zero() {
        let xs = vec![10.0, 20.0, 30.0];
        assert!(geomean_overhead_pct(&xs, &xs).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_order_insensitive_and_balanced() {
        // +100% and -50% cancel geometrically.
        let g = geomean_overhead_pct(&[10.0, 10.0], &[20.0, 5.0]);
        assert!(g.abs() < 1e-9, "got {g}");
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn geomean_rejects_mismatched_lengths() {
        geomean_overhead_pct(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn parallel_suite_matches_benchmark_order() {
        let k = Kernel::generate(KernelSpec::test());
        let wl = WorkloadSpec::lmbench();
        let suite = lmbench_suite(4);
        let rows = lmbench_latencies(&k.module, &k, &wl, &suite, SimConfig::default(), 7);
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[0].name, "null");
        assert!(rows.iter().all(|r| r.cycles > 0.0));
        // Deterministic: a second run agrees exactly.
        let rows2 = lmbench_latencies(&k.module, &k, &wl, &suite, SimConfig::default(), 7);
        for (a, b) in rows.iter().zip(&rows2) {
            assert_eq!(a.cycles, b.cycles);
        }
    }
}
