//! Deterministic module fault injection (the `pibe-chaos` harness, module
//! side — the profile side lives in [`pibe_profile::chaos`]).
//!
//! Two uses:
//!
//! * corrupting a *base* module before it enters the pipeline, to check
//!   that input verification rejects it with a typed error instead of a
//!   panic five stages later;
//! * sabotaging the module *between* stages via
//!   [`ProfiledImageBuilder::inject_fault`](crate::ProfiledImageBuilder::inject_fault),
//!   which simulates a buggy pass and exercises the transactional
//!   snapshot/verify/rollback machinery.
//!
//! Every corruption is a pure function of `(module, seed)`, so chaos runs
//! are exactly reproducible.

use pibe_ir::{BlockId, FuncId, Inst, Module, Terminator};
use pibe_profile::ChaosRng;
use std::fmt;

/// One kind of structural module corruption, each tripping a distinct
/// [`VerifyError`](pibe_ir::VerifyError).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleCorruption {
    /// Retarget one direct call at a function outside the module
    /// (`VerifyError::DanglingCallee`).
    DanglingCallee,
    /// Point one block terminator at a block outside its function
    /// (`VerifyError::DanglingBlock`).
    DanglingBlock,
    /// Desynchronise one switch's weights from its cases
    /// (`VerifyError::MalformedSwitch`).
    MalformedSwitch,
    /// Replace one function's returns with self-loops
    /// (`VerifyError::NoReturnPath`).
    NoReturnPath,
}

impl ModuleCorruption {
    /// Every corruption kind, in a fixed order.
    pub const ALL: [ModuleCorruption; 4] = [
        ModuleCorruption::DanglingCallee,
        ModuleCorruption::DanglingBlock,
        ModuleCorruption::MalformedSwitch,
        ModuleCorruption::NoReturnPath,
    ];

    /// Picks a corruption kind deterministically from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self::ALL[(ChaosRng::new(seed).next_u64() % Self::ALL.len() as u64) as usize]
    }

    /// Applies this corruption to `module`, deterministically from `seed`.
    /// Returns `false` (module unchanged) when the module has no
    /// instruction of the required shape (e.g. no switch to malform).
    pub fn apply(self, module: &mut Module, seed: u64) -> bool {
        let mut rng = ChaosRng::new(seed ^ 0x0DDC_0FFE_E0DD);
        match self {
            ModuleCorruption::DanglingCallee => {
                let mut sites: Vec<(FuncId, BlockId, usize)> = Vec::new();
                for f in module.functions() {
                    for (b, block) in f.iter_blocks() {
                        for (i, inst) in block.insts().iter().enumerate() {
                            if matches!(inst, Inst::Call { .. }) {
                                sites.push((f.id(), b, i));
                            }
                        }
                    }
                }
                let Some(&(func, b, i)) = pick(&sites, &mut rng) else {
                    return false;
                };
                let ghost = FuncId::from_raw(module.len() as u32 + 1 + rng.below(1 << 10) as u32);
                let inst = &mut module.function_mut(func).block_insts_mut(b)[i];
                if let Inst::Call { callee, .. } = inst {
                    *callee = ghost;
                }
                true
            }
            ModuleCorruption::DanglingBlock => {
                let mut blocks: Vec<(FuncId, BlockId)> = Vec::new();
                for f in module.functions() {
                    for b in 0..f.num_blocks() {
                        blocks.push((f.id(), BlockId::from_raw(b as u32)));
                    }
                }
                let Some(&(func, b)) = pick(&blocks, &mut rng) else {
                    return false;
                };
                let nblocks = module.function(func).num_blocks() as u32;
                let ghost = BlockId::from_raw(nblocks + 1 + rng.below(1 << 8) as u32);
                *module.function_mut(func).term_mut(b) = Terminator::Jump { target: ghost };
                true
            }
            ModuleCorruption::MalformedSwitch => {
                let mut switches: Vec<(FuncId, BlockId)> = Vec::new();
                for f in module.functions() {
                    for (b, block) in f.iter_blocks() {
                        if let Terminator::Switch { weights, .. } = block.term() {
                            if !weights.is_empty() {
                                switches.push((f.id(), b));
                            }
                        }
                    }
                }
                let Some(&(func, b)) = pick(&switches, &mut rng) else {
                    return false;
                };
                if let Terminator::Switch { weights, .. } = module.function_mut(func).term_mut(b) {
                    weights.pop();
                }
                true
            }
            ModuleCorruption::NoReturnPath => {
                let funcs: Vec<FuncId> = module.func_ids().collect();
                let Some(&func) = pick(&funcs, &mut rng) else {
                    return false;
                };
                let mut changed = false;
                for (b, term) in module.function_mut(func).terms_mut().enumerate() {
                    if matches!(term, Terminator::Return) {
                        *term = Terminator::Jump {
                            target: BlockId::from_raw(b as u32),
                        };
                        changed = true;
                    }
                }
                changed
            }
        }
    }
}

impl fmt::Display for ModuleCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModuleCorruption::DanglingCallee => "dangling-callee",
            ModuleCorruption::DanglingBlock => "dangling-block",
            ModuleCorruption::MalformedSwitch => "malformed-switch",
            ModuleCorruption::NoReturnPath => "no-return-path",
        };
        f.write_str(name)
    }
}

/// A *semantic* module corruption: the result still passes every structural
/// check in [`Module::verify`], but behaves differently — the class of pass
/// bug the transactional verify/rollback machinery is blind to, and the
/// reason the `pibe-difftest` differential oracle exists.
///
/// Deliberately kept out of [`ModuleCorruption::ALL`] / `from_seed`: the
/// chaos acceptance suite asserts that *structural* corruptions fail
/// verification, which these never do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticCorruption {
    /// Swap the two successors of one `Cond::Random` branch: the branch
    /// still draws the same random number, but control lands on the wrong
    /// side (an inverted condition — a classic miscompile).
    SwapBranchArms,
    /// Retarget one direct call at a different (existing) function — a
    /// devirtualization/promotion targeting bug.
    RedirectCall,
    /// Delete one compute op — a "dead store elimination" that was not
    /// actually dead.
    DropOp,
}

impl SemanticCorruption {
    /// Every semantic corruption kind, in a fixed order.
    pub const ALL: [SemanticCorruption; 3] = [
        SemanticCorruption::SwapBranchArms,
        SemanticCorruption::RedirectCall,
        SemanticCorruption::DropOp,
    ];

    /// Applies this corruption to `module`, deterministically from `seed`.
    /// Returns `false` (module unchanged) when the module has no site of
    /// the required shape. The corrupted module always verifies.
    pub fn apply(self, module: &mut Module, seed: u64) -> bool {
        let mut rng = ChaosRng::new(seed ^ 0x05EE_DBAD_5EED);
        match self {
            SemanticCorruption::SwapBranchArms => {
                let mut branches: Vec<(FuncId, BlockId)> = Vec::new();
                for f in module.functions() {
                    for (b, block) in f.iter_blocks() {
                        if let Terminator::Branch {
                            cond: pibe_ir::Cond::Random { .. },
                            then_bb,
                            else_bb,
                        } = block.term()
                        {
                            if then_bb != else_bb {
                                branches.push((f.id(), b));
                            }
                        }
                    }
                }
                let Some(&(func, b)) = pick(&branches, &mut rng) else {
                    return false;
                };
                if let Terminator::Branch {
                    then_bb, else_bb, ..
                } = module.function_mut(func).term_mut(b)
                {
                    std::mem::swap(then_bb, else_bb);
                }
                true
            }
            SemanticCorruption::RedirectCall => {
                if module.len() < 2 {
                    return false;
                }
                let mut sites: Vec<(FuncId, BlockId, usize, FuncId)> = Vec::new();
                for f in module.functions() {
                    for (b, block) in f.iter_blocks() {
                        for (i, inst) in block.insts().iter().enumerate() {
                            if let Inst::Call { callee, .. } = inst {
                                sites.push((f.id(), b, i, *callee));
                            }
                        }
                    }
                }
                let Some(&(func, b, i, old)) = pick(&sites, &mut rng) else {
                    return false;
                };
                // Pick a different existing function (never `func` itself:
                // a fabricated self-call could recurse forever).
                let candidates: Vec<FuncId> = module
                    .func_ids()
                    .filter(|f| *f != old && *f != func)
                    .collect();
                let Some(&wrong) = pick(&candidates, &mut rng) else {
                    return false;
                };
                if let Inst::Call { callee, .. } =
                    &mut module.function_mut(func).block_insts_mut(b)[i]
                {
                    *callee = wrong;
                }
                true
            }
            SemanticCorruption::DropOp => {
                let mut ops: Vec<(FuncId, BlockId, usize)> = Vec::new();
                for f in module.functions() {
                    for (b, block) in f.iter_blocks() {
                        for (i, inst) in block.insts().iter().enumerate() {
                            if matches!(inst, Inst::Op(_)) {
                                ops.push((f.id(), b, i));
                            }
                        }
                    }
                }
                let Some(&(func, b, i)) = pick(&ops, &mut rng) else {
                    return false;
                };
                module.function_mut(func).remove_inst(b, i);
                true
            }
        }
    }
}

impl fmt::Display for SemanticCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SemanticCorruption::SwapBranchArms => "swap-branch-arms",
            SemanticCorruption::RedirectCall => "redirect-call",
            SemanticCorruption::DropOp => "drop-op",
        };
        f.write_str(name)
    }
}

/// Deterministic element pick.
fn pick<'a, T>(items: &'a [T], rng: &mut ChaosRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.below(items.len() as u64) as usize])
    }
}

/// Corrupts a copy of `module` with the corruption kind derived from
/// `seed`. Returns the corrupted copy, the kind, and whether the corruption
/// actually landed.
pub fn corrupt_module(module: &Module, seed: u64) -> (Module, ModuleCorruption, bool) {
    let kind = ModuleCorruption::from_seed(seed);
    let mut m = module.clone();
    let landed = kind.apply(&mut m, seed);
    (m, kind, landed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{Cond, FunctionBuilder, OpKind};

    fn sample_module() -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", 0);
        b.op(OpKind::Alu);
        b.ret();
        let leaf = m.add_function(b.build());
        let s = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        let t = b.new_block();
        let e = b.new_block();
        b.call(s, leaf, 0);
        b.branch(Cond::Random { ptaken_milli: 500 }, t, e);
        b.switch_to(t);
        b.ret();
        b.switch_to(e);
        b.ret();
        m.add_function(b.build());
        m
    }

    #[test]
    fn landed_corruptions_fail_verification() {
        let base = sample_module();
        base.verify().expect("sample module is valid");
        let mut landed = 0;
        for seed in 0..100 {
            let (corrupt, kind, hit) = corrupt_module(&base, seed);
            if !hit {
                // MalformedSwitch cannot land (no switch in the sample).
                assert_eq!(kind, ModuleCorruption::MalformedSwitch);
                continue;
            }
            landed += 1;
            assert!(
                corrupt.verify().is_err(),
                "seed {seed} ({kind}) corrupted the module but it still verifies"
            );
        }
        assert!(landed > 50, "most corruptions must land: {landed}/100");
    }

    #[test]
    fn semantic_corruptions_keep_the_module_valid() {
        // A third function so RedirectCall has somewhere wrong to point.
        let mut base = sample_module();
        let mut b = FunctionBuilder::new("decoy", 0);
        b.op(OpKind::Store);
        b.ret();
        base.add_function(b.build());
        for kind in SemanticCorruption::ALL {
            let mut landed = 0;
            for seed in 0..30u64 {
                let mut m = base.clone();
                if !kind.apply(&mut m, seed) {
                    continue;
                }
                landed += 1;
                m.verify()
                    .unwrap_or_else(|e| panic!("{kind} seed {seed} broke validity: {e}"));
                assert_ne!(
                    format!("{m:?}"),
                    format!("{base:?}"),
                    "{kind} seed {seed} claims to have landed but changed nothing"
                );
            }
            assert!(landed > 0, "{kind} never landed on the sample module");
        }
    }

    #[test]
    fn semantic_corruption_is_deterministic() {
        let base = sample_module();
        for seed in 0..10u64 {
            let mut a = base.clone();
            let mut b = base.clone();
            SemanticCorruption::SwapBranchArms.apply(&mut a, seed);
            SemanticCorruption::SwapBranchArms.apply(&mut b, seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let base = sample_module();
        for seed in 0..20 {
            let (a, ka, _) = corrupt_module(&base, seed);
            let (b, kb, _) = corrupt_module(&base, seed);
            assert_eq!(ka, kb);
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "seed {seed} must corrupt identically"
            );
        }
    }
}
