//! Deterministic module fault injection (the `pibe-chaos` harness, module
//! side — the profile side lives in [`pibe_profile::chaos`]).
//!
//! Two uses:
//!
//! * corrupting a *base* module before it enters the pipeline, to check
//!   that input verification rejects it with a typed error instead of a
//!   panic five stages later;
//! * sabotaging the module *between* stages via
//!   [`ProfiledImageBuilder::inject_fault`](crate::ProfiledImageBuilder::inject_fault),
//!   which simulates a buggy pass and exercises the transactional
//!   snapshot/verify/rollback machinery.
//!
//! Every corruption is a pure function of `(module, seed)`, so chaos runs
//! are exactly reproducible.

use pibe_ir::{BlockId, FuncId, Inst, Module, Terminator};
use pibe_profile::ChaosRng;
use std::fmt;

/// One kind of structural module corruption, each tripping a distinct
/// [`VerifyError`](pibe_ir::VerifyError).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleCorruption {
    /// Retarget one direct call at a function outside the module
    /// (`VerifyError::DanglingCallee`).
    DanglingCallee,
    /// Point one block terminator at a block outside its function
    /// (`VerifyError::DanglingBlock`).
    DanglingBlock,
    /// Desynchronise one switch's weights from its cases
    /// (`VerifyError::MalformedSwitch`).
    MalformedSwitch,
    /// Replace one function's returns with self-loops
    /// (`VerifyError::NoReturnPath`).
    NoReturnPath,
}

impl ModuleCorruption {
    /// Every corruption kind, in a fixed order.
    pub const ALL: [ModuleCorruption; 4] = [
        ModuleCorruption::DanglingCallee,
        ModuleCorruption::DanglingBlock,
        ModuleCorruption::MalformedSwitch,
        ModuleCorruption::NoReturnPath,
    ];

    /// Picks a corruption kind deterministically from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self::ALL[(ChaosRng::new(seed).next_u64() % Self::ALL.len() as u64) as usize]
    }

    /// Applies this corruption to `module`, deterministically from `seed`.
    /// Returns `false` (module unchanged) when the module has no
    /// instruction of the required shape (e.g. no switch to malform).
    pub fn apply(self, module: &mut Module, seed: u64) -> bool {
        let mut rng = ChaosRng::new(seed ^ 0x0DDC_0FFE_E0DD);
        match self {
            ModuleCorruption::DanglingCallee => {
                let mut sites: Vec<(FuncId, usize, usize)> = Vec::new();
                for f in module.functions() {
                    for (b, block) in f.blocks().iter().enumerate() {
                        for (i, inst) in block.insts.iter().enumerate() {
                            if matches!(inst, Inst::Call { .. }) {
                                sites.push((f.id(), b, i));
                            }
                        }
                    }
                }
                let Some(&(func, b, i)) = pick(&sites, &mut rng) else {
                    return false;
                };
                let ghost = FuncId::from_raw(module.len() as u32 + 1 + rng.below(1 << 10) as u32);
                let inst = &mut module.function_mut(func).blocks_mut()[b].insts[i];
                if let Inst::Call { callee, .. } = inst {
                    *callee = ghost;
                }
                true
            }
            ModuleCorruption::DanglingBlock => {
                let mut blocks: Vec<(FuncId, usize)> = Vec::new();
                for f in module.functions() {
                    for b in 0..f.blocks().len() {
                        blocks.push((f.id(), b));
                    }
                }
                let Some(&(func, b)) = pick(&blocks, &mut rng) else {
                    return false;
                };
                let nblocks = module.function(func).blocks().len() as u32;
                let ghost = BlockId::from_raw(nblocks + 1 + rng.below(1 << 8) as u32);
                module.function_mut(func).blocks_mut()[b].term = Terminator::Jump { target: ghost };
                true
            }
            ModuleCorruption::MalformedSwitch => {
                let mut switches: Vec<(FuncId, usize)> = Vec::new();
                for f in module.functions() {
                    for (b, block) in f.blocks().iter().enumerate() {
                        if let Terminator::Switch { weights, .. } = &block.term {
                            if !weights.is_empty() {
                                switches.push((f.id(), b));
                            }
                        }
                    }
                }
                let Some(&(func, b)) = pick(&switches, &mut rng) else {
                    return false;
                };
                if let Terminator::Switch { weights, .. } =
                    &mut module.function_mut(func).blocks_mut()[b].term
                {
                    weights.pop();
                }
                true
            }
            ModuleCorruption::NoReturnPath => {
                let funcs: Vec<FuncId> = module.func_ids().collect();
                let Some(&func) = pick(&funcs, &mut rng) else {
                    return false;
                };
                let mut changed = false;
                for (b, block) in module
                    .function_mut(func)
                    .blocks_mut()
                    .iter_mut()
                    .enumerate()
                {
                    if matches!(block.term, Terminator::Return) {
                        block.term = Terminator::Jump {
                            target: BlockId::from_raw(b as u32),
                        };
                        changed = true;
                    }
                }
                changed
            }
        }
    }
}

impl fmt::Display for ModuleCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModuleCorruption::DanglingCallee => "dangling-callee",
            ModuleCorruption::DanglingBlock => "dangling-block",
            ModuleCorruption::MalformedSwitch => "malformed-switch",
            ModuleCorruption::NoReturnPath => "no-return-path",
        };
        f.write_str(name)
    }
}

/// Deterministic element pick.
fn pick<'a, T>(items: &'a [T], rng: &mut ChaosRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.below(items.len() as u64) as usize])
    }
}

/// Corrupts a copy of `module` with the corruption kind derived from
/// `seed`. Returns the corrupted copy, the kind, and whether the corruption
/// actually landed.
pub fn corrupt_module(module: &Module, seed: u64) -> (Module, ModuleCorruption, bool) {
    let kind = ModuleCorruption::from_seed(seed);
    let mut m = module.clone();
    let landed = kind.apply(&mut m, seed);
    (m, kind, landed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{Cond, FunctionBuilder, OpKind};

    fn sample_module() -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", 0);
        b.op(OpKind::Alu);
        b.ret();
        let leaf = m.add_function(b.build());
        let s = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        let t = b.new_block();
        let e = b.new_block();
        b.call(s, leaf, 0);
        b.branch(Cond::Random { ptaken_milli: 500 }, t, e);
        b.switch_to(t);
        b.ret();
        b.switch_to(e);
        b.ret();
        m.add_function(b.build());
        m
    }

    #[test]
    fn landed_corruptions_fail_verification() {
        let base = sample_module();
        base.verify().expect("sample module is valid");
        let mut landed = 0;
        for seed in 0..100 {
            let (corrupt, kind, hit) = corrupt_module(&base, seed);
            if !hit {
                // MalformedSwitch cannot land (no switch in the sample).
                assert_eq!(kind, ModuleCorruption::MalformedSwitch);
                continue;
            }
            landed += 1;
            assert!(
                corrupt.verify().is_err(),
                "seed {seed} ({kind}) corrupted the module but it still verifies"
            );
        }
        assert!(landed > 50, "most corruptions must land: {landed}/100");
    }

    #[test]
    fn corruption_is_deterministic() {
        let base = sample_module();
        for seed in 0..20 {
            let (a, ka, _) = corrupt_module(&base, seed);
            let (b, kb, _) = corrupt_module(&base, seed);
            assert_eq!(ka, kb);
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "seed {seed} must corrupt identically"
            );
        }
    }
}
