//! The parallel experiment engine: an [`ImageFarm`] owns one immutable
//! `(Module, Profile)` pair and serves built [`Image`]s for any set of
//! [`PibeConfig`]s.
//!
//! Every distinct configuration is built **exactly once** per farm — builds
//! are content-keyed by the full configuration (`PibeConfig: Eq + Hash`)
//! and memoized behind `Arc`s, so repeated requests share one image.
//! [`ImageFarm::images`] fans pending builds across a scoped worker pool;
//! the paper's experiment tables request overlapping configuration sets, so
//! the farm turns the former rebuild-per-table cost into one build per
//! distinct configuration per lab.

use crate::config::PibeConfig;
use crate::pipeline::{BuildMetrics, Image, PipelineError};
use parking_lot::Mutex;
use pibe_ir::Module;
use pibe_profile::Profile;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One build slot: filled exactly once, shared by every requester.
type Slot = Arc<OnceLock<Result<Arc<Image>, PipelineError>>>;

/// Counters describing how much work a farm has done and saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Image requests served (via [`ImageFarm::image`] or
    /// [`ImageFarm::images`]).
    pub requests: u64,
    /// Pipeline executions — at most one per distinct configuration.
    pub builds: u64,
    /// Requests served from an already-built image
    /// (`requests - builds`).
    pub hits: u64,
    /// Distinct configurations currently cached.
    pub cached: usize,
    /// Cached configurations whose build failed (including contained
    /// panics). Failures are cached like successes, so this also counts
    /// the rebuilds the farm refused to retry.
    pub failed: usize,
}

/// A build farm over one immutable profiled module.
///
/// The farm owns `Arc`s of the base module and profile so it can hand
/// references to worker threads without borrowing from its creator.
#[derive(Debug)]
pub struct ImageFarm {
    base: Arc<Module>,
    profile: Arc<Profile>,
    cache: Mutex<HashMap<PibeConfig, Slot>>,
    requests: AtomicU64,
    builds: AtomicU64,
    threads: usize,
}

impl ImageFarm {
    /// Creates a farm over `base` and `profile` with the default thread
    /// count (see [`ImageFarm::threads`]).
    pub fn new(base: Module, profile: Profile) -> Self {
        Self::with_shared(Arc::new(base), Arc::new(profile))
    }

    /// Creates a farm sharing already-`Arc`'d inputs (no clone).
    pub fn with_shared(base: Arc<Module>, profile: Arc<Profile>) -> Self {
        ImageFarm {
            base,
            profile,
            cache: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            threads: pibe_ir::par::default_threads(),
        }
    }

    /// A fresh farm over the **same** base module but a new profile — the
    /// continuous-PGO epoch pattern. The module `Arc` is shared (no clone;
    /// builds keep sharing the copy-on-write function bodies), the image
    /// cache starts empty (images are keyed by configuration, and every
    /// cached image embodies decisions made against the *old* profile), and
    /// the worker-pool width carries over.
    pub fn rebase_profile(&self, profile: Arc<Profile>) -> ImageFarm {
        ImageFarm {
            base: Arc::clone(&self.base),
            profile,
            cache: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            threads: self.threads,
        }
    }

    /// Overrides the worker-pool width (must be at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "a farm needs at least one worker");
        self.threads = threads;
        self
    }

    /// The worker-pool width used by [`ImageFarm::images`]. Defaults to
    /// `PIBE_BUILD_THREADS` when set, else the machine's available
    /// parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The immutable base module every build clones.
    pub fn base(&self) -> &Module {
        &self.base
    }

    /// The profile every build optimizes against.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The slot for `config`, creating an empty one under the cache lock.
    fn slot(&self, config: &PibeConfig) -> Slot {
        let mut cache = self.cache.lock();
        cache
            .entry(*config)
            .or_insert_with(|| Arc::new(OnceLock::new()))
            .clone()
    }

    /// Builds or retrieves the image for `config` without touching the
    /// request counter. `OnceLock::get_or_init` guarantees the pipeline
    /// runs exactly once per distinct configuration even under concurrent
    /// callers (losers of the race block, then share the winner's image).
    ///
    /// The build runs under `catch_unwind`: a pass that panics (possible
    /// under [`ValidationPolicy::TrustProfile`](crate::ValidationPolicy)
    /// with a corrupt profile) is contained in this slot as
    /// [`PipelineError::StagePanicked`] instead of tearing down the worker
    /// pool, so one poisoned configuration cannot take a whole batch of
    /// experiments with it.
    fn fetch(&self, config: &PibeConfig) -> Result<Arc<Image>, PipelineError> {
        self.fetch_queued(config, None)
    }

    /// [`ImageFarm::fetch`] with queue-wait attribution: `queued_at` is when
    /// the configuration entered a batch's pending list, so the build span
    /// records how long it waited for a worker (visible per-track in the
    /// exported trace).
    fn fetch_queued(
        &self,
        config: &PibeConfig,
        queued_at: Option<Instant>,
    ) -> Result<Arc<Image>, PipelineError> {
        let slot = self.slot(config);
        if let Some(cached) = slot.get() {
            pibe_trace::event("farm.cache_hit");
            return cached.clone();
        }
        slot.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            let _span = pibe_trace::span_args("farm.build", || {
                let mut args = vec![
                    (
                        "defenses",
                        pibe_trace::Value::from(format!("{:?}", config.defenses)),
                    ),
                    ("optimizes", pibe_trace::Value::from(config.optimizes())),
                ];
                if let Some(q) = queued_at {
                    let wait_us = q.elapsed().as_micros() as u64;
                    pibe_trace::record_value("farm.queue_wait_us", wait_us);
                    args.push(("queue_wait_us", pibe_trace::Value::from(wait_us)));
                }
                args
            });
            // With a multi-build worker pool the pool owns the machine:
            // each build runs its per-function stages on one thread so a
            // farm of N workers doesn't fan out into N * threads workers.
            // A single-worker farm lets the stages use the full default.
            let stage_threads = if self.threads > 1 {
                1
            } else {
                pibe_ir::par::default_threads()
            };
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Image::builder(&self.base)
                    .profile(&self.profile)
                    .config(*config)
                    .threads(stage_threads)
                    .build()
                    .map(Arc::new)
            }))
            .unwrap_or_else(|payload| {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(PipelineError::StagePanicked { message })
            })
        })
        .clone()
    }

    /// The image for `config`: built on first request, shared afterwards.
    ///
    /// # Errors
    /// Propagates the build's [`PipelineError`]; failures are cached too,
    /// so a broken configuration is not retried.
    pub fn image(&self, config: &PibeConfig) -> Result<Arc<Image>, PipelineError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.fetch(config)
    }

    /// Images for every configuration in `configs` (in input order),
    /// fanning not-yet-built configurations across the worker pool.
    /// Duplicate entries are deduplicated before scheduling and resolve to
    /// the same `Arc`'d image.
    ///
    /// # Errors
    /// The first configuration (in input order) whose build failed.
    pub fn images(&self, configs: &[PibeConfig]) -> Result<Vec<Arc<Image>>, PipelineError> {
        self.requests
            .fetch_add(configs.len() as u64, Ordering::Relaxed);

        // Dedup in first-seen order; skip configurations already built.
        let mut seen = HashSet::new();
        let pending: Vec<PibeConfig> = configs
            .iter()
            .filter(|c| seen.insert(**c))
            .filter(|c| self.slot(c).get().is_none())
            .copied()
            .collect();

        let _batch_span = pibe_trace::span_args("farm.images", || {
            vec![
                ("requested", pibe_trace::Value::from(configs.len())),
                ("pending", pibe_trace::Value::from(pending.len())),
            ]
        });
        let queued_at = Instant::now();
        let workers = self.threads.min(pending.len());
        if workers > 1 {
            let next = AtomicUsize::new(0);
            crossbeam::thread::scope(|scope| {
                let (next, pending) = (&next, &pending);
                for w in 0..workers {
                    scope.spawn(move |_| {
                        pibe_trace::set_track_name(format!("worker-{w}"));
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(config) = pending.get(i) else { break };
                            // Errors are cached in the slot and re-surface
                            // in the ordered collection below.
                            let _ = self.fetch_queued(config, Some(queued_at));
                        }
                    });
                }
            })
            .expect("farm worker panicked");
        } else {
            for config in &pending {
                let _ = self.fetch_queued(config, Some(queued_at));
            }
        }

        configs.iter().map(|c| self.fetch(c)).collect()
    }

    /// Builds (in parallel) and caches every configuration, discarding the
    /// images — tables that interleave builds with measurements call this
    /// first so subsequent [`ImageFarm::image`] calls are cache hits.
    ///
    /// # Errors
    /// The first configuration whose build failed.
    pub fn prefetch(&self, configs: &[PibeConfig]) -> Result<(), PipelineError> {
        self.images(configs).map(|_| ())
    }

    /// Current counters.
    pub fn stats(&self) -> FarmStats {
        let requests = self.requests.load(Ordering::Relaxed);
        let builds = self.builds.load(Ordering::Relaxed);
        let cache = self.cache.lock();
        let failed = cache
            .values()
            .filter(|slot| matches!(slot.get(), Some(Err(_))))
            .count();
        FarmStats {
            requests,
            builds,
            hits: requests.saturating_sub(builds),
            cached: cache.len(),
            failed,
        }
    }

    /// Sums the per-stage build timings of every successfully built image.
    pub fn aggregate_metrics(&self) -> BuildMetrics {
        let slots: Vec<Slot> = self.cache.lock().values().cloned().collect();
        let mut agg = BuildMetrics::default();
        for slot in slots {
            if let Some(Ok(image)) = slot.get() {
                agg.accumulate(&image.metrics);
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_harden::DefenseSet;
    use pibe_kernel::{
        measure::collect_profile,
        workloads::{lmbench_suite, WorkloadSpec},
        Kernel, KernelSpec,
    };
    use pibe_profile::Budget;

    fn test_farm() -> ImageFarm {
        let k = Kernel::generate(KernelSpec::test());
        let p = collect_profile(&k, &WorkloadSpec::lmbench(), &lmbench_suite(4), 1, 7)
            .expect("profiling run succeeds");
        ImageFarm::new(k.module, p)
    }

    #[test]
    fn duplicate_requests_share_one_arc() {
        let farm = test_farm();
        let cfg = PibeConfig::lax(DefenseSet::ALL);
        let a = farm.image(&cfg).expect("builds");
        let b = farm.image(&cfg).expect("cached");
        assert!(Arc::ptr_eq(&a, &b), "cache must return the same image");
        let s = farm.stats();
        assert_eq!((s.requests, s.builds, s.hits, s.cached), (2, 1, 1, 1));
    }

    #[test]
    fn matrix_builds_each_distinct_config_once() {
        let farm = test_farm().with_threads(2);
        let matrix = [
            PibeConfig::lto(),
            PibeConfig::lto_with(DefenseSet::ALL),
            PibeConfig::lax(DefenseSet::ALL),
            PibeConfig::lto(), // duplicate
            PibeConfig::icp_only(Budget::P99_9, DefenseSet::RETPOLINES),
        ];
        let images = farm.images(&matrix).expect("matrix builds");
        assert_eq!(images.len(), matrix.len());
        assert!(Arc::ptr_eq(&images[0], &images[3]), "duplicates share");
        assert_eq!(farm.stats().builds, 4, "4 distinct configs");

        // A second pass over the same matrix builds nothing new.
        farm.images(&matrix).expect("all cached");
        assert_eq!(farm.stats().builds, 4);
        assert_eq!(farm.stats().requests, 10);
    }

    #[test]
    fn aggregate_metrics_sums_built_images() {
        let farm = test_farm();
        farm.prefetch(&[PibeConfig::lto(), PibeConfig::lax(DefenseSet::ALL)])
            .expect("prefetch");
        let agg = farm.aggregate_metrics();
        assert!(agg.total_ns > 0);
        assert!(agg.clone_ns > 0);
        assert_eq!(farm.stats().failed, 0);
    }

    #[test]
    fn rebase_profile_shares_base_and_resets_cache() {
        let farm = test_farm();
        let cfg = PibeConfig::lax(DefenseSet::ALL);
        farm.image(&cfg).expect("builds");

        let mut p2 = farm.profile().clone();
        p2.merge(&farm.profile().clone()); // epoch: counts doubled
        let rebased = farm.rebase_profile(Arc::new(p2));
        assert!(
            std::ptr::eq(farm.base(), rebased.base()),
            "base module Arc is shared, not cloned"
        );
        assert_eq!(rebased.stats().cached, 0, "image cache starts empty");
        assert_eq!(rebased.threads(), farm.threads());
        rebased.image(&cfg).expect("rebuilds under the new profile");
        assert_eq!(rebased.stats().builds, 1);
        assert_eq!(farm.stats().builds, 1, "old farm untouched");
    }

    /// A farm whose profile has a dangling value-profile target planted as
    /// the hottest promotion candidate — the input that panics the inliner
    /// when validation is off.
    fn poisoned_farm() -> ImageFarm {
        use pibe_profile::{corrupt_profile, ProfileChaos};
        let k = Kernel::generate(KernelSpec::test());
        let p = collect_profile(&k, &WorkloadSpec::lmbench(), &lmbench_suite(4), 1, 7)
            .expect("profiling run succeeds");
        let bad = (0..200)
            .find_map(|seed| {
                let (bad, kind, landed) = corrupt_profile(&p, &k.module, seed);
                (landed && kind == ProfileChaos::DanglingTarget).then_some(bad)
            })
            .expect("some seed plants a dangling target");
        ImageFarm::new(k.module, bad)
    }

    #[test]
    fn worker_panic_is_contained_and_cached() {
        use crate::ValidationPolicy;
        let farm = poisoned_farm().with_threads(2);
        let poisoned =
            PibeConfig::lax(DefenseSet::ALL).with_validation(ValidationPolicy::TrustProfile);
        let healthy = [
            PibeConfig::lto(),
            PibeConfig::lto_with(DefenseSet::ALL),
            PibeConfig::lax(DefenseSet::ALL), // Repair fixes the profile
        ];
        let mut batch = healthy.to_vec();
        batch.insert(1, poisoned);

        // The batch reports the poisoned build's contained panic...
        let err = farm.images(&batch).expect_err("poisoned config must fail");
        assert!(
            matches!(err, PipelineError::StagePanicked { .. }),
            "wanted StagePanicked, got {err}"
        );
        // ...but every other configuration was still built and is served
        // from cache afterwards.
        let builds_after_batch = farm.stats().builds;
        for cfg in &healthy {
            farm.image(cfg).expect("healthy config built");
        }
        assert_eq!(farm.stats().builds, builds_after_batch, "all cache hits");

        // The failure itself is cached (no retry) and counted.
        let again = farm.image(&poisoned).expect_err("failure is cached");
        assert_eq!(again, err);
        assert_eq!(farm.stats().builds, builds_after_batch);
        assert_eq!(farm.stats().failed, 1);
    }
}
