//! PIBE beyond the kernel (§1): "our approach applies equally to other
//! code: hypervisors, SGX(-like) enclaves, and user programs."
//!
//! This experiment runs the *identical* pipeline — profile, promote,
//! inline, harden — over a little userspace server program (an event loop
//! dispatching requests through handler function pointers) and reports the
//! same before/after comparison as the kernel tables. No kernel-specific
//! machinery is involved, demonstrating that the pipeline only needs IR,
//! a profile, and a workload.

use crate::config::PibeConfig;
use crate::pipeline::Image;
use crate::report::{pct, Table};
use pibe_harden::DefenseSet;
use pibe_ir::{Cond, FuncId, FunctionBuilder, Module, OpKind, SiteId};
use pibe_sim::{MapResolver, SimConfig, Simulator};
use serde::{Deserialize, Serialize};

/// Measured outcome of the userspace experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserspaceSummary {
    /// All-defenses overhead with no optimization (%).
    pub unoptimized_pct: f64,
    /// All-defenses overhead after the PIBE pipeline (%).
    pub pibe_pct: f64,
}

/// A small event-driven server: `serve` loops over requests, parses them,
/// and dispatches through a handler table to one of four request handlers,
/// each leaning on shared helpers. Returns `(module, entry, dispatch_site,
/// handlers)`.
fn server_program() -> (Module, FuncId, SiteId, Vec<FuncId>) {
    let mut m = Module::new("userspace-server");

    let mut b = FunctionBuilder::new("memcpy_small", 2);
    b.ops(OpKind::Load, 4);
    b.ops(OpKind::Store, 4);
    b.ret();
    let memcpy = m.add_function(b.build());

    let mut b = FunctionBuilder::new("checksum", 1);
    let loop_bb = b.new_block();
    let done = b.new_block();
    b.jump(loop_bb);
    b.switch_to(loop_bb);
    b.ops(OpKind::Load, 2);
    b.ops(OpKind::Alu, 3);
    b.branch(Cond::Random { ptaken_milli: 800 }, loop_bb, done);
    b.switch_to(done);
    b.ret();
    let checksum = m.add_function(b.build());

    let mut handlers = Vec::new();
    for (name, work) in [
        ("handle_get", 20usize),
        ("handle_put", 30),
        ("handle_stat", 10),
        ("handle_list", 45),
    ] {
        let s1 = m.fresh_site();
        let s2 = m.fresh_site();
        let mut b = FunctionBuilder::new(name, 2);
        b.ops(OpKind::Alu, work);
        b.call(s1, memcpy, 2);
        b.ops(OpKind::Load, 4);
        b.call(s2, checksum, 1);
        b.ret();
        handlers.push(m.add_function(b.build()));
    }

    let s_parse_cp = m.fresh_site();
    let mut b = FunctionBuilder::new("parse_request", 1);
    b.ops(OpKind::Load, 6);
    b.ops(OpKind::Cmp, 4);
    b.call(s_parse_cp, memcpy, 2);
    b.ret();
    let parse = m.add_function(b.build());

    let dispatch_site = m.fresh_site();
    let s_parse = m.fresh_site();
    let mut b = FunctionBuilder::new("serve", 0);
    let loop_bb = b.new_block();
    let done = b.new_block();
    b.jump(loop_bb);
    b.switch_to(loop_bb);
    b.ops(OpKind::Load, 3);
    b.call(s_parse, parse, 1);
    b.op(OpKind::Mov);
    b.call_indirect(dispatch_site, 2);
    b.branch(Cond::Random { ptaken_milli: 900 }, loop_bb, done);
    b.switch_to(done);
    b.ret();
    let serve = m.add_function(b.build());
    m.verify().expect("server program is valid");
    (m, serve, dispatch_site, handlers)
}

fn resolver(site: SiteId, handlers: &[FuncId]) -> MapResolver {
    let mut r = MapResolver::new();
    // GET-heavy request mix, as a static web workload would be.
    r.insert(
        site,
        vec![
            (handlers[0], 12),
            (handlers[1], 3),
            (handlers[2], 2),
            (handlers[3], 1),
        ],
    );
    r
}

fn measure(
    module: &Module,
    entry: FuncId,
    site: SiteId,
    handlers: &[FuncId],
    d: DefenseSet,
) -> f64 {
    let cfg = SimConfig {
        defenses: d,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(module, resolver(site, handlers), 17, cfg);
    for _ in 0..50 {
        sim.call_entry(entry).expect("server runs");
    }
    let mut total = 0;
    for _ in 0..200 {
        total += sim.call_entry(entry).expect("server runs");
    }
    total as f64 / 200.0
}

/// Runs the userspace pipeline demonstration.
pub fn userspace(profiling_runs: u32) -> (Table, UserspaceSummary) {
    let (module, entry, site, handlers) = server_program();

    // Profile with the simulator, exactly as for the kernel.
    let profile = {
        let cfg = SimConfig {
            collect_profile: true,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&module, resolver(site, &handlers), 17, cfg);
        for _ in 0..profiling_runs {
            sim.call_entry(entry).expect("profiling run");
        }
        sim.take_profile()
    };

    let image = Image::builder(&module)
        .profile(&profile)
        .config(
            PibeConfig::builder()
                .lax()
                .defenses(DefenseSet::ALL)
                .build(),
        )
        .build()
        .expect("pipeline must preserve validity");

    let base = measure(&module, entry, site, &handlers, DefenseSet::NONE);
    let unopt = measure(&module, entry, site, &handlers, DefenseSet::ALL);
    let pibe = measure(&image.module, entry, site, &handlers, DefenseSet::ALL);
    let summary = UserspaceSummary {
        unoptimized_pct: (unopt - base) / base * 100.0,
        pibe_pct: (pibe - base) / base * 100.0,
    };

    let mut t = Table::new(
        "Userspace (1): the same pipeline on an event-loop server program",
        &["configuration", "overhead vs undefended"],
    );
    t.row(vec![
        "all defenses, no optimization".into(),
        pct(summary.unoptimized_pct),
    ]);
    t.row(vec!["all defenses + PIBE".into(), pct(summary.pibe_pct)]);
    (t, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_applies_to_user_programs_too() {
        let (_, s) = userspace(100);
        assert!(
            s.unoptimized_pct > 30.0,
            "a dispatch-heavy server suffers under defenses: {:.1}%",
            s.unoptimized_pct
        );
        assert!(
            s.pibe_pct < s.unoptimized_pct / 3.0,
            "PIBE recovers most of it: {:.1}% vs {:.1}%",
            s.pibe_pct,
            s.unoptimized_pct
        );
    }
}
