//! Regeneration of every table and figure in the paper's evaluation.
//!
//! A [`Lab`] owns the generated kernel, the profiling workload's aggregated
//! profile, and the LTO baseline measurements every experiment compares
//! against. Each `table*` function reproduces one table of the paper; see
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record.

mod breakdown;
mod convergence;
mod crossarch;
mod eibrs;
mod perf;
mod refill;
mod robustness;
mod security;
mod userspace;
mod v1;

pub use breakdown::{cycle_breakdown, CycleBreakdown};
pub use convergence::{profiling_convergence, ConvergencePoint};
pub use crossarch::{cross_arch, CrossArchPoint};
pub use eibrs::{eibrs_comparison, ForwardEdgePosture};
pub use perf::{figure1, table1, table2, table3, table5, table6, table7};
pub use refill::{rsb_refill_comparison, BackwardEdgePosture};
pub use robustness::{robustness, RobustnessSummary};
pub use security::{table10, table11, table12, table4, table8, table9};
pub use userspace::{userspace, UserspaceSummary};
pub use v1::{spectre_v1_fencing, V1Summary};

use crate::config::PibeConfig;
use crate::eval::{self, LatencyRow};
use crate::farm::ImageFarm;
use crate::pipeline::{BuildMetrics, Image, PipelineError};
use pibe_harden::{Arch, DefenseSet};
use pibe_kernel::measure::collect_profile;
use pibe_kernel::workloads::{lmbench_suite, Benchmark, WorkloadSpec};
use pibe_kernel::{Kernel, KernelSpec};
use pibe_profile::Profile;
use pibe_sim::{SimConfig, SimError};
use std::fmt;
use std::sync::Arc;

/// Why an experiment could not produce its numbers. Every variant names
/// the workload, benchmark, or build that failed (and the seed it ran
/// under), so a failing lab points at the culprit instead of panicking
/// deep inside a measurement loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// A profiling run failed.
    Profiling {
        /// The profiling workload that failed (e.g. `lmbench`, `apache`).
        workload: String,
        /// The simulation seed the run used.
        seed: u64,
        /// The underlying simulator failure.
        source: SimError,
    },
    /// A benchmark measurement failed.
    Benchmark {
        /// The benchmark that failed (e.g. `fork+execve`, `nginx`).
        benchmark: String,
        /// The simulation seed the run used.
        seed: u64,
        /// The underlying simulator failure.
        source: SimError,
    },
    /// An image build failed.
    Build(PipelineError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Profiling {
                workload,
                seed,
                source,
            } => write!(
                f,
                "profiling run failed (workload {workload}, seed {seed:#x}): {source}"
            ),
            ExperimentError::Benchmark {
                benchmark,
                seed,
                source,
            } => write!(
                f,
                "benchmark failed ({benchmark}, seed {seed:#x}): {source}"
            ),
            ExperimentError::Build(e) => write!(f, "image build failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<PipelineError> for ExperimentError {
    fn from(e: PipelineError) -> Self {
        ExperimentError::Build(e)
    }
}

/// The experiment harness: one generated kernel, one profiling run, and one
/// image farm shared across all tables.
#[derive(Debug)]
pub struct Lab {
    /// The synthetic kernel under evaluation.
    pub kernel: Kernel,
    /// The LMBench profiling workload.
    pub workload: WorkloadSpec,
    /// The latency suite (Table 2's 20 benchmarks).
    pub suite: Vec<Benchmark>,
    /// Profile aggregated over the profiling rounds (11 in the paper).
    pub profile: Profile,
    /// LTO-baseline latencies (no optimization, no defenses).
    pub lto_latencies: Vec<LatencyRow>,
    /// Simulation seed shared by all measurements.
    pub seed: u64,
    /// The lab's default architecture, from the `PIBE_ARCH` environment
    /// variable (x86 when unset). Configurations at the default
    /// [`Arch::X86`] are re-stamped to this arch by [`Lab::image`], so
    /// every table runs per-arch without per-table changes; configurations
    /// carrying an explicit non-x86 arch pass through untouched.
    pub arch: Arch,
    /// The build farm: every image any table requests is built exactly once
    /// here and shared.
    farm: ImageFarm,
}

impl Lab {
    /// Builds a lab: generates the kernel, collects the aggregated LMBench
    /// profile (`rounds` runs, 11 in the paper), and measures the LTO
    /// baseline.
    ///
    /// # Errors
    /// [`ExperimentError::Profiling`] naming the workload and seed when the
    /// profiling run fails.
    pub fn new(spec: KernelSpec, iters: u32, rounds: u32) -> Result<Lab, ExperimentError> {
        let _lab_span = pibe_trace::span_args("lab.setup", || {
            vec![
                ("iters", pibe_trace::Value::from(iters as u64)),
                ("rounds", pibe_trace::Value::from(rounds as u64)),
            ]
        });
        let gen_span = pibe_trace::span("lab.kernel_gen");
        let kernel = Kernel::generate(spec);
        drop(gen_span);
        let workload = WorkloadSpec::lmbench();
        let suite = lmbench_suite(iters);
        let seed = 0xBA5E;
        let profile_span = pibe_trace::span("lab.profile");
        let profile =
            collect_profile(&kernel, &workload, &suite, rounds, seed).map_err(|source| {
                ExperimentError::Profiling {
                    workload: workload.name.clone(),
                    seed,
                    source,
                }
            })?;
        drop(profile_span);
        let baseline_span = pibe_trace::span("lab.baseline");
        let lto_latencies = eval::lmbench_latencies(
            &kernel.module,
            &kernel,
            &workload,
            &suite,
            SimConfig::default(),
            seed,
        );
        drop(baseline_span);
        let farm =
            ImageFarm::with_shared(Arc::new(kernel.module.clone()), Arc::new(profile.clone()));
        Ok(Lab {
            kernel,
            workload,
            suite,
            profile,
            lto_latencies,
            seed,
            arch: Arch::from_env(),
            farm,
        })
    }

    /// A small lab for tests: tiny kernel, few iterations.
    ///
    /// # Panics
    /// Panics if the profiling run fails (tests want the loud failure).
    pub fn test() -> Lab {
        Lab::new(KernelSpec::test(), 8, 2).expect("test lab builds")
    }

    /// Stamps the lab's arch onto a configuration still at the default
    /// [`Arch::X86`]; a config that already names a non-default arch (the
    /// cross-arch experiment's) passes through unchanged. At the default
    /// lab arch this is the identity, so x86 results are bit-identical to
    /// an arch-unaware lab.
    fn arched(&self, config: &PibeConfig) -> PibeConfig {
        if config.arch == Arch::X86 {
            config.with_arch(self.arch)
        } else {
            *config
        }
    }

    /// The image for `config`, built through the lab's farm: the first
    /// request for a configuration builds it, every later request shares
    /// the same `Arc`'d image. Configs at the default arch are re-stamped
    /// to the lab's arch (see [`Lab::arch`]).
    pub fn image(&self, config: &PibeConfig) -> Arc<Image> {
        let config = self.arched(config);
        self.farm
            .image(&config)
            .unwrap_or_else(|e| panic!("image build failed for {config:?}: {e}"))
    }

    /// The image for `config` pinned to an explicit architecture, ignoring
    /// the lab's default. The cross-arch experiment uses this to build the
    /// same optimization configuration for every backend in one lab.
    pub fn image_for_arch(&self, config: &PibeConfig, arch: Arch) -> Arc<Image> {
        let config = config.with_arch(arch);
        self.farm
            .image(&config)
            .unwrap_or_else(|e| panic!("image build failed for {config:?}: {e}"))
    }

    /// Builds every configuration in `configs` across the farm's worker
    /// pool before returning; tables call this so their subsequent
    /// [`Lab::image`] calls are cache hits.
    pub fn prefetch(&self, configs: &[PibeConfig]) {
        let configs: Vec<PibeConfig> = configs.iter().map(|c| self.arched(c)).collect();
        self.farm
            .prefetch(&configs)
            .unwrap_or_else(|e| panic!("prefetch build failed: {e}"));
    }

    /// The lab's build farm (counters, thread knob, aggregate metrics).
    pub fn farm(&self) -> &ImageFarm {
        &self.farm
    }

    /// Per-stage build timings summed over every image this lab has built.
    pub fn build_metrics(&self) -> BuildMetrics {
        self.farm.aggregate_metrics()
    }

    /// Measures the latency suite on `image` under its own defenses and
    /// architecture.
    pub fn latencies(&self, image: &Image) -> Vec<LatencyRow> {
        self.latencies_with(
            image,
            SimConfig {
                defenses: image.config.defenses,
                arch: image.config.arch,
                ..SimConfig::default()
            },
        )
    }

    /// Measures the latency suite on `image` with an explicit simulator
    /// configuration (used for the JumpSwitches runtime mechanism).
    pub fn latencies_with(&self, image: &Image, cfg: SimConfig) -> Vec<LatencyRow> {
        eval::lmbench_latencies(
            &image.module,
            &self.kernel,
            &self.workload,
            &self.suite,
            cfg,
            self.seed,
        )
    }

    /// Per-benchmark overhead (%) of `image` relative to the LTO baseline.
    pub fn overheads(&self, image: &Image) -> Vec<(String, f64)> {
        let rows = self.latencies(image);
        self.overheads_of(&rows)
    }

    /// Overheads of pre-measured rows relative to the LTO baseline.
    pub fn overheads_of(&self, rows: &[LatencyRow]) -> Vec<(String, f64)> {
        self.lto_latencies
            .iter()
            .zip(rows)
            .map(|(b, n)| (b.name.clone(), eval::overhead_pct(b.cycles, n.cycles)))
            .collect()
    }

    /// Geometric-mean overhead (%) of rows vs the LTO baseline.
    pub fn geomean(&self, rows: &[LatencyRow]) -> f64 {
        eval::geomean_overhead_pct(
            &eval::cycles_of(&self.lto_latencies),
            &eval::cycles_of(rows),
        )
    }

    /// Builds, measures, and summarises one configuration in a single call:
    /// `(geomean overhead %, per-bench overheads)`.
    pub fn run_config(&self, config: &PibeConfig) -> (f64, Vec<(String, f64)>) {
        let image = self.image(config);
        let rows = self.latencies(&image);
        (self.geomean(&rows), self.overheads_of(&rows))
    }
}

/// The defense configurations of Tables 6 and 7 in display order.
pub fn defense_sweep() -> [(&'static str, DefenseSet); 4] {
    [
        ("w/retpolines", DefenseSet::RETPOLINES),
        ("w/ret-retpolines", DefenseSet::RET_RETPOLINES),
        ("w/LVI-CFI", DefenseSet::LVI_CFI),
        ("w/all-defenses", DefenseSet::ALL),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_profile::Budget;

    #[test]
    fn lab_builds_and_measures_baseline() {
        let lab = Lab::test();
        assert_eq!(lab.lto_latencies.len(), 20);
        assert!(lab.profile.stats().direct_weight > 0);
    }

    #[test]
    fn optimized_defended_image_beats_unoptimized_defended() {
        let lab = Lab::test();
        let (lto_all, _) = lab.run_config(&PibeConfig::builder().defenses(DefenseSet::ALL).build());
        let (pibe_all, _) = lab.run_config(
            &PibeConfig::builder()
                .lax()
                .defenses(DefenseSet::ALL)
                .build(),
        );
        assert!(
            pibe_all < lto_all,
            "PIBE must beat unoptimized defenses ({pibe_all:.1}% vs {lto_all:.1}%)"
        );
        // The magnitude claims are about the x86 retpoline family; hardware
        // CFI backends start from a far smaller overhead, so a PIBE_ARCH
        // matrix run checks direction only.
        if lab.arch == Arch::X86 {
            assert!(
                pibe_all < lto_all / 2.0,
                "PIBE must cut comprehensive-defense overhead dramatically \
                 (LTO {lto_all:.1}% vs PIBE {pibe_all:.1}%)"
            );
            assert!(lto_all > 30.0, "undefended gap is large: {lto_all:.1}%");
        }
    }

    #[test]
    fn pibe_baseline_is_faster_than_lto() {
        let lab = Lab::test();
        let (g, _) = lab.run_config(&PibeConfig::builder().lax().build());
        assert!(
            g < 0.0,
            "PGO with no defenses speeds the kernel up: {g:.1}%"
        );
    }

    #[test]
    fn icp_only_cuts_retpoline_overhead() {
        let lab = Lab::test();
        if lab.arch != Arch::X86 {
            // On hardware-CFI arches the forward-edge toll is 1 cycle, so
            // ICP's win is inside measurement noise; the claim under test
            // is about retpolines.
            return;
        }
        let (lto_retp, _) = lab.run_config(
            &PibeConfig::builder()
                .defenses(DefenseSet::RETPOLINES)
                .build(),
        );
        let (icp_retp, _) = lab.run_config(
            &PibeConfig::builder()
                .icp(Budget::P99_999)
                .defenses(DefenseSet::RETPOLINES)
                .build(),
        );
        assert!(
            icp_retp < lto_retp,
            "ICP reduces retpoline overhead ({icp_retp:.1}% vs {lto_retp:.1}%)"
        );
    }
}
