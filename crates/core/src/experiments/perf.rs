//! Performance tables: Table 1 (micro costs), Figure 1 (Rule 3 example),
//! Tables 2, 3, 5, 6 (LMBench), Table 7 (macrobenchmarks).

use super::{defense_sweep, ExperimentError, Lab};
use crate::config::PibeConfig;
use crate::eval;
use crate::report::{micros, pct, Table};
use pibe_baselines::jumpswitch_sim_config;
use pibe_harden::costs::NonTransientDefense;
use pibe_harden::DefenseSet;
use pibe_kernel::measure::run_throughput;
use pibe_kernel::workloads::MacroBench;
use pibe_passes::{run_inliner, InlinerConfig, SiteWeights};
use pibe_profile::{Budget, Profile};
use pibe_sim::{micro, JumpSwitchConfig};

/// Table 1: per-call defense overheads in ticks plus the SPEC-like
/// slowdown. Transient rows are *measured* in the simulator; the
/// non-transient rows reproduce the paper's measurements (they exist to
/// justify the focus on transient defenses and are not part of the kernel
/// pipeline).
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: overhead of control-flow hijacking mitigations (ticks/call, % SPEC-like)",
        &["defense", "dcall", "icall", "vcall", "spec-like %"],
    );
    t.row(vec![
        "uninstrumented".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        pct(0.0),
    ]);
    for d in [
        NonTransientDefense::LlvmCfi,
        NonTransientDefense::StackProtector,
        NonTransientDefense::SafeStack,
    ] {
        let (dc, ic, vc) = d.table1_ticks();
        t.row(vec![
            d.name().into(),
            dc.to_string(),
            ic.to_string(),
            vc.to_string(),
            "~1.0%".into(),
        ]);
    }
    let transient: [(&str, DefenseSet); 5] = [
        ("LVI-CFI", DefenseSet::LVI_CFI),
        ("retpolines", DefenseSet::RETPOLINES),
        (
            "retpolines + LVI-CFI",
            DefenseSet {
                retpolines: true,
                lvi_cfi: true,
                ret_retpolines: false,
            },
        ),
        ("return retpolines", DefenseSet::RET_RETPOLINES),
        ("all defenses", DefenseSet::ALL),
    ];
    for (name, d) in transient {
        let row = micro::table1_row(d);
        let spec = micro::spec_slowdown_percent(d);
        t.row(vec![
            name.into(),
            row.dcall.to_string(),
            row.icall.to_string(),
            row.vcall.to_string(),
            pct(spec),
        ]);
    }
    t
}

/// Figure 1: the `bar → foo_1/foo_2/foo_3` example motivating Rule 3 —
/// without it, greedy inlining of the hot heavyweight callee `foo_1`
/// depletes `bar`'s complexity budget; with it, `foo_2` and `foo_3` elide
/// the same weight at a fraction of the size.
pub fn figure1() -> Table {
    use pibe_ir::{FunctionBuilder, Module, OpKind};
    let mut m = Module::new("figure1");
    // Costs: foo_1 ≈ 12 000 (2 399 ops), foo_2 ≈ 300, foo_3 ≈ 200.
    let mut foos = Vec::new();
    for (name, ops) in [("foo_1", 2_399usize), ("foo_2", 59), ("foo_3", 39)] {
        let mut b = FunctionBuilder::new(name, 0);
        b.ops(OpKind::Alu, ops);
        b.ret();
        foos.push(m.add_function(b.build()));
    }
    let sites: Vec<_> = (0..3).map(|_| m.fresh_site()).collect();
    let mut b = FunctionBuilder::new("bar", 0);
    for (s, f) in sites.iter().zip(&foos) {
        b.call(*s, *f, 0);
    }
    b.ret();
    m.add_function(b.build());

    // Weights from Figure 1: 1000 / 500 / 500.
    let mut p = Profile::new();
    for (s, f, w) in [
        (sites[0], foos[0], 1000u64),
        (sites[1], foos[1], 500),
        (sites[2], foos[2], 500),
    ] {
        for _ in 0..w {
            p.record_direct(s);
            p.record_entry(f);
        }
    }
    let weights = SiteWeights::from_profile(&p);
    let stats = run_inliner(&mut m, &weights, &p, &InlinerConfig::default());

    let mut t = Table::new(
        "Figure 1: Rule 3 preserves bar's budget for small hot callees",
        &["callee", "edge weight", "inline cost", "decision"],
    );
    let cost = |f: pibe_ir::FuncId| pibe_ir::size::function_cost(m.function(f));
    t.row(vec![
        "foo_1".into(),
        "1000".into(),
        "~12000".into(),
        "skipped (Rule 3)".into(),
    ]);
    t.row(vec![
        "foo_2".into(),
        "500".into(),
        cost(foos[1]).to_string(),
        "inlined".into(),
    ]);
    t.row(vec![
        "foo_3".into(),
        "500".into(),
        cost(foos[2]).to_string(),
        "inlined".into(),
    ]);
    t.row(vec![
        "(total)".into(),
        format!("{} elided", stats.inlined_weight),
        format!("{} blocked by Rule 3", stats.blocked_rule3_weight),
        format!("{} sites inlined", stats.inlined_sites),
    ]);
    t
}

/// Table 2: the two baselines — LTO vs PIBE-optimized (no defenses) —
/// absolute latencies and relative overhead, geometric mean last.
pub fn table2(lab: &Lab) -> Table {
    let image = lab.image(&PibeConfig::builder().lax().build());
    let rows = lab.latencies(&image);
    let mut t = Table::new(
        "Table 2: LTO baseline vs PIBE (PGO, no defenses) LMBench latencies",
        &[
            "Test",
            "LTO Baseline (us)",
            "PIBE Baseline (us)",
            "overhead",
        ],
    );
    for (b, n) in lab.lto_latencies.iter().zip(&rows) {
        t.row(vec![
            b.name.clone(),
            micros(b.micros),
            micros(n.micros),
            pct(eval::overhead_pct(b.cycles, n.cycles)),
        ]);
    }
    t.row(vec![
        "Geometric Mean".into(),
        "-".into(),
        "-".into(),
        pct(lab.geomean(&rows)),
    ]);
    t
}

/// The 12 retpoline-sensitive benchmarks Table 3 reports.
const TABLE3_BENCHES: [&str; 12] = [
    "null",
    "read",
    "write",
    "open",
    "stat",
    "fstat",
    "select_tcp",
    "udp",
    "tcp",
    "tcp_conn",
    "af_unix",
    "pipe",
];

/// Table 3: retpoline overhead — unoptimized vs JumpSwitches vs static ICP
/// at two budgets, all relative to the LTO baseline.
pub fn table3(lab: &Lab) -> Table {
    let retp = DefenseSet::RETPOLINES;
    lab.prefetch(&[
        PibeConfig::builder().defenses(retp).build(),
        PibeConfig::builder()
            .icp(Budget::P99)
            .defenses(retp)
            .build(),
        PibeConfig::builder()
            .icp(Budget::P99_999)
            .defenses(retp)
            .build(),
    ]);
    let lto_image = lab.image(&PibeConfig::builder().defenses(retp).build());
    let lto_rows = lab.latencies(&lto_image);
    // JumpSwitches run on the *unoptimized* image with the runtime
    // mechanism handling forward edges.
    let js_rows = lab.latencies_with(
        &lto_image,
        jumpswitch_sim_config(JumpSwitchConfig::default()),
    );
    let icp99 = lab.image(
        &PibeConfig::builder()
            .icp(Budget::P99)
            .defenses(retp)
            .build(),
    );
    let icp99_rows = lab.latencies(&icp99);
    let icp999 = lab.image(
        &PibeConfig::builder()
            .icp(Budget::P99_999)
            .defenses(retp)
            .build(),
    );
    let icp999_rows = lab.latencies(&icp999);

    let mut t = Table::new(
        "Table 3: retpolines overhead vs LTO baseline",
        &[
            "Test",
            "LTO w/retpolines",
            "JumpSwitches",
            "+icp (99%)",
            "+icp (99.999%)",
        ],
    );
    let mut kept = vec![false; lab.suite.len()];
    for (i, b) in lab.lto_latencies.iter().enumerate() {
        kept[i] = TABLE3_BENCHES.contains(&b.name.as_str());
    }
    for (i, base) in lab.lto_latencies.iter().enumerate() {
        if !kept[i] {
            continue;
        }
        t.row(vec![
            base.name.clone(),
            pct(eval::overhead_pct(base.cycles, lto_rows[i].cycles)),
            pct(eval::overhead_pct(base.cycles, js_rows[i].cycles)),
            pct(eval::overhead_pct(base.cycles, icp99_rows[i].cycles)),
            pct(eval::overhead_pct(base.cycles, icp999_rows[i].cycles)),
        ]);
    }
    let geo = |rows: &[eval::LatencyRow]| {
        let base: Vec<f64> = lab
            .lto_latencies
            .iter()
            .enumerate()
            .filter(|(i, _)| kept[*i])
            .map(|(_, r)| r.cycles)
            .collect();
        let new: Vec<f64> = rows
            .iter()
            .enumerate()
            .filter(|(i, _)| kept[*i])
            .map(|(_, r)| r.cycles)
            .collect();
        eval::geomean_overhead_pct(&base, &new)
    };
    t.row(vec![
        "Geometric Mean".into(),
        pct(geo(&lto_rows)),
        pct(geo(&js_rows)),
        pct(geo(&icp99_rows)),
        pct(geo(&icp999_rows)),
    ]);
    t
}

/// Table 5: overhead with all defenses enabled across optimization
/// configurations — the headline 149.1% → 10.6% sweep.
pub fn table5(lab: &Lab) -> Table {
    let all = DefenseSet::ALL;
    let configs: Vec<(&str, PibeConfig)> = vec![
        (
            "LTO w/all-defenses",
            PibeConfig::builder().defenses(all).build(),
        ),
        (
            "+icp (99.999%)",
            PibeConfig::builder()
                .icp(Budget::P99_999)
                .defenses(all)
                .build(),
        ),
        (
            "+icp+inl (99%)",
            PibeConfig::builder()
                .icp(Budget::P99)
                .inliner(Budget::P99)
                .defenses(all)
                .build(),
        ),
        (
            "+icp+inl (99.9%)",
            PibeConfig::builder()
                .icp(Budget::P99_9)
                .inliner(Budget::P99_9)
                .defenses(all)
                .build(),
        ),
        (
            "+icp+inl (99.9999%)",
            PibeConfig::builder()
                .icp(Budget::P99_9999)
                .inliner(Budget::P99_9999)
                .defenses(all)
                .build(),
        ),
        (
            "lax heuristics",
            PibeConfig::builder().lax().defenses(all).build(),
        ),
    ];
    lab.prefetch(&configs.iter().map(|(_, c)| *c).collect::<Vec<_>>());
    let measured: Vec<Vec<eval::LatencyRow>> = configs
        .iter()
        .map(|(_, c)| {
            let img = lab.image(c);
            lab.latencies(&img)
        })
        .collect();

    let mut headers: Vec<&str> = vec!["Test"];
    headers.extend(configs.iter().map(|(n, _)| *n));
    let mut t = Table::new(
        "Table 5: overhead with all defenses enabled (vs LTO baseline)",
        &headers,
    );
    for (i, base) in lab.lto_latencies.iter().enumerate() {
        let mut row = vec![base.name.clone()];
        for rows in &measured {
            row.push(pct(eval::overhead_pct(base.cycles, rows[i].cycles)));
        }
        t.row(row);
    }
    let mut last = vec!["Geometric Mean".to_string()];
    for rows in &measured {
        last.push(pct(lab.geomean(rows)));
    }
    t.row(last);
    t
}

/// Table 6: geometric-mean overhead per defense, unoptimized vs PIBE's
/// best configuration for that defense.
pub fn table6(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Table 6: LMBench geometric mean overhead per defense",
        &["Defense", "LTO", "PIBE"],
    );
    // Optimal config per the paper: icp-only for retpolines (backward
    // edges are untouched anyway), lax for everything else.
    let best = |d: DefenseSet| {
        if d == DefenseSet::RETPOLINES {
            PibeConfig::builder()
                .icp(Budget::P99_999)
                .defenses(d)
                .build()
        } else {
            PibeConfig::builder().lax().defenses(d).build()
        }
    };
    let mut configs = vec![PibeConfig::builder().lax().build()];
    for (_, d) in defense_sweep() {
        configs.push(PibeConfig::builder().defenses(d).build());
        configs.push(best(d));
    }
    lab.prefetch(&configs);
    // "None": the PIBE baseline speedup.
    let (none_geo, _) = lab.run_config(&PibeConfig::builder().lax().build());
    t.row(vec!["None".into(), pct(0.0), pct(none_geo)]);
    for (name, d) in defense_sweep() {
        let (lto, _) = lab.run_config(&PibeConfig::builder().defenses(d).build());
        let (pibe, _) = lab.run_config(&best(d));
        t.row(vec![
            name.trim_start_matches("w/").into(),
            pct(lto),
            pct(pibe),
        ]);
    }
    t
}

/// Table 7: macrobenchmark throughput change (vs the LTO baseline) for
/// each defense, with and without PIBE's optimizations. The profile is the
/// LMBench training workload, as in §8.5.
///
/// # Errors
/// [`ExperimentError::Benchmark`] naming the macrobenchmark and seed when
/// a vanilla throughput run fails.
pub fn table7(lab: &Lab, requests: u32) -> Result<Table, ExperimentError> {
    use pibe_kernel::workloads::WorkloadSpec;
    let benches: [(MacroBench, WorkloadSpec); 3] = [
        (MacroBench::nginx(requests), WorkloadSpec::nginx()),
        (MacroBench::apache(requests), WorkloadSpec::apache()),
        (MacroBench::dbench(requests), WorkloadSpec::dbench()),
    ];
    let mut t = Table::new(
        "Table 7: throughput change for Nginx, Apache, DBench (vs LTO baseline)",
        &[
            "Benchmark",
            "Configuration",
            "no optimization",
            "PIBE optimizations",
        ],
    );
    let mut configs = Vec::new();
    for (_, d) in defense_sweep() {
        configs.push(PibeConfig::builder().defenses(d).build());
        configs.push(if d == DefenseSet::RETPOLINES {
            PibeConfig::builder()
                .icp(Budget::P99_999)
                .defenses(d)
                .build()
        } else {
            PibeConfig::builder().lax().defenses(d).build()
        });
    }
    lab.prefetch(&configs);
    for (mb, wl) in &benches {
        // Vanilla throughput for this macro benchmark.
        let (vanilla, _) = run_throughput(
            &lab.kernel.module,
            &lab.kernel,
            wl,
            mb,
            pibe_sim::SimConfig::default(),
            lab.seed,
        )
        .map_err(|source| ExperimentError::Benchmark {
            benchmark: mb.name.clone(),
            seed: lab.seed,
            source,
        })?;
        for (dname, d) in defense_sweep() {
            let unopt = lab.image(&PibeConfig::builder().defenses(d).build());
            let opt = if d == DefenseSet::RETPOLINES {
                // §8.5: "For the retpolines-only configuration we apply
                // only indirect call promotion."
                lab.image(
                    &PibeConfig::builder()
                        .icp(Budget::P99_999)
                        .defenses(d)
                        .build(),
                )
            } else {
                lab.image(&PibeConfig::builder().lax().defenses(d).build())
            };
            let tp = |img: &crate::pipeline::Image| {
                eval::macro_throughput(
                    &img.module,
                    &lab.kernel,
                    wl,
                    mb,
                    pibe_sim::SimConfig {
                        defenses: img.config.defenses,
                        ..pibe_sim::SimConfig::default()
                    },
                    lab.seed,
                )
            };
            let delta =
                |rps: f64| (rps - vanilla.requests_per_sec) / vanilla.requests_per_sec * 100.0;
            t.row(vec![
                mb.name.clone(),
                dname.into(),
                pct(delta(tp(&unopt))),
                pct(delta(tp(&opt))),
            ]);
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_ticks() {
        let t = table1();
        assert_eq!(t.rows.len(), 9);
        let all = t.rows.last().unwrap();
        assert_eq!(all[0], "all defenses");
        assert_eq!(all[1], "32");
        assert_eq!(all[2], "73");
    }

    #[test]
    fn figure1_shows_rule3_skip() {
        let t = figure1();
        assert!(t.rows[0][3].contains("Rule 3"));
        assert_eq!(t.rows[1][3], "inlined");
        assert_eq!(t.rows[2][3], "inlined");
        assert!(t.rows[3][1].contains("1000 elided"));
    }

    #[test]
    fn table2_pibe_baseline_is_a_net_speedup() {
        let lab = Lab::test();
        let t = table2(&lab);
        assert_eq!(t.rows.len(), 21);
        let geo = t.rows.last().unwrap()[3]
            .trim_end_matches('%')
            .parse::<f64>()
            .unwrap();
        assert!(geo < 0.0, "geomean must be a speedup, got {geo}%");
    }

    #[test]
    fn table3_icp_beats_unoptimized_retpolines() {
        let lab = Lab::test();
        // The magnitudes below are x86-retpoline facts: a 1-cycle BTI pad
        // or Zicfilp lpad neither hurts the unoptimized kernel past 5%
        // nor guarantees promotion wins against its own i-cache growth.
        if lab.arch != pibe_harden::Arch::X86 {
            return;
        }
        let t = table3(&lab);
        let geo = t.rows.last().unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let lto = parse(&geo[1]);
        let icp_hi = parse(&geo[4]);
        assert!(icp_hi < lto, "icp 99.999 ({icp_hi}) must beat LTO ({lto})");
        assert!(lto > 5.0, "retpolines hurt the unoptimized kernel: {lto}");
    }
}
