//! Retpolines vs Enhanced IBRS (§6.4).
//!
//! "In recent hardware (e.g., Intel Cascade Lake) Enhanced IBRS (eIBRS) can
//! be enabled to replace retpolines, but the hardware mitigation has
//! limitations and does not prevent attacks that train on kernel
//! execution." This experiment puts numbers behind the sentence: eIBRS is
//! cheap, but its Spectre V2 surface is only *narrowed* (to same-domain
//! training) while retpolines — and especially PIBE-optimized retpolines —
//! close it.

use super::Lab;
use crate::config::PibeConfig;
use crate::eval;
use crate::report::{pct, Table};
use pibe_harden::DefenseSet;
use pibe_profile::Budget;
use pibe_sim::SimConfig;
use serde::{Deserialize, Serialize};

/// Measured outcome of one forward-edge posture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForwardEdgePosture {
    /// Geomean LMBench overhead vs the LTO baseline.
    pub overhead_pct: f64,
    /// Executions hijackable by cross-domain (userspace) BTB training.
    pub cross_domain: u64,
    /// Executions hijackable only by in-kernel BTB training.
    pub kernel_trained: u64,
}

/// Compares forward-edge postures: nothing, eIBRS, retpolines, and
/// retpolines + PIBE's promotion.
pub fn eibrs_comparison(lab: &Lab) -> (Table, Vec<ForwardEdgePosture>) {
    let mut table = Table::new(
        "eIBRS vs retpolines (6.4): cost and residual Spectre V2 surface",
        &[
            "posture",
            "LMBench overhead",
            "user-trained V2",
            "kernel-trained V2",
        ],
    );
    let mut out = Vec::new();
    let mut measure = |name: &str, image: &crate::Image, cfg: SimConfig| {
        let rows = lab.latencies_with(image, cfg);
        let overhead = lab.geomean(&rows);
        let attacks = eval::lmbench_attack_surface(
            &image.module,
            &lab.kernel,
            &lab.workload,
            &lab.suite,
            cfg,
            lab.seed,
        );
        table.row(vec![
            name.to_string(),
            pct(overhead),
            attacks.btb_hijackable_icalls.to_string(),
            attacks.btb_kernel_trained_icalls.to_string(),
        ]);
        out.push(ForwardEdgePosture {
            overhead_pct: overhead,
            cross_domain: attacks.btb_hijackable_icalls,
            kernel_trained: attacks.btb_kernel_trained_icalls,
        });
    };

    lab.prefetch(&[
        PibeConfig::builder().build(),
        PibeConfig::builder()
            .defenses(DefenseSet::RETPOLINES)
            .build(),
        PibeConfig::builder()
            .icp(Budget::P99_999)
            .defenses(DefenseSet::RETPOLINES)
            .build(),
    ]);
    let lto = lab.image(&PibeConfig::builder().build());
    measure("no forward-edge defense", &lto, SimConfig::default());
    measure(
        "eIBRS",
        &lto,
        SimConfig {
            eibrs: true,
            ..SimConfig::default()
        },
    );
    let retp = lab.image(
        &PibeConfig::builder()
            .defenses(DefenseSet::RETPOLINES)
            .build(),
    );
    measure(
        "retpolines (unoptimized)",
        &retp,
        SimConfig {
            defenses: DefenseSet::RETPOLINES,
            ..SimConfig::default()
        },
    );
    let retp_pibe = lab.image(
        &PibeConfig::builder()
            .icp(Budget::P99_999)
            .defenses(DefenseSet::RETPOLINES)
            .build(),
    );
    measure(
        "retpolines + PIBE icp",
        &retp_pibe,
        SimConfig {
            defenses: DefenseSet::RETPOLINES,
            ..SimConfig::default()
        },
    );
    (table, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eibrs_is_cheap_but_trainable_from_the_kernel() {
        let lab = Lab::test();
        let (_, postures) = eibrs_comparison(&lab);
        let [none, eibrs, retp, retp_pibe] = postures[..] else {
            panic!("four postures expected");
        };
        // eIBRS blocks cross-domain training on every compiler-visible
        // site: what remains is exactly the paravirt asm residual that
        // retpolines leave too.
        assert!(none.cross_domain > 0);
        assert!(eibrs.cross_domain < none.cross_domain);
        assert_eq!(eibrs.cross_domain, retp.cross_domain);
        // ...but merely relabels the rest as kernel-trainable.
        assert!(
            eibrs.kernel_trained > 0,
            "same-domain training remains possible"
        );
        // Retpolines leave no trainable surface either way (asm aside).
        assert_eq!(retp.kernel_trained, 0);
        assert_eq!(retp_pibe.kernel_trained, 0);
        // Cost ordering: eIBRS < unoptimized retpolines; PIBE-optimized
        // retpolines close the gap.
        assert!(eibrs.overhead_pct < retp.overhead_pct);
        assert!(retp_pibe.overhead_pct < retp.overhead_pct);
    }
}
