//! Spectre V1: why the paper's threat model leaves it to static analysis.
//!
//! §3: "we do not target Spectre V1, as static analysis already provides a
//! practical solution for the kernel"; §6.1: "few conditional branches are
//! suitable gadgets, and static analysis can identify and protect them
//! efficiently." This experiment quantifies both halves on the synthetic
//! kernel: the gadget finder touches a small fraction of the conditional
//! branches, and fencing just those costs a fraction of the naive
//! fence-every-branch mitigation.

use super::Lab;
use crate::report::{pct, Table};
use pibe_passes::{fence_all_conditionals, fence_gadgets, find_v1_gadgets};
use pibe_sim::SimConfig;
use serde::{Deserialize, Serialize};

/// Measured outcome of the Spectre V1 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct V1Summary {
    /// Gadget-shaped branch sites found by the analysis.
    pub gadgets: u64,
    /// All data-dependent conditional branches in the kernel.
    pub conditional_branches: u64,
    /// Geomean LMBench overhead of fencing only the gadgets.
    pub selective_pct: f64,
    /// Geomean LMBench overhead of fencing every conditional branch.
    pub naive_pct: f64,
}

/// Runs the Spectre V1 fencing comparison.
pub fn spectre_v1_fencing(lab: &Lab) -> (Table, V1Summary) {
    let gadgets = find_v1_gadgets(&lab.kernel.module);

    let mut selective = lab.kernel.module.clone();
    fence_gadgets(&mut selective, &gadgets);
    let mut naive = lab.kernel.module.clone();
    let naive_stats = fence_all_conditionals(&mut naive);

    let geomean = |module: &pibe_ir::Module| {
        let rows = crate::eval::lmbench_latencies(
            module,
            &lab.kernel,
            &lab.workload,
            &lab.suite,
            SimConfig::default(),
            lab.seed,
        );
        lab.geomean(&rows)
    };
    let summary = V1Summary {
        gadgets: gadgets.len() as u64,
        conditional_branches: naive_stats.branches_seen,
        selective_pct: geomean(&selective),
        naive_pct: geomean(&naive),
    };

    let mut t = Table::new(
        "Spectre V1 (3): selective gadget fencing vs fencing every conditional branch",
        &["measurement", "value"],
    );
    t.row(vec![
        "conditional branches".into(),
        summary.conditional_branches.to_string(),
    ]);
    t.row(vec![
        "gadget-shaped sites (double load behind a check)".into(),
        summary.gadgets.to_string(),
    ]);
    t.row(vec![
        "LMBench overhead, fence gadgets only".into(),
        pct(summary.selective_pct),
    ]);
    t.row(vec![
        "LMBench overhead, fence every conditional".into(),
        pct(summary.naive_pct),
    ]);
    (t, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_fencing_is_practical_and_naive_is_not() {
        let lab = Lab::test();
        let (_, s) = spectre_v1_fencing(&lab);
        assert!(s.gadgets > 0, "the kernel contains gadget-shaped code");
        assert!(
            s.gadgets * 4 < s.conditional_branches,
            "few branches are gadgets ({} of {})",
            s.gadgets,
            s.conditional_branches
        );
        assert!(
            s.selective_pct < s.naive_pct / 3.0,
            "selective fencing ({:.1}%) must be far cheaper than naive ({:.1}%)",
            s.selective_pct,
            s.naive_pct
        );
        assert!(
            s.selective_pct < 5.0,
            "selective fencing is practical: {:.1}%",
            s.selective_pct
        );
    }
}
