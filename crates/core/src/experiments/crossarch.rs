//! The cross-architecture question the backend API exists to answer: how
//! much of PIBE's win survives when the residual defense is cheap hardware
//! CFI (ARM PAC/BTI, RISC-V Zicfilp/Zicfiss) instead of the x86 retpoline
//! family?
//!
//! One invocation builds the same optimization ladder — no optimization,
//! then PIBE at rising profile budgets — once per backend and measures
//! every image against the single shared LTO baseline (the undefended,
//! unoptimized kernel is architecture-independent in the model, so the
//! columns are directly comparable). The table reads as overhead-vs-budget
//! curves, one column per architecture.

use super::Lab;
use crate::config::PibeConfig;
use crate::report::{pct, Table};
use pibe_harden::{Arch, DefenseSet};
use pibe_passes::PassStats;
use pibe_profile::Budget;
use serde::{Deserialize, Serialize};

/// One measured cell of the overhead-vs-budget surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossArchPoint {
    /// The optimization rung ("lto+defenses", "pibe@99", ...).
    pub rung: String,
    /// Architecture name (`x86_64`, `arm64`, `riscv64`, `riscv64-nop`).
    pub arch: String,
    /// Geomean LMBench overhead vs the shared LTO baseline.
    pub overhead_pct: f64,
    /// Dynamic defense cycles the optimization passes elided under this
    /// backend's cost model (the budget logic's figure of merit; zero on
    /// the unoptimized rung).
    pub cycles_elided: u64,
}

/// The architectures one `cross_arch` invocation sweeps: the three
/// evaluated backends plus the RISC-V NOP-on-unsupported deployment
/// variant (same bytes, zero enforcement, zero cycle cost).
pub fn arch_columns() -> [Arch; 4] {
    [Arch::X86, Arch::Arm64, Arch::Riscv64, Arch::Riscv64Nop]
}

/// The optimization ladder each architecture climbs, from unoptimized
/// comprehensive defenses to the paper's lax configuration.
fn budget_ladder() -> [(&'static str, PibeConfig); 5] {
    let d = DefenseSet::ALL;
    [
        ("lto+defenses", PibeConfig::builder().defenses(d).build()),
        (
            "pibe@99",
            PibeConfig::builder()
                .icp(Budget::P99)
                .inliner(Budget::P99)
                .defenses(d)
                .build(),
        ),
        (
            "pibe@99.9",
            PibeConfig::builder()
                .icp(Budget::P99_9)
                .inliner(Budget::P99_9)
                .defenses(d)
                .build(),
        ),
        (
            "pibe@99.999",
            PibeConfig::builder()
                .icp(Budget::P99_999)
                .inliner(Budget::P99_999)
                .defenses(d)
                .build(),
        ),
        ("pibe-lax", PibeConfig::builder().lax().defenses(d).build()),
    ]
}

/// Overhead-vs-budget curves for every backend from one invocation: rows
/// are optimization rungs, columns are architectures, cells are geomean
/// LMBench overhead (%) under `DefenseSet::ALL` vs the shared LTO
/// baseline.
pub fn cross_arch(lab: &Lab) -> (Table, Vec<CrossArchPoint>) {
    let arches = arch_columns();
    let ladder = budget_ladder();

    let mut headers: Vec<&str> = vec!["configuration"];
    headers.extend(arches.iter().map(|a| a.name()));
    let mut table = Table::new(
        "Cross-arch: comprehensive-defense overhead vs optimization budget, per backend",
        &headers,
    );

    let all_configs: Vec<PibeConfig> = ladder
        .iter()
        .flat_map(|(_, c)| arches.iter().map(move |a| c.with_arch(*a)))
        .collect();
    lab.prefetch(&all_configs);

    let mut points = Vec::new();
    for (rung, config) in &ladder {
        let mut cells = vec![rung.to_string()];
        for arch in arches {
            let image = lab.image_for_arch(config, arch);
            let rows = lab.latencies(&image);
            let overhead = lab.geomean(&rows);
            let backend = arch.backend();
            let cycles_elided = image
                .icp_stats
                .iter()
                .map(|s| s.estimated_cycles_elided(backend, config.defenses))
                .chain(
                    image
                        .inline_stats
                        .iter()
                        .map(|s| s.estimated_cycles_elided(backend, config.defenses)),
                )
                .sum();
            cells.push(pct(overhead));
            points.push(CrossArchPoint {
                rung: rung.to_string(),
                arch: arch.name().to_string(),
                overhead_pct: overhead,
                cycles_elided,
            });
        }
        table.row(cells);
    }
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(points: &'a [CrossArchPoint], rung: &str, arch: &str) -> &'a CrossArchPoint {
        points
            .iter()
            .find(|p| p.rung == rung && p.arch == arch)
            .unwrap_or_else(|| panic!("missing cell {rung}/{arch}"))
    }

    #[test]
    fn curves_rank_architectures_and_budgets_as_the_cost_models_predict() {
        let lab = Lab::test();
        let (_, points) = cross_arch(&lab);
        assert_eq!(points.len(), 5 * 4, "5 rungs x 4 arch columns");

        // Unoptimized: the retpoline family dwarfs hardware CFI, and the
        // NOP variant costs nothing at all.
        let x86 = cell(&points, "lto+defenses", "x86_64");
        let arm = cell(&points, "lto+defenses", "arm64");
        let riscv = cell(&points, "lto+defenses", "riscv64");
        let nop = cell(&points, "lto+defenses", "riscv64-nop");
        assert!(
            arm.overhead_pct < x86.overhead_pct / 2.0,
            "{arm:?} vs {x86:?}"
        );
        assert!(riscv.overhead_pct < x86.overhead_pct / 2.0);
        assert!(nop.overhead_pct.abs() < 1.0, "NOP variant is free: {nop:?}");

        // Budget monotonicity on x86: each rung of profile budget cuts
        // overhead further.
        let ladder = [
            "lto+defenses",
            "pibe@99",
            "pibe@99.9",
            "pibe@99.999",
            "pibe-lax",
        ];
        for pair in ladder.windows(2) {
            let (hi, lo) = (
                cell(&points, pair[0], "x86_64"),
                cell(&points, pair[1], "x86_64"),
            );
            assert!(
                lo.overhead_pct <= hi.overhead_pct + 1e-9,
                "x86 curve must fall: {} {:.2}% -> {} {:.2}%",
                hi.rung,
                hi.overhead_pct,
                lo.rung,
                lo.overhead_pct
            );
        }

        // The elided-cycles figure of merit scales with the backend cost
        // model: the same transformed weight elides far fewer cycles when
        // the residual defense is 1-cycle BTI than 41-cycle retpolines.
        let x86_lax = cell(&points, "pibe-lax", "x86_64");
        let arm_lax = cell(&points, "pibe-lax", "arm64");
        let nop_lax = cell(&points, "pibe-lax", "riscv64-nop");
        assert!(x86_lax.cycles_elided > 0);
        assert!(arm_lax.cycles_elided * 2 < x86_lax.cycles_elided);
        assert_eq!(
            nop_lax.cycles_elided, 0,
            "nothing to elide on the NOP variant"
        );
        assert_eq!(cell(&points, "lto+defenses", "x86_64").cycles_elided, 0);
    }
}
