//! Security and size tables: Table 4 (target multiplicity), Tables 8–10
//! (gadget elimination statistics), Table 11 (residual attack surface),
//! Table 12 (image size and memory).

use super::Lab;
use crate::config::PibeConfig;
use crate::report::{pct, Table};
use pibe_harden::DefenseSet;
use pibe_profile::Budget;

/// The budget sweep shared by Tables 8–12.
pub(crate) fn budget_sweep() -> [(&'static str, Budget); 3] {
    [
        ("99%", Budget::P99),
        ("99.9%", Budget::P99_9),
        ("99.9999%", Budget::P99_9999),
    ]
}

/// The full-optimization configuration per sweep budget, prefetched as a
/// batch so the farm builds them in parallel.
fn sweep_configs() -> Vec<PibeConfig> {
    budget_sweep()
        .iter()
        .map(|(_, b)| {
            PibeConfig::builder()
                .icp(*b)
                .inliner(*b)
                .defenses(DefenseSet::ALL)
                .build()
        })
        .collect()
}

/// Table 4: distribution of profiled indirect call sites by number of
/// observed targets.
pub fn table4(lab: &Lab) -> Table {
    let hist = lab.profile.target_multiplicity_histogram();
    let mut t = Table::new(
        "Table 4: indirect calls by number of targets they invoke",
        &["Targets", "1", "2", "3", "4", "5", "6", ">6"],
    );
    let mut row = vec!["Indirect Calls".to_string()];
    row.extend(hist.iter().map(|c| c.to_string()));
    t.row(row);
    t
}

/// Table 8: gadgets eliminated per budget — promoted weight/sites/targets
/// (forward edges) and inlined weight/sites (backward edges), with
/// percentages of the candidate populations.
pub fn table8(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Table 8: indirect branch gadgets eliminated by PIBE",
        &[
            "budget",
            "icall weight",
            "call sites",
            "call targets",
            "return weight",
            "return sites",
        ],
    );
    lab.prefetch(&sweep_configs());
    for (name, budget) in budget_sweep() {
        let img = lab.image(
            &PibeConfig::builder()
                .icp(budget)
                .inliner(budget)
                .defenses(DefenseSet::ALL)
                .build(),
        );
        let icp = img.icp_stats.clone().expect("icp ran");
        let inl = img.inline_stats.expect("inliner ran");
        let pc = |num: u64, den: u64| {
            if den == 0 {
                "-".to_string()
            } else {
                pct(num as f64 / den as f64 * 100.0)
            }
        };
        t.row(vec![
            name.into(),
            format!(
                "{} ({})",
                icp.promoted_weight,
                pc(icp.promoted_weight, icp.total_weight)
            ),
            format!(
                "{} ({})",
                icp.promoted_sites,
                pc(icp.promoted_sites, icp.total_sites)
            ),
            format!(
                "{} ({})",
                icp.promoted_targets,
                pc(icp.promoted_targets, icp.total_targets)
            ),
            format!(
                "{} ({})",
                inl.inlined_weight,
                pc(inl.inlined_weight, inl.total_weight)
            ),
            format!(
                "{} ({})",
                inl.inlined_sites,
                pc(inl.inlined_sites, inl.profiled_sites)
            ),
        ]);
    }
    t
}

/// Table 9: inlining weight *not* elided, split by inhibitor — Rule 2
/// (caller complexity), Rule 3 (callee complexity), and other reasons
/// (`optnone`/`noinline`/recursion).
pub fn table9(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Table 9: weight not elided due to size heuristics or other reasons",
        &["budget", "Ovr.", "Rule 2", "Rule 3", "other"],
    );
    lab.prefetch(&sweep_configs());
    for (name, budget) in budget_sweep() {
        let img = lab.image(
            &PibeConfig::builder()
                .icp(budget)
                .inliner(budget)
                .defenses(DefenseSet::ALL)
                .build(),
        );
        let s = img.inline_stats.expect("inliner ran");
        let pc = |w: u64| {
            if s.total_weight == 0 {
                "-".to_string()
            } else {
                pct(w as f64 / s.total_weight as f64 * 100.0)
            }
        };
        t.row(vec![
            name.into(),
            s.total_weight.to_string(),
            format!(
                "{} ({})",
                s.blocked_rule2_weight,
                pc(s.blocked_rule2_weight)
            ),
            format!(
                "{} ({})",
                s.blocked_rule3_weight,
                pc(s.blocked_rule3_weight)
            ),
            format!(
                "{} ({})",
                s.blocked_other_weight,
                pc(s.blocked_other_weight)
            ),
        ]);
    }
    t
}

/// Table 10: how small a fraction of the kernel's static indirect branches
/// the algorithms actually touch.
pub fn table10(lab: &Lab) -> Table {
    let census = lab.kernel.module.census();
    let mut t = Table::new(
        "Table 10: optimization candidates relative to all kernel indirect branches",
        &[
            "statistic",
            "icp 99%",
            "icp 99.9%",
            "icp 99.9999%",
            "inl 99%",
            "inl 99.9%",
            "inl 99.9999%",
        ],
    );
    let mut branches = vec!["Ind. Branches".to_string()];
    let mut candidates = vec!["Candidates".to_string()];
    let mut icp_cands = Vec::new();
    let mut inl_cands = Vec::new();
    lab.prefetch(&sweep_configs());
    for (_, budget) in budget_sweep() {
        let img = lab.image(
            &PibeConfig::builder()
                .icp(budget)
                .inliner(budget)
                .defenses(DefenseSet::ALL)
                .build(),
        );
        icp_cands.push(img.icp_stats.as_ref().expect("icp ran").candidate_targets);
        inl_cands.push(img.inline_stats.expect("inliner ran").candidate_sites);
    }
    for _ in 0..3 {
        branches.push(census.indirect_calls.to_string());
    }
    for _ in 0..3 {
        branches.push(census.returns.to_string());
    }
    for c in icp_cands {
        candidates.push(pct(c as f64 / census.indirect_calls as f64 * 100.0));
    }
    for c in inl_cands {
        candidates.push(pct(c as f64 / census.returns as f64 * 100.0));
    }
    t.row(branches);
    t.row(candidates);
    t
}

/// Table 11: forward edges protected/vulnerable under full mitigation, per
/// budget — protected icalls grow with inlining duplication, and so do the
/// unhardenable paravirt sites.
pub fn table11(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Table 11: forward edges vulnerable/protected against transient attacks",
        &[
            "statistic",
            "no optimization",
            "99% budget",
            "99.9% budget",
            "99.9999% budget",
        ],
    );
    let mut configs = vec![PibeConfig::builder().defenses(DefenseSet::ALL).build()];
    configs.extend(sweep_configs());
    lab.prefetch(&configs);
    let mut audits = vec![
        lab.image(&PibeConfig::builder().defenses(DefenseSet::ALL).build())
            .audit,
    ];
    for (_, budget) in budget_sweep() {
        audits.push(
            lab.image(
                &PibeConfig::builder()
                    .icp(budget)
                    .inliner(budget)
                    .defenses(DefenseSet::ALL)
                    .build(),
            )
            .audit,
        );
    }
    type AuditField = dyn Fn(&pibe_harden::SecurityAudit) -> u64;
    let row = |name: &str, f: &AuditField| {
        let mut r = vec![name.to_string()];
        r.extend(audits.iter().map(|a| f(a).to_string()));
        r
    };
    t.row(row("Def. ICalls", &|a| a.protected_icalls));
    t.row(row("Vuln. ICalls", &|a| a.vulnerable_icalls));
    t.row(row("Vuln. IJumps", &|a| a.vulnerable_ijumps));
    t
}

/// Table 12: image size and memory growth per configuration and budget.
/// "abs size" compares against the undefended LTO image; "img size"
/// against the unoptimized image with the same defenses; "mem size" counts
/// 2 MiB text pages.
pub fn table12(lab: &Lab) -> Table {
    let mut t = Table::new(
        "Table 12: increase in size and memory usage due to the algorithms",
        &["config", "budget", "abs size", "img size", "mem size"],
    );
    type BudgetList = Vec<(&'static str, Budget)>;
    let sweep: [(&str, DefenseSet, BudgetList); 4] = [
        ("w/all-defenses", DefenseSet::ALL, budget_sweep().to_vec()),
        (
            "w/retpolines",
            DefenseSet::RETPOLINES,
            vec![("99.999%", Budget::P99_999)],
        ),
        (
            "w/LVI-CFI",
            DefenseSet::LVI_CFI,
            vec![("99%", Budget::P99), ("99.9999%", Budget::P99_9999)],
        ),
        (
            "w/ret-retpolines",
            DefenseSet::RET_RETPOLINES,
            vec![("99%", Budget::P99), ("99.9999%", Budget::P99_9999)],
        ),
    ];
    // Gather the whole table's configurations up front so the farm builds
    // them in one parallel batch.
    let mut configs = vec![PibeConfig::builder().build()];
    for (_, d, budgets) in &sweep {
        configs.push(PibeConfig::builder().defenses(*d).build());
        for (_, budget) in budgets {
            configs.push(if *d == DefenseSet::RETPOLINES {
                PibeConfig::builder().icp(*budget).defenses(*d).build()
            } else {
                PibeConfig::builder()
                    .icp(*budget)
                    .inliner(*budget)
                    .defenses(*d)
                    .build()
            });
        }
    }
    lab.prefetch(&configs);
    let lto_plain = lab.image(&PibeConfig::builder().build());
    for (name, d, budgets) in sweep {
        let unopt = lab.image(&PibeConfig::builder().defenses(d).build());
        for (bname, budget) in budgets {
            let img = if d == DefenseSet::RETPOLINES {
                lab.image(&PibeConfig::builder().icp(budget).defenses(d).build())
            } else {
                lab.image(
                    &PibeConfig::builder()
                        .icp(budget)
                        .inliner(budget)
                        .defenses(d)
                        .build(),
                )
            };
            let grow = |n: u64, base: u64| (n as f64 - base as f64) / base as f64 * 100.0;
            t.row(vec![
                name.into(),
                bname.into(),
                pct(grow(img.size.bytes, lto_plain.size.bytes)),
                pct(grow(img.size.bytes, unopt.size.bytes)),
                pct(grow(
                    img.size.mem_pages_2m.max(1),
                    unopt.size.mem_pages_2m.max(1),
                )),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_histogram_is_populated() {
        let lab = Lab::test();
        let t = table4(&lab);
        let total: u64 = t.rows[0][1..]
            .iter()
            .map(|c| c.parse::<u64>().unwrap())
            .sum();
        assert!(total > 0, "profiled indirect sites exist");
    }

    #[test]
    fn table8_elision_grows_with_budget() {
        let lab = Lab::test();
        let t = table8(&lab);
        let sites = |row: usize| {
            t.rows[row][2]
                .split(' ')
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap()
        };
        assert!(
            sites(2) >= sites(0),
            "higher budget promotes at least as many sites"
        );
    }

    #[test]
    fn table11_has_constant_ijumps_and_growing_vuln_icalls() {
        let lab = Lab::test();
        // The constant-5 vulnerable-ijump count is a consequence of x86
        // retpolines lowering every non-asm jump table; the ARM/RISC-V
        // backends keep tables (BTI pads / lpads protect them), so their
        // audit classifies ijumps differently.
        if lab.arch != pibe_harden::Arch::X86 {
            return;
        }
        let t = table11(&lab);
        let vuln_ijumps: Vec<u64> = t.rows[2][1..].iter().map(|c| c.parse().unwrap()).collect();
        assert!(vuln_ijumps.iter().all(|v| *v == 5), "{vuln_ijumps:?}");
        let vuln_icalls: Vec<u64> = t.rows[1][1..].iter().map(|c| c.parse().unwrap()).collect();
        assert!(
            vuln_icalls.last().unwrap() >= vuln_icalls.first().unwrap(),
            "inlining duplicates paravirt gadgets: {vuln_icalls:?}"
        );
    }

    #[test]
    fn table12_sizes_grow_with_budget() {
        let lab = Lab::test();
        let t = table12(&lab);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let abs_99 = parse(&t.rows[0][2]);
        let abs_max = parse(&t.rows[2][2]);
        assert!(abs_max >= abs_99, "size grows with budget");
        assert!(abs_99 > 0.0, "defenses + optimization add bytes");
    }
}
