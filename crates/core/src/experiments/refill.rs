//! The §6.4 backward-edge debate, quantified: RSB refilling vs return
//! retpolines.
//!
//! The kernel's stock answer to Ret2spec is ad-hoc RSB stuffing on context
//! switches. The paper argues (§6.4) that refilling (a) costs cycles on
//! every kernel entry, (b) "limits the attack surface, defending against
//! known userspace-to-kernel RSB attacks", but (c) "other RSB exploitation
//! scenarios are still possible under RSB refilling", whereas return
//! retpolines close them all — and, after PIBE's inlining, cost almost
//! nothing. This experiment measures all three claims on the same kernel.

use super::Lab;
use crate::config::PibeConfig;
use crate::eval;
use crate::report::{pct, Table};
use pibe_harden::DefenseSet;
use pibe_sim::SimConfig;
use serde::{Deserialize, Serialize};

/// Measured outcome of one backward-edge posture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackwardEdgePosture {
    /// Geomean LMBench overhead vs the LTO baseline.
    pub overhead_pct: f64,
    /// Dynamic return executions an RSB-poisoning attacker could hijack.
    pub hijackable_rets: u64,
}

/// Compares backward-edge postures: nothing, RSB refilling, return
/// retpolines (unoptimized), and return retpolines + PIBE.
pub fn rsb_refill_comparison(lab: &Lab) -> (Table, Vec<BackwardEdgePosture>) {
    let mut table = Table::new(
        "RSB refilling vs return retpolines (6.4): cost and residual Ret2spec surface",
        &["posture", "LMBench overhead", "hijackable returns"],
    );
    let mut out = Vec::new();

    let mut measure = |name: &str, image: &crate::Image, cfg: SimConfig| {
        let rows = lab.latencies_with(image, cfg);
        let overhead = lab.geomean(&rows);
        let attacks = eval::lmbench_attack_surface(
            &image.module,
            &lab.kernel,
            &lab.workload,
            &lab.suite,
            cfg,
            lab.seed,
        );
        table.row(vec![
            name.to_string(),
            pct(overhead),
            attacks.rsb_hijackable_rets.to_string(),
        ]);
        out.push(BackwardEdgePosture {
            overhead_pct: overhead,
            hijackable_rets: attacks.rsb_hijackable_rets,
        });
    };

    lab.prefetch(&[
        PibeConfig::builder().build(),
        PibeConfig::builder()
            .defenses(DefenseSet::RET_RETPOLINES)
            .build(),
        PibeConfig::builder()
            .lax()
            .defenses(DefenseSet::RET_RETPOLINES)
            .build(),
    ]);
    let lto = lab.image(&PibeConfig::builder().build());
    measure("no backward-edge defense", &lto, SimConfig::default());
    measure(
        "RSB refilling",
        &lto,
        SimConfig {
            rsb_refill: true,
            ..SimConfig::default()
        },
    );
    let rr = lab.image(
        &PibeConfig::builder()
            .defenses(DefenseSet::RET_RETPOLINES)
            .build(),
    );
    measure(
        "return retpolines (unoptimized)",
        &rr,
        SimConfig {
            defenses: DefenseSet::RET_RETPOLINES,
            ..SimConfig::default()
        },
    );
    let rr_pibe = lab.image(
        &PibeConfig::builder()
            .lax()
            .defenses(DefenseSet::RET_RETPOLINES)
            .build(),
    );
    measure(
        "return retpolines + PIBE",
        &rr_pibe,
        SimConfig {
            defenses: DefenseSet::RET_RETPOLINES,
            ..SimConfig::default()
        },
    );
    (table, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refilling_is_cheap_but_leaky_and_pibe_ret_retpolines_win() {
        let lab = Lab::test();
        let (_, postures) = rsb_refill_comparison(&lab);
        let [none, refill, rr, rr_pibe] = postures[..] else {
            panic!("four postures expected");
        };
        // Refilling reduces — but does not eliminate — the Ret2spec surface.
        assert!(refill.hijackable_rets < none.hijackable_rets / 2);
        assert!(
            refill.hijackable_rets > 0,
            "deep chains still overflow the RSB under refilling"
        );
        // Return retpolines close the surface entirely...
        assert_eq!(rr.hijackable_rets, 0);
        assert_eq!(rr_pibe.hijackable_rets, 0);
        // ...and cost far less once PIBE elides the hot returns.
        assert!(rr_pibe.overhead_pct < rr.overhead_pct / 2.0);
        // Refilling is not free either.
        assert!(refill.overhead_pct > none.overhead_pct);
    }
}
