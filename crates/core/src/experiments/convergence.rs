//! Profiling convergence: how many profiling rounds are enough?
//!
//! The paper aggregates 11 LMBench iterations "to obtain an exact profiling
//! workload" (§8). This experiment measures what those extra rounds buy:
//! the optimization-candidate overlap between an n-round profile and the
//! lab's full reference profile, at the 99.9% budget. Hot candidates
//! stabilise almost immediately (they dominate every round); the tail —
//! rarely-taken hooks, low-weight targets — is what the extra rounds
//! gradually pick up.

use super::{ExperimentError, Lab};
use crate::report::{pct, Table};
use pibe_kernel::measure::collect_profile;
use pibe_profile::{overlap, Budget};
use serde::{Deserialize, Serialize};

/// Overlap of an n-round profile's candidates with the reference profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Profiling rounds aggregated.
    pub rounds: u32,
    /// ICP candidate-weight overlap with the reference (%).
    pub icp_shared_pct: f64,
    /// Inlining candidate-weight overlap with the reference (%).
    pub inline_shared_pct: f64,
}

/// Measures candidate overlap for 1, 2, 4, and 8 aggregated rounds against
/// the lab's reference profile.
///
/// # Errors
/// [`ExperimentError::Profiling`] naming the round count and seed when one
/// of the re-profiling runs fails.
pub fn profiling_convergence(lab: &Lab) -> Result<(Table, Vec<ConvergencePoint>), ExperimentError> {
    let mut table = Table::new(
        "Profiling convergence: candidate overlap with the reference profile (99.9% budget)",
        &[
            "rounds",
            "icp candidates shared",
            "inline candidates shared",
        ],
    );
    let mut out = Vec::new();
    for rounds in [1u32, 2, 4, 8] {
        let p = collect_profile(&lab.kernel, &lab.workload, &lab.suite, rounds, lab.seed).map_err(
            |source| ExperimentError::Profiling {
                workload: format!("{} ({rounds} rounds)", lab.workload.name),
                seed: lab.seed,
                source,
            },
        )?;
        let ov = overlap::overlap(&lab.profile, &p, Budget::P99_9);
        let point = ConvergencePoint {
            rounds,
            icp_shared_pct: ov.icp_shared_weight * 100.0,
            inline_shared_pct: ov.inline_shared_weight * 100.0,
        };
        table.row(vec![
            rounds.to_string(),
            pct(point.icp_shared_pct),
            pct(point.inline_shared_pct),
        ]);
        out.push(point);
    }
    Ok((table, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_round_already_captures_most_hot_weight() {
        let lab = Lab::test();
        let (_, points) = profiling_convergence(&lab).expect("convergence experiment runs");
        assert_eq!(points.len(), 4);
        // Even a single round covers the bulk of the candidate weight —
        // hot sites dominate every round.
        assert!(
            points[0].inline_shared_pct > 60.0,
            "round 1 inline overlap: {:.1}%",
            points[0].inline_shared_pct
        );
        // More rounds never lose ground dramatically (hot sets are stable).
        let last = points.last().unwrap();
        assert!(last.icp_shared_pct >= points[0].icp_shared_pct - 5.0);
        assert!(last.inline_shared_pct > 75.0);
    }
}
