//! Cycle attribution: *where* each configuration's time goes.
//!
//! The paper explains its numbers in terms of three cost channels — the
//! defense sequences themselves (Table 1), prediction effects (BTB/RSB),
//! and locality effects of code growth (§5.2's motivation for Rules 2–3).
//! The simulator attributes every cycle to one of those channels, so this
//! experiment can show the decomposition directly: unoptimized hardened
//! kernels drown in instrumentation cycles; PIBE trades a sliver of
//! locality for their removal.

use super::{ExperimentError, Lab};
use crate::config::PibeConfig;
use crate::report::{pct, Table};
use pibe_harden::DefenseSet;
use pibe_kernel::measure::run_latency;
use pibe_sim::{ExecStats, SimConfig};
use serde::{Deserialize, Serialize};

/// Cycle shares of one configuration, summed over the LMBench suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Total simulated cycles.
    pub total: u64,
    /// Base compute + predicted control flow.
    pub base: u64,
    /// Defense instrumentation (thunks, fences, promotion guards).
    pub defense: u64,
    /// BTB/RSB misprediction penalties.
    pub prediction: u64,
    /// Instruction-cache miss penalties.
    pub locality: u64,
}

impl CycleBreakdown {
    fn of(stats: &ExecStats) -> Self {
        CycleBreakdown {
            total: stats.cycles,
            base: stats.cycles_base(),
            defense: stats.cycles_defense,
            prediction: stats.cycles_prediction,
            locality: stats.cycles_locality,
        }
    }
}

fn suite_breakdown(lab: &Lab, image: &crate::Image) -> Result<CycleBreakdown, ExperimentError> {
    let cfg = SimConfig {
        defenses: image.config.defenses,
        ..SimConfig::default()
    };
    let mut total = ExecStats::default();
    for bench in &lab.suite {
        let (_, stats, _) = run_latency(
            &image.module,
            &lab.kernel,
            &lab.workload,
            *bench,
            cfg,
            lab.seed,
        )
        .map_err(|source| ExperimentError::Benchmark {
            benchmark: bench.syscall.name().to_string(),
            seed: lab.seed,
            source,
        })?;
        total.cycles += stats.cycles;
        total.cycles_defense += stats.cycles_defense;
        total.cycles_prediction += stats.cycles_prediction;
        total.cycles_locality += stats.cycles_locality;
    }
    Ok(CycleBreakdown::of(&total))
}

/// Decomposes the LMBench cycle total of four configurations into the three
/// cost channels plus base compute.
///
/// # Errors
/// [`ExperimentError::Benchmark`] naming the benchmark and seed when a
/// measurement fails.
pub fn cycle_breakdown(lab: &Lab) -> Result<(Table, Vec<CycleBreakdown>), ExperimentError> {
    let configs: [(&str, PibeConfig); 4] = [
        ("LTO baseline", PibeConfig::builder().build()),
        (
            "LTO w/all-defenses",
            PibeConfig::builder().defenses(DefenseSet::ALL).build(),
        ),
        (
            "PIBE baseline (no defenses)",
            PibeConfig::builder().lax().build(),
        ),
        (
            "PIBE w/all-defenses",
            PibeConfig::builder()
                .lax()
                .defenses(DefenseSet::ALL)
                .build(),
        ),
    ];
    let mut table = Table::new(
        "Cycle attribution across the LMBench suite",
        &["configuration", "base", "defense", "prediction", "locality"],
    );
    let mut out = Vec::new();
    lab.prefetch(&configs.map(|(_, c)| c));
    for (name, config) in configs {
        let image = lab.image(&config);
        let b = suite_breakdown(lab, &image)?;
        let share = |part: u64| pct(part as f64 / b.total as f64 * 100.0);
        table.row(vec![
            name.to_string(),
            share(b.base),
            share(b.defense),
            share(b.prediction),
            share(b.locality),
        ]);
        out.push(b);
    }
    Ok((table, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_explains_the_headline_numbers() {
        let lab = Lab::test();
        let (_, rows) = cycle_breakdown(&lab).expect("breakdown experiment runs");
        let [lto, lto_all, pibe_base, pibe_all] = rows[..] else {
            panic!("four configurations expected");
        };
        // The undefended baselines spend nothing on defenses.
        assert_eq!(lto.defense, 0);
        // The unoptimized hardened kernel's overhead is dominated by
        // instrumentation cycles...
        assert!(lto_all.defense * 3 > lto.total, "defenses dominate");
        // ...which PIBE mostly removes.
        assert!(
            pibe_all.defense < lto_all.defense / 5,
            "PIBE removes most instrumentation cycles ({} vs {})",
            pibe_all.defense,
            lto_all.defense
        );
        // Base compute is conserved across hardening of the SAME image
        // (instrumentation is additive).
        assert!(
            (lto.base as f64 - lto_all.base as f64).abs() / lto.base as f64 <= 0.12,
            "base compute is nearly invariant under hardening: {} vs {}",
            lto.base,
            lto_all.base
        );
        // PIBE's optimization reduces even the base cycles (that is the
        // Table 2 speedup).
        assert!(pibe_base.base < lto.base);
    }
}
