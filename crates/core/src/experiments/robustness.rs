//! The workload-robustness experiment of §8.4.
//!
//! Three questions, answered against the same LMBench evaluation suite:
//!
//! 1. How much candidate weight do the LMBench and Apache workloads share
//!    at the reference budget? (paper: 58% ICP / 67% inlining at 99%)
//! 2. How well does a kernel *trained on Apache* perform under LMBench
//!    with comprehensive defenses? (paper: 22.5%, vs 10.6% matched and
//!    149.1% unoptimized)
//! 3. Does the win come from the workload or from PIBE's ordering? The
//!    default-LLVM-style inliner with the *matched* profile still lands at
//!    100.2% in the paper.

use super::{ExperimentError, Lab};
use crate::config::PibeConfig;
use crate::eval;
use crate::report::{pct, Table};
use pibe_baselines::{run_llvm_inliner, LlvmInlinerConfig};
use pibe_harden::DefenseSet;
use pibe_kernel::measure::collect_macro_profile;
use pibe_kernel::workloads::{MacroBench, WorkloadSpec};
use pibe_profile::{overlap, Budget};
use serde::{Deserialize, Serialize};

/// The measured robustness numbers (also rendered by [`robustness`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustnessSummary {
    /// ICP candidate weight shared between the workloads at 99%.
    pub icp_shared_pct: f64,
    /// Inlining candidate weight shared at 99%.
    pub inline_shared_pct: f64,
    /// Geomean LMBench overhead of the Apache-trained, fully-defended
    /// kernel.
    pub apache_trained_pct: f64,
    /// Geomean overhead of the matched (LMBench-trained) kernel.
    pub matched_pct: f64,
    /// Geomean overhead with no optimization at all.
    pub unoptimized_pct: f64,
    /// Geomean overhead using the default-LLVM-style inliner with the
    /// matched profile (plus PIBE's ICP, as in §8.4's comparison).
    pub llvm_inliner_pct: f64,
}

/// Runs the robustness experiment; `requests` sizes the Apache profiling
/// workload.
///
/// # Errors
/// [`ExperimentError::Profiling`] if the Apache profiling run fails;
/// [`ExperimentError::Build`] if the Apache-trained image fails to build.
pub fn robustness(lab: &Lab, requests: u32) -> Result<(Table, RobustnessSummary), ExperimentError> {
    // Apache profiling workload (ApacheBench in the paper).
    let apache_wl = WorkloadSpec::apache();
    let apache_seed = lab.seed ^ 0xA9;
    let apache_profile = collect_macro_profile(
        &lab.kernel,
        &apache_wl,
        &MacroBench::apache(requests),
        2,
        apache_seed,
    )
    .map_err(|source| ExperimentError::Profiling {
        workload: apache_wl.name.clone(),
        seed: apache_seed,
        source,
    })?;

    // 1. Candidate overlap at the 99% reference budget.
    let ov = overlap::overlap(&lab.profile, &apache_profile, Budget::P99);

    // 2. Apache-trained kernel, comprehensive defenses, LMBench eval. The
    // image is trained on a different profile than the lab's, so it is
    // built directly rather than through the farm.
    let apache_img = crate::Image::builder(&lab.kernel.module)
        .profile(&apache_profile)
        .config(
            PibeConfig::builder()
                .lax()
                .defenses(DefenseSet::ALL)
                .build(),
        )
        .build()?;
    let apache_rows = lab.latencies(&apache_img);
    let apache_trained_pct = lab.geomean(&apache_rows);

    lab.prefetch(&[
        PibeConfig::builder()
            .lax()
            .defenses(DefenseSet::ALL)
            .build(),
        PibeConfig::builder().defenses(DefenseSet::ALL).build(),
    ]);
    let (matched_pct, _) = lab.run_config(
        &PibeConfig::builder()
            .lax()
            .defenses(DefenseSet::ALL)
            .build(),
    );
    let (unoptimized_pct, _) =
        lab.run_config(&PibeConfig::builder().defenses(DefenseSet::ALL).build());

    // 3. The stock pipeline with the matched profile: LLVM's default
    // (weight-blind, bottom-up) inliner and no aggressive promotion —
    // indirect calls all stay behind the fenced retpoline, and the inliner
    // can only remove the returns of small direct callees. This is the
    // configuration the paper measures at 100.2% (§8.4).
    let llvm_inliner_pct = {
        let mut module = lab.kernel.module.clone();
        let weights = pibe_passes::SiteWeights::from_profile(&lab.profile);
        run_llvm_inliner(&mut module, &weights, &LlvmInlinerConfig::default());
        pibe_harden::apply(&mut module, DefenseSet::ALL);
        let rows = eval::lmbench_latencies(
            &module,
            &lab.kernel,
            &lab.workload,
            &lab.suite,
            pibe_sim::SimConfig {
                defenses: DefenseSet::ALL,
                ..pibe_sim::SimConfig::default()
            },
            lab.seed,
        );
        lab.geomean(&rows)
    };

    let summary = RobustnessSummary {
        icp_shared_pct: ov.icp_shared_weight * 100.0,
        inline_shared_pct: ov.inline_shared_weight * 100.0,
        apache_trained_pct,
        matched_pct,
        unoptimized_pct,
        llvm_inliner_pct,
    };

    let mut t = Table::new(
        "Robustness to workload profiles (8.4): LMBench geomean overhead, all defenses",
        &["measurement", "value"],
    );
    t.row(vec![
        "ICP candidate weight shared (99% budget)".into(),
        pct(summary.icp_shared_pct),
    ]);
    t.row(vec![
        "inline candidate weight shared (99% budget)".into(),
        pct(summary.inline_shared_pct),
    ]);
    t.row(vec![
        "unoptimized, all defenses".into(),
        pct(summary.unoptimized_pct),
    ]);
    t.row(vec![
        "Apache-trained PIBE, all defenses".into(),
        pct(summary.apache_trained_pct),
    ]);
    t.row(vec![
        "LMBench-trained PIBE, all defenses".into(),
        pct(summary.matched_pct),
    ]);
    t.row(vec![
        "default LLVM inliner, matched profile".into(),
        pct(summary.llvm_inliner_pct),
    ]);
    Ok((t, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robustness_ordering_matches_the_paper() {
        let lab = Lab::test();
        let (_, s) = robustness(&lab, 20).expect("robustness experiment runs");
        assert!(
            s.matched_pct <= s.apache_trained_pct,
            "matched profile wins ({} vs {})",
            s.matched_pct,
            s.apache_trained_pct
        );
        assert!(
            s.apache_trained_pct < s.unoptimized_pct,
            "mismatched profile still beats no optimization ({} vs {})",
            s.apache_trained_pct,
            s.unoptimized_pct
        );
        assert!(
            s.matched_pct < s.llvm_inliner_pct,
            "PIBE's ordering beats the default inliner ({} vs {})",
            s.matched_pct,
            s.llvm_inliner_pct
        );
        assert!(s.icp_shared_pct > 0.0 && s.icp_shared_pct <= 100.0);
        assert!(s.inline_shared_pct > 0.0);
    }
}
