//! Plain-text table rendering for experiment reports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rendered experiment table: a title, column headers, and string rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Table 5: overhead with all defenses enabled"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have as many cells as there are headers.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers in '{}'",
            self.title
        );
        self.rows.push(cells);
        self
    }
}

/// Formats a percentage the way the paper prints them (`-6.6%`, `149.1%`).
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats a latency in microseconds with two decimals (Table 2 style).
pub fn micros(v: f64) -> String {
    format!("{v:.2}")
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let sep: usize = widths.iter().sum::<usize>() + 3 * ncols.saturating_sub(1);
        writeln!(f, "{}", "=".repeat(sep.max(self.title.len())))?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{h:>width$}", width = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(sep.max(self.title.len())))?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Test", "Value"]);
        t.row(vec!["null".into(), "3.4%".into()]);
        t.row(vec!["fork/shell".into(), "-4.0%".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("fork/shell"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and data lines end aligned.
        assert_eq!(lines[2].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let mut t = Table::new("Demo", &["A", "B"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatting_helpers_match_paper_style() {
        assert_eq!(pct(-6.64), "-6.6%");
        assert_eq!(pct(149.12), "149.1%");
        assert_eq!(micros(0.136), "0.14");
    }
}
