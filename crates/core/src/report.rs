//! Plain-text table rendering for experiment reports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a table refused a row. Carries the table title, so a malformed row
/// deep inside an experiment names the table it was destined for instead of
/// aborting a whole farm report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The row's cell count does not match the table's header count.
    RowWidth {
        /// Title of the table that rejected the row.
        table: String,
        /// Number of header columns.
        expected: usize,
        /// Number of cells in the offending row.
        got: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RowWidth {
                table,
                expected,
                got,
            } => write!(
                f,
                "table '{table}': row has {got} cells, headers expect {expected}"
            ),
        }
    }
}

impl std::error::Error for TableError {}

/// A rendered experiment table: a title, column headers, and string rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Table 5: overhead with all defenses enabled"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have as many cells as there are headers.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row, normalizing its width: a short row is padded with
    /// empty cells, a long one truncated. This used to panic on a width
    /// mismatch, which let one malformed row deep inside experiment
    /// rendering abort a whole farm report; use [`Table::try_row`] to
    /// detect the mismatch as a typed error instead.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Appends a row, rejecting a cell-count mismatch with a
    /// [`TableError::RowWidth`] naming this table.
    ///
    /// # Errors
    /// [`TableError::RowWidth`] when the cell count does not match the
    /// header count (the row is not appended).
    pub fn try_row(&mut self, cells: Vec<String>) -> Result<&mut Self, TableError> {
        if cells.len() != self.headers.len() {
            return Err(TableError::RowWidth {
                table: self.title.clone(),
                expected: self.headers.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells);
        Ok(self)
    }
}

/// Formats a percentage the way the paper prints them (`-6.6%`, `149.1%`).
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats a latency in microseconds with two decimals (Table 2 style).
pub fn micros(v: f64) -> String {
    format!("{v:.2}")
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Rendering tolerates ragged rows (the `rows` field is public):
        // extra cells are ignored, missing ones render empty.
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(ncols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let sep: usize = widths.iter().sum::<usize>() + 3 * ncols.saturating_sub(1);
        writeln!(f, "{}", "=".repeat(sep.max(self.title.len())))?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{h:>width$}", width = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(sep.max(self.title.len())))?;
        for row in &self.rows {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:>width$}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Renders a tracer snapshot as the hierarchical span summary table:
/// self/total wall-clock per span path (indented by depth), call counts,
/// and a closing section with the recorded histograms.
pub fn trace_summary(data: &pibe_trace::TraceData) -> Table {
    let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
    let mut t = Table::new(
        "Trace summary: hierarchical span times (wall-clock, all tracks)",
        &["span", "count", "total ms", "self ms", "mean us"],
    );
    for row in data.summary() {
        t.row(vec![
            format!(
                "{:indent$}{}",
                "",
                row.name,
                indent = 2 * row.depth as usize
            ),
            row.count.to_string(),
            ms(row.total_ns),
            ms(row.self_ns),
            format!("{:.1}", row.mean_ns() / 1e3),
        ]);
    }
    for (name, h) in &data.histograms {
        t.row(vec![
            format!("hist {name}"),
            h.count.to_string(),
            format!("min {}", h.min),
            format!("mean {:.1}", h.mean()),
            format!("max {}", h.max),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Test", "Value"]);
        t.row(vec!["null".into(), "3.4%".into()]);
        t.row(vec!["fork/shell".into(), "-4.0%".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("fork/shell"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and data lines end aligned.
        assert_eq!(lines[2].len(), lines[4].len());
    }

    #[test]
    fn mismatched_rows_are_padded_or_truncated() {
        let mut t = Table::new("Demo", &["A", "B"]);
        t.row(vec!["only one".into()]);
        t.row(vec!["a".into(), "b".into(), "extra".into()]);
        assert_eq!(t.rows[0], vec!["only one".to_string(), String::new()]);
        assert_eq!(t.rows[1], vec!["a".to_string(), "b".to_string()]);
        let rendered = t.to_string();
        assert!(rendered.contains("only one"));
        assert!(!rendered.contains("extra"));
    }

    #[test]
    fn try_row_names_the_offending_table() {
        let mut t = Table::new("Table 7: macro-benchmarks", &["A", "B"]);
        let err = t.try_row(vec!["only one".into()]).unwrap_err();
        assert_eq!(
            err,
            TableError::RowWidth {
                table: "Table 7: macro-benchmarks".into(),
                expected: 2,
                got: 1
            }
        );
        assert!(err.to_string().contains("Table 7: macro-benchmarks"));
        assert!(t.rows.is_empty(), "rejected row is not appended");
        t.try_row(vec!["a".into(), "b".into()]).unwrap();
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn ragged_rows_render_without_panicking() {
        // The rows field is public; rendering must tolerate direct pushes.
        let mut t = Table::new("Demo", &["A", "B"]);
        t.rows.push(vec!["x".into(), "y".into(), "z".into()]);
        t.rows.push(vec!["only".into()]);
        let s = t.to_string();
        assert!(s.contains('x') && s.contains("only"));
        assert!(!s.contains('z'));
    }

    #[test]
    fn trace_summary_renders_spans_and_histograms() {
        let data = pibe_trace::TraceData {
            tracks: vec!["main".into()],
            spans: vec![
                pibe_trace::SpanRecord {
                    track: 0,
                    id: 1,
                    parent: 0,
                    depth: 0,
                    name: "build".into(),
                    start_ns: 0,
                    dur_ns: 2_000_000,
                    args: Vec::new(),
                },
                pibe_trace::SpanRecord {
                    track: 0,
                    id: 2,
                    parent: 1,
                    depth: 1,
                    name: "icp".into(),
                    start_ns: 100,
                    dur_ns: 500_000,
                    args: Vec::new(),
                },
            ],
            histograms: vec![("cost".into(), {
                let mut h = pibe_trace::Histogram::default();
                h.record(12);
                h.record(40);
                h
            })],
            ..Default::default()
        };
        let t = trace_summary(&data);
        let s = t.to_string();
        assert!(s.contains("build"));
        assert!(s.contains("  icp"), "children indent under parents");
        assert!(s.contains("hist cost"));
    }

    #[test]
    fn formatting_helpers_match_paper_style() {
        assert_eq!(pct(-6.64), "-6.6%");
        assert_eq!(pct(149.12), "149.1%");
        assert_eq!(micros(0.136), "0.14");
    }
}
