//! Pipeline configuration: the paper's evaluated build configurations.

use pibe_harden::{Arch, DefenseSet};
use pibe_passes::{IcpConfig, InlinerConfig};
use pibe_profile::Budget;
use serde::{Deserialize, Serialize};

/// How the pipeline treats profile/module inconsistencies (dangling site or
/// function ids, truncated value profiles, saturated counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValidationPolicy {
    /// Refuse to build: the first detected
    /// [`ProfileIssue`](pibe_profile::ProfileIssue) becomes a typed
    /// [`PipelineError::ProfileInvalid`](crate::PipelineError::ProfileInvalid)
    /// naming the faulty entity.
    Strict,
    /// Repair the profile (drop/clamp offending entries) and build with the
    /// repaired copy; the [`ProfileRepair`](pibe_profile::ProfileRepair)
    /// report is attached to the resulting [`Image`](crate::Image). The
    /// default: a stale profile degrades optimization quality, never the
    /// build.
    #[default]
    Repair,
    /// Skip validation *and* the transactional per-stage verification: the
    /// legacy fast path with a single end-of-pipeline verify. A corrupt
    /// profile can panic a pass under this policy — the
    /// [`ImageFarm`](crate::ImageFarm) contains such panics as
    /// [`PipelineError::StagePanicked`](crate::PipelineError::StagePanicked).
    TrustProfile,
}

/// What the pipeline does when a transform stage produces a structurally
/// invalid module (detected by the per-stage verifier; the stage is always
/// rolled back first).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Fail the build with a typed
    /// [`PipelineError::StageFailed`](crate::PipelineError::StageFailed).
    /// The default: a buggy pass should be loud.
    #[default]
    Abort,
    /// Record a [`StageFault`](crate::StageFault) and continue with the
    /// remaining stages. The image degrades (fewer eliminated branches) but
    /// every surviving indirect branch is still defended — only
    /// *optimization* stages (icp, inline) are skippable; a hardening
    /// failure always aborts because skipping it would weaken defenses.
    SkipStage,
}

/// One kernel build configuration: which optimizations run (and at what
/// budget), which defenses harden the result, and how the build reacts to
/// corrupt inputs and failing stages.
///
/// Configurations are `Eq + Hash`: the [`ImageFarm`](crate::ImageFarm)
/// content-keys its build cache on the full configuration, so two requests
/// for the same configuration share one built image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PibeConfig {
    /// Indirect call promotion, if enabled.
    pub icp: Option<IcpConfig>,
    /// The security inliner, if enabled.
    pub inliner: Option<InlinerConfig>,
    /// Dead-function elimination after the optimization passes (the
    /// `--gc-sections` analogue). Roots and address-taken functions are
    /// derived from the call graph and the profile's value profiles, so the
    /// pass trusts the profile to name every dynamically reachable target —
    /// exactly like real DCE trusts relocation/address-taken information.
    pub dce: bool,
    /// Defenses applied to the remaining branches.
    pub defenses: DefenseSet,
    /// The target architecture, selecting the
    /// [`DefenseBackend`](pibe_harden::DefenseBackend) that interprets
    /// `defenses` (cost model, transform semantics, auditor rules). The
    /// default [`Arch::X86`] keeps every pre-existing constant and
    /// serialized configuration meaning exactly what it did before the
    /// field existed.
    pub arch: Arch,
    /// How profile/module inconsistencies are handled.
    pub validation: ValidationPolicy,
    /// How a failing transform stage is handled.
    pub failure: FailurePolicy,
}

impl PibeConfig {
    /// Starts a fluent [`PibeConfigBuilder`] at the LTO baseline (no
    /// optimization, no defenses, default policies, x86). The preferred way
    /// to assemble a configuration; the named constructors below are thin
    /// wrappers kept for the existing call sites.
    pub fn builder() -> PibeConfigBuilder {
        PibeConfigBuilder::default()
    }

    /// The LTO baseline: no profile-guided optimization, no defenses —
    /// "how Linux is typically deployed" (§8.1).
    pub fn lto() -> Self {
        Self::builder().build()
    }

    /// LTO plus defenses, still no optimization (the costly upper rows of
    /// Tables 3 and 5).
    ///
    /// **Deprecated** in favor of
    /// `PibeConfig::builder().defenses(d).build()`; kept as a thin wrapper
    /// for existing call sites.
    pub fn lto_with(defenses: DefenseSet) -> Self {
        Self::builder().defenses(defenses).build()
    }

    /// Indirect call promotion only, at `budget` (Table 3's "+icp"
    /// columns; paired with retpolines in the paper).
    ///
    /// **Deprecated** in favor of
    /// `PibeConfig::builder().icp(budget).defenses(d).build()`; kept as a
    /// thin wrapper for existing call sites.
    pub fn icp_only(budget: Budget, defenses: DefenseSet) -> Self {
        Self::builder().icp(budget).defenses(defenses).build()
    }

    /// Both optimizations at `budget` (Table 5's "+icp +inlining" columns).
    ///
    /// **Deprecated** in favor of
    /// `PibeConfig::builder().icp(budget).inliner(budget).defenses(d).build()`;
    /// kept as a thin wrapper for existing call sites.
    pub fn full(budget: Budget, defenses: DefenseSet) -> Self {
        Self::builder()
            .icp(budget)
            .inliner(budget)
            .defenses(defenses)
            .build()
    }

    /// The paper's optimal configuration (§8.3): budget 99.9999% with the
    /// size heuristics disabled for sites inside the 99% prefix
    /// ("lax heuristics"), reducing the comprehensive defense to 10.6%.
    ///
    /// **Deprecated** in favor of
    /// `PibeConfig::builder().lax().defenses(d).build()`; kept as a thin
    /// wrapper for existing call sites.
    pub fn lax(defenses: DefenseSet) -> Self {
        Self::builder().lax().defenses(defenses).build()
    }

    /// Replaces the validation policy (how profile inconsistencies are
    /// treated).
    pub fn with_validation(mut self, validation: ValidationPolicy) -> Self {
        self.validation = validation;
        self
    }

    /// Replaces the failure policy (how failing stages are treated).
    pub fn with_failure(mut self, failure: FailurePolicy) -> Self {
        self.failure = failure;
        self
    }

    /// Enables (or disables) dead-function elimination after the
    /// optimization passes.
    pub fn with_dce(mut self, dce: bool) -> Self {
        self.dce = dce;
        self
    }

    /// Replaces the target architecture (and thus the defense backend).
    pub fn with_arch(mut self, arch: Arch) -> Self {
        self.arch = arch;
        self
    }

    /// The PIBE performance baseline of Table 2: the best optimization
    /// configuration with *no* defenses ("tuned to give the best possible
    /// performance on the LMBench test suite").
    pub fn pibe_baseline() -> Self {
        Self::builder().lax().build()
    }

    /// Whether any optimization pass runs.
    pub fn optimizes(&self) -> bool {
        self.icp.is_some() || self.inliner.is_some()
    }

    /// The defense backend selected by [`PibeConfig::arch`].
    pub fn backend(&self) -> &'static dyn pibe_harden::DefenseBackend {
        self.arch.backend()
    }
}

/// Fluent builder for [`PibeConfig`], starting from the LTO baseline.
///
/// ```
/// use pibe::PibeConfig;
/// use pibe_harden::{Arch, DefenseSet};
/// use pibe_profile::Budget;
///
/// let c = PibeConfig::builder()
///     .icp(Budget::P99_9)
///     .inliner(Budget::P99_9)
///     .defenses(DefenseSet::ALL)
///     .arch(Arch::Arm64)
///     .build();
/// assert!(c.optimizes());
/// assert_eq!(c.arch, Arch::Arm64);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PibeConfigBuilder {
    config: PibeConfig,
}

impl Default for PibeConfigBuilder {
    fn default() -> Self {
        PibeConfigBuilder {
            config: PibeConfig {
                icp: None,
                inliner: None,
                dce: false,
                defenses: DefenseSet::NONE,
                arch: Arch::X86,
                validation: ValidationPolicy::default(),
                failure: FailurePolicy::default(),
            },
        }
    }
}

impl PibeConfigBuilder {
    /// Enables indirect call promotion at `budget` (default ICP settings).
    pub fn icp(mut self, budget: Budget) -> Self {
        self.config.icp = Some(IcpConfig {
            budget,
            max_targets_per_site: None,
        });
        self
    }

    /// Enables indirect call promotion with an explicit [`IcpConfig`].
    pub fn icp_config(mut self, icp: IcpConfig) -> Self {
        self.config.icp = Some(icp);
        self
    }

    /// Enables the security inliner at `budget` (default heuristics).
    pub fn inliner(mut self, budget: Budget) -> Self {
        self.config.inliner = Some(InlinerConfig {
            budget,
            ..InlinerConfig::default()
        });
        self
    }

    /// Enables the security inliner with an explicit [`InlinerConfig`].
    pub fn inliner_config(mut self, inliner: InlinerConfig) -> Self {
        self.config.inliner = Some(inliner);
        self
    }

    /// Configures both passes as the paper's optimal §8.3 setup: budget
    /// 99.9999% with lax size heuristics inside the 99% prefix.
    pub fn lax(mut self) -> Self {
        self.config.icp = Some(IcpConfig {
            budget: Budget::P99_9999,
            max_targets_per_site: None,
        });
        self.config.inliner = Some(InlinerConfig {
            budget: Budget::P99_9999,
            lax_heuristics: true,
            lax_budget: Budget::P99,
            ..InlinerConfig::default()
        });
        self
    }

    /// Selects the defenses applied to the remaining branches.
    pub fn defenses(mut self, defenses: DefenseSet) -> Self {
        self.config.defenses = defenses;
        self
    }

    /// Selects the target architecture / defense backend.
    pub fn arch(mut self, arch: Arch) -> Self {
        self.config.arch = arch;
        self
    }

    /// Enables (or disables) dead-function elimination.
    pub fn dce(mut self, dce: bool) -> Self {
        self.config.dce = dce;
        self
    }

    /// Sets the profile-validation policy.
    pub fn validation(mut self, validation: ValidationPolicy) -> Self {
        self.config.validation = validation;
        self
    }

    /// Sets the stage-failure policy.
    pub fn failure(mut self, failure: FailurePolicy) -> Self {
        self.config.failure = failure;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> PibeConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lto_neither_optimizes_nor_defends() {
        let c = PibeConfig::lto();
        assert!(!c.optimizes());
        assert!(c.defenses.is_none());
    }

    #[test]
    fn full_config_runs_both_passes_at_one_budget() {
        let c = PibeConfig::full(Budget::P99_9, DefenseSet::ALL);
        assert_eq!(c.icp.unwrap().budget, Budget::P99_9);
        assert_eq!(c.inliner.unwrap().budget, Budget::P99_9);
        assert_eq!(c.defenses, DefenseSet::ALL);
        assert!(c.optimizes());
    }

    #[test]
    fn lax_config_matches_section_8_3() {
        let c = PibeConfig::lax(DefenseSet::ALL);
        let inl = c.inliner.unwrap();
        assert!(inl.lax_heuristics);
        assert_eq!(inl.budget, Budget::P99_9999);
        assert_eq!(inl.lax_budget, Budget::P99);
    }

    #[test]
    fn pibe_baseline_has_no_defenses() {
        assert!(PibeConfig::pibe_baseline().defenses.is_none());
        assert!(PibeConfig::pibe_baseline().optimizes());
    }

    #[test]
    fn dce_defaults_off_and_keys_the_cache() {
        let c = PibeConfig::lax(DefenseSet::ALL);
        assert!(!c.dce, "dce is opt-in");
        let d = c.with_dce(true);
        assert!(d.dce);
        // Part of the farm's content key, like the policies.
        assert_ne!(c, d);
    }

    #[test]
    fn builder_reproduces_every_named_constructor() {
        assert_eq!(PibeConfig::builder().build(), PibeConfig::lto());
        assert_eq!(
            PibeConfig::builder().defenses(DefenseSet::ALL).build(),
            PibeConfig::lto_with(DefenseSet::ALL)
        );
        assert_eq!(
            PibeConfig::builder()
                .icp(Budget::P99_9)
                .defenses(DefenseSet::RETPOLINES)
                .build(),
            PibeConfig::icp_only(Budget::P99_9, DefenseSet::RETPOLINES)
        );
        assert_eq!(
            PibeConfig::builder()
                .icp(Budget::P99_9)
                .inliner(Budget::P99_9)
                .defenses(DefenseSet::ALL)
                .build(),
            PibeConfig::full(Budget::P99_9, DefenseSet::ALL)
        );
        assert_eq!(
            PibeConfig::builder()
                .lax()
                .defenses(DefenseSet::ALL)
                .build(),
            PibeConfig::lax(DefenseSet::ALL)
        );
    }

    #[test]
    fn arch_defaults_to_x86_and_keys_the_cache() {
        let c = PibeConfig::lax(DefenseSet::ALL);
        assert_eq!(c.arch, Arch::X86, "existing constructors stay x86");
        let arm = c.with_arch(Arch::Arm64);
        assert_eq!(arm.arch, Arch::Arm64);
        // Part of the farm's content key: per-arch builds never alias.
        assert_ne!(c, arm);
        assert_eq!(arm.backend().name(), "arm-pac-bti");
    }

    #[test]
    fn policies_default_to_repair_and_abort() {
        let c = PibeConfig::lax(DefenseSet::ALL);
        assert_eq!(c.validation, ValidationPolicy::Repair);
        assert_eq!(c.failure, FailurePolicy::Abort);
        let c = c
            .with_validation(ValidationPolicy::Strict)
            .with_failure(FailurePolicy::SkipStage);
        assert_eq!(c.validation, ValidationPolicy::Strict);
        assert_eq!(c.failure, FailurePolicy::SkipStage);
        // Policies are part of the farm's cache key.
        assert_ne!(c, PibeConfig::lax(DefenseSet::ALL));
    }
}
