//! Pipeline configuration: the paper's evaluated build configurations.

use pibe_harden::DefenseSet;
use pibe_passes::{IcpConfig, InlinerConfig};
use pibe_profile::Budget;
use serde::{Deserialize, Serialize};

/// One kernel build configuration: which optimizations run (and at what
/// budget) and which defenses harden the result.
///
/// Configurations are `Eq + Hash`: the [`ImageFarm`](crate::ImageFarm)
/// content-keys its build cache on the full configuration, so two requests
/// for the same configuration share one built image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PibeConfig {
    /// Indirect call promotion, if enabled.
    pub icp: Option<IcpConfig>,
    /// The security inliner, if enabled.
    pub inliner: Option<InlinerConfig>,
    /// Defenses applied to the remaining branches.
    pub defenses: DefenseSet,
}

impl PibeConfig {
    /// The LTO baseline: no profile-guided optimization, no defenses —
    /// "how Linux is typically deployed" (§8.1).
    pub fn lto() -> Self {
        PibeConfig {
            icp: None,
            inliner: None,
            defenses: DefenseSet::NONE,
        }
    }

    /// LTO plus defenses, still no optimization (the costly upper rows of
    /// Tables 3 and 5).
    pub fn lto_with(defenses: DefenseSet) -> Self {
        PibeConfig {
            defenses,
            ..Self::lto()
        }
    }

    /// Indirect call promotion only, at `budget` (Table 3's "+icp"
    /// columns; paired with retpolines in the paper).
    pub fn icp_only(budget: Budget, defenses: DefenseSet) -> Self {
        PibeConfig {
            icp: Some(IcpConfig {
                budget,
                max_targets_per_site: None,
            }),
            inliner: None,
            defenses,
        }
    }

    /// Both optimizations at `budget` (Table 5's "+icp +inlining" columns).
    pub fn full(budget: Budget, defenses: DefenseSet) -> Self {
        PibeConfig {
            icp: Some(IcpConfig {
                budget,
                max_targets_per_site: None,
            }),
            inliner: Some(InlinerConfig {
                budget,
                ..InlinerConfig::default()
            }),
            defenses,
        }
    }

    /// The paper's optimal configuration (§8.3): budget 99.9999% with the
    /// size heuristics disabled for sites inside the 99% prefix
    /// ("lax heuristics"), reducing the comprehensive defense to 10.6%.
    pub fn lax(defenses: DefenseSet) -> Self {
        PibeConfig {
            icp: Some(IcpConfig {
                budget: Budget::P99_9999,
                max_targets_per_site: None,
            }),
            inliner: Some(InlinerConfig {
                budget: Budget::P99_9999,
                lax_heuristics: true,
                lax_budget: Budget::P99,
                ..InlinerConfig::default()
            }),
            defenses,
        }
    }

    /// The PIBE performance baseline of Table 2: the best optimization
    /// configuration with *no* defenses ("tuned to give the best possible
    /// performance on the LMBench test suite").
    pub fn pibe_baseline() -> Self {
        Self::lax(DefenseSet::NONE)
    }

    /// Whether any optimization pass runs.
    pub fn optimizes(&self) -> bool {
        self.icp.is_some() || self.inliner.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lto_neither_optimizes_nor_defends() {
        let c = PibeConfig::lto();
        assert!(!c.optimizes());
        assert!(c.defenses.is_none());
    }

    #[test]
    fn full_config_runs_both_passes_at_one_budget() {
        let c = PibeConfig::full(Budget::P99_9, DefenseSet::ALL);
        assert_eq!(c.icp.unwrap().budget, Budget::P99_9);
        assert_eq!(c.inliner.unwrap().budget, Budget::P99_9);
        assert_eq!(c.defenses, DefenseSet::ALL);
        assert!(c.optimizes());
    }

    #[test]
    fn lax_config_matches_section_8_3() {
        let c = PibeConfig::lax(DefenseSet::ALL);
        let inl = c.inliner.unwrap();
        assert!(inl.lax_heuristics);
        assert_eq!(inl.budget, Budget::P99_9999);
        assert_eq!(inl.lax_budget, Budget::P99);
    }

    #[test]
    fn pibe_baseline_has_no_defenses() {
        assert!(PibeConfig::pibe_baseline().defenses.is_none());
        assert!(PibeConfig::pibe_baseline().optimizes());
    }
}
