//! Chaos acceptance suite: hundreds of deterministic, seeded corruptions
//! thrown at the hardening pipeline.
//!
//! The contract under test (see DESIGN.md, "Failure model"):
//!
//! * **Repair + SkipStage** (the lenient end): the pipeline never panics
//!   and always yields a verifier-clean image whose security audit shows
//!   every remaining non-asm indirect branch defended — corruption may
//!   degrade *optimization*, never *protection*.
//! * **Strict + Abort** (the strict end): every corruption is refused with
//!   a typed [`PipelineError`] naming the faulty entity.
//! * A farm batch containing one panicking configuration still completes
//!   every other configuration in the batch.

use pibe::{corrupt_module, Image};
use pibe::{
    FailurePolicy, ImageFarm, ModuleCorruption, PibeConfig, PipelineError, Stage, ValidationPolicy,
};
use pibe_harden::DefenseSet;
use pibe_ir::{Inst, Module};
use pibe_kernel::{
    measure::collect_profile,
    workloads::{lmbench_suite, WorkloadSpec},
    Kernel, KernelSpec,
};
use pibe_profile::{corrupt_profile, Profile, ProfileChaos};
use std::sync::OnceLock;

/// Base offset applied to every seed window, so CI can sweep disjoint
/// seed ranges (`PIBE_CHAOS_SEED_BASE=1000 cargo test -p pibe --test
/// chaos`) without touching the code. Defaults to 0; every run is still
/// fully deterministic for a given base.
fn seed_base() -> u64 {
    std::env::var("PIBE_CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// One profiled test kernel shared by every test in the suite.
fn fixture() -> &'static (Module, Profile) {
    static FIX: OnceLock<(Module, Profile)> = OnceLock::new();
    FIX.get_or_init(|| {
        let k = Kernel::generate(KernelSpec::test());
        let p = collect_profile(&k, &WorkloadSpec::lmbench(), &lmbench_suite(6), 2, 7)
            .expect("profiling the pristine kernel succeeds");
        (k.module, p)
    })
}

/// Indirect call sites the defenses can never cover (inline assembly).
fn asm_icalls(module: &Module) -> u64 {
    module
        .functions()
        .iter()
        .flat_map(|f| f.insts())
        .filter(|i| matches!(i, Inst::CallIndirect { asm: true, .. }))
        .count() as u64
}

/// Asserts the image is verifier-clean with every non-asm indirect branch
/// defended: asm sites are the *only* vulnerable icalls, no return is
/// vulnerable, and no extra jump table survived relative to the clean
/// reference build.
fn assert_fully_defended(img: &Image, reference: &Image, context: &str) {
    img.module
        .verify()
        .unwrap_or_else(|e| panic!("{context}: image must verify: {e}"));
    assert_eq!(
        img.audit.vulnerable_icalls,
        asm_icalls(&img.module),
        "{context}: every non-asm indirect call must be defended"
    );
    assert_eq!(
        img.audit.vulnerable_returns, 0,
        "{context}: every return must be defended"
    );
    assert_eq!(
        img.audit.vulnerable_ijumps, reference.audit.vulnerable_ijumps,
        "{context}: only the asm jump tables may survive"
    );
}

#[test]
fn repair_skipstage_survives_hundreds_of_profile_corruptions() {
    let (module, profile) = fixture();
    let cfg = PibeConfig::lax(DefenseSet::ALL).with_failure(FailurePolicy::SkipStage);
    let reference = Image::builder(module)
        .profile(profile)
        .config(cfg)
        .build()
        .expect("clean profile builds");
    assert!(reference.repair.is_none() && reference.faults.is_empty());

    let base = seed_base();
    let mut landed_seeds = 0;
    for seed in base..base + 260 {
        let (bad, kind, landed) = corrupt_profile(profile, module, seed);
        if !landed {
            continue;
        }
        landed_seeds += 1;
        let img = Image::builder(module)
            .profile(&bad)
            .config(cfg)
            .build()
            .unwrap_or_else(|e| panic!("seed {seed} ({kind}): lenient build must succeed: {e}"));
        assert_fully_defended(&img, &reference, &format!("seed {seed} ({kind})"));
        // Erase leaves a (validly) empty profile; every other corruption
        // is something repair acted on and must report.
        if kind != ProfileChaos::Erase {
            let repair = img
                .repair
                .unwrap_or_else(|| panic!("seed {seed} ({kind}): repair report expected"));
            assert!(repair.changed(), "seed {seed} ({kind}): repair acted");
        }
    }
    assert!(
        landed_seeds >= 200,
        "the suite must land at least 200 profile corruptions: {landed_seeds}"
    );
}

#[test]
fn strict_abort_rejects_every_profile_corruption_with_a_typed_error() {
    let (module, profile) = fixture();
    let cfg = PibeConfig::lax(DefenseSet::ALL).with_validation(ValidationPolicy::Strict);
    let base = seed_base();
    let mut landed_seeds = 0;
    for seed in base..base + 260 {
        let (bad, kind, landed) = corrupt_profile(profile, module, seed);
        if !landed {
            continue;
        }
        landed_seeds += 1;
        let err = match Image::builder(module).profile(&bad).config(cfg).build() {
            Ok(_) => panic!("seed {seed} ({kind}): strict build must fail"),
            Err(e) => e,
        };
        let PipelineError::ProfileInvalid(issue) = &err else {
            panic!("seed {seed} ({kind}): wanted ProfileInvalid, got {err}");
        };
        // The error names the faulty entity (site, function, or the empty
        // profile itself).
        let msg = issue.to_string();
        assert!(
            !msg.is_empty(),
            "seed {seed} ({kind}): issue must describe the fault"
        );
    }
    assert!(
        landed_seeds >= 200,
        "the suite must land at least 200 profile corruptions: {landed_seeds}"
    );
}

#[test]
fn corrupt_base_modules_are_rejected_before_any_pass_runs() {
    let (module, profile) = fixture();
    let base = seed_base();
    let mut landed_seeds = 0;
    for seed in base..base + 80 {
        let (bad, kind, landed) = corrupt_module(module, seed);
        if !landed {
            continue;
        }
        landed_seeds += 1;
        for cfg in [
            PibeConfig::lax(DefenseSet::ALL),
            PibeConfig::lax(DefenseSet::ALL)
                .with_validation(ValidationPolicy::Strict)
                .with_failure(FailurePolicy::SkipStage),
        ] {
            let err = match Image::builder(&bad).profile(profile).config(cfg).build() {
                Ok(_) => panic!("seed {seed} ({kind}): corrupt base must be rejected"),
                Err(e) => e,
            };
            assert!(
                matches!(err, PipelineError::InvalidModule(_)),
                "seed {seed} ({kind}): wanted InvalidModule, got {err}"
            );
            assert!(!err.to_string().is_empty());
        }
    }
    assert!(
        landed_seeds >= 60,
        "the suite must land at least 60 module corruptions: {landed_seeds}"
    );
}

#[test]
fn injected_optimization_faults_skip_or_abort_by_policy() {
    let (module, profile) = fixture();
    let reference = Image::builder(module)
        .profile(profile)
        .config(PibeConfig::lax(DefenseSet::ALL))
        .build()
        .expect("clean build");

    let base = seed_base();
    let mut landed_seeds = 0;
    for seed in base..base + 24 {
        let stage = [Stage::Icp, Stage::Inline][(seed % 2) as usize];
        let fault = ModuleCorruption::from_seed(seed);

        // Lenient: the stage rolls back and the build completes defended.
        let img = Image::builder(module)
            .profile(profile)
            .config(PibeConfig::lax(DefenseSet::ALL).with_failure(FailurePolicy::SkipStage))
            .inject_fault(stage, fault, seed)
            .build()
            .unwrap_or_else(|e| panic!("seed {seed} ({stage}/{fault}): skip must build: {e}"));
        if img.faults.is_empty() {
            // The corruption found nothing to corrupt at this stage.
            continue;
        }
        landed_seeds += 1;
        assert!(img.faults.contains(stage), "seed {seed}: fault on record");
        assert!(img.metrics.rollbacks >= 1);
        assert_fully_defended(&img, &reference, &format!("seed {seed} ({stage}/{fault})"));

        // Strict: the same fault is a typed abort naming the stage.
        let err = Image::builder(module)
            .profile(profile)
            .config(PibeConfig::lax(DefenseSet::ALL))
            .inject_fault(stage, fault, seed)
            .build()
            .expect_err("abort policy must surface the fault");
        match err {
            PipelineError::StageFailed { stage: s, .. } => assert_eq!(s, stage),
            other => panic!("seed {seed}: wanted StageFailed, got {other}"),
        }
    }
    assert!(
        landed_seeds >= 12,
        "most injected faults must land: {landed_seeds}/24"
    );
}

#[test]
fn hardening_faults_always_abort_even_under_skipstage() {
    let (module, profile) = fixture();
    let base = seed_base();
    for seed in base + 100..base + 108 {
        // DanglingBlock always lands (every function has blocks).
        for failure in [FailurePolicy::Abort, FailurePolicy::SkipStage] {
            let err = Image::builder(module)
                .profile(profile)
                .config(PibeConfig::lax(DefenseSet::ALL).with_failure(failure))
                .inject_fault(Stage::Harden, ModuleCorruption::DanglingBlock, seed)
                .build()
                .expect_err("a hardening fault must abort under every policy");
            match err {
                PipelineError::StageFailed { stage, .. } => assert_eq!(stage, Stage::Harden),
                other => panic!("seed {seed}: wanted StageFailed(harden), got {other}"),
            }
        }
    }
}

#[test]
fn farm_batch_with_one_panicking_config_completes_every_other() {
    let (module, profile) = fixture();
    // Plant the panic route: a dangling value-profile target as the
    // hottest promotion candidate, consumed with validation off.
    let base = seed_base();
    let poisoned_profile = (base..base + 200)
        .find_map(|seed| {
            let (bad, kind, landed) = corrupt_profile(profile, module, seed);
            (landed && kind == ProfileChaos::DanglingTarget).then_some(bad)
        })
        .expect("some seed plants a dangling target");
    let farm = ImageFarm::new(module.clone(), poisoned_profile).with_threads(3);

    let poisoned = PibeConfig::lax(DefenseSet::ALL).with_validation(ValidationPolicy::TrustProfile);
    let healthy = [
        PibeConfig::lto(),
        PibeConfig::lto_with(DefenseSet::ALL),
        PibeConfig::lax(DefenseSet::ALL),
        PibeConfig::lax(DefenseSet::RETPOLINES),
    ];
    let mut batch = healthy.to_vec();
    batch.insert(2, poisoned);

    let err = farm.images(&batch).expect_err("poisoned config fails");
    assert!(
        matches!(err, PipelineError::StagePanicked { .. }),
        "wanted a contained panic, got {err}"
    );

    // Every healthy configuration was built despite the panic and is now a
    // cache hit; the panic is cached as a failure, not retried.
    let builds = farm.stats().builds;
    for cfg in &healthy {
        let img = farm.image(cfg).expect("healthy config completed");
        img.module.verify().expect("healthy image verifies");
    }
    assert_eq!(farm.stats().builds, builds, "no rebuilds");
    assert_eq!(farm.stats().failed, 1, "exactly the poisoned config failed");
    assert!(farm.image(&poisoned).is_err(), "failure stays cached");
    assert_eq!(farm.stats().builds, builds);
}
