//! # pibe-bench
//!
//! Benchmark harnesses for the PIBE reproduction:
//!
//! * the [`tables`](../src/bin/tables.rs) binary regenerates every table
//!   and figure of the paper's evaluation section
//!   (`cargo run --release -p pibe-bench --bin tables -- --all`);
//! * the Criterion benches under `benches/` time the pipeline components
//!   and run the ablation sweeps DESIGN.md calls out (inliner thresholds,
//!   ICP target caps, greedy-vs-bottom-up ordering).
//!
//! This library exposes the shared setup used by both.

#![warn(missing_docs)]

use pibe::experiments::Lab;
use pibe_kernel::KernelSpec;

/// Builds the lab the Criterion benches share: a mid-size kernel, enough
/// iterations for stable shapes, profile aggregated over 3 rounds.
///
/// # Panics
/// Panics with the failing workload and seed if the profiling run fails.
pub fn bench_lab() -> Lab {
    Lab::new(KernelSpec::bench(), 24, 3).unwrap_or_else(|e| panic!("bench lab failed: {e}"))
}

/// Builds a small lab for smoke-testing the harnesses quickly.
///
/// # Panics
/// Panics with the failing workload and seed if the profiling run fails.
pub fn quick_lab() -> Lab {
    Lab::new(KernelSpec::test(), 8, 2).unwrap_or_else(|e| panic!("quick lab failed: {e}"))
}
