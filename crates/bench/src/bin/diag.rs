//! Diagnostic: per-benchmark ExecStats for LTO vs PIBE-baseline images.
//!
//! Pass `--trace` (or set `PIBE_TRACE=1`) to print the hierarchical span
//! summary of the lab setup and image build after the stats.
use pibe::experiments::Lab;
use pibe::PibeConfig;
use pibe_kernel::{measure::run_latency, workloads::Benchmark, KernelSpec, Syscall};
use pibe_sim::SimConfig;

fn main() {
    pibe_trace::init_from_env();
    if std::env::args().skip(1).any(|a| a == "--trace") {
        pibe_trace::set_enabled(true);
    }
    pibe_trace::set_track_name("main");
    let lab = Lab::new(
        KernelSpec {
            scale: 0.1,
            ..KernelSpec::paper()
        },
        16,
        2,
    )
    .expect("diag lab builds");
    let image = lab.image(&PibeConfig::pibe_baseline());
    for sc in [Syscall::Read, Syscall::Open, Syscall::Null] {
        let b = Benchmark {
            syscall: sc,
            iterations: 16,
            warmup: 2,
        };
        for (name, m) in [("lto ", &lab.kernel.module), ("pibe", &image.module)] {
            let (lat, st, _) = run_latency(
                m,
                &lab.kernel,
                &lab.workload,
                b,
                SimConfig::default(),
                lab.seed,
            )
            .unwrap();
            println!("{} {:>6}: cyc/it {:>8.0} ops {:>8} dc {:>6} ic {:>5} ret {:>6} btbmiss {:>5} icmiss {:>6} rsbmiss {:>4}",
                name, sc.name(), lat.cycles_per_iter, st.ops, st.dcalls, st.icalls, st.rets, st.btb_misses, st.icache_misses, st.rsb_misses);
        }
    }
    if pibe_trace::enabled() {
        let data = pibe_trace::take();
        if !data.is_empty() {
            println!("\n{}", pibe::report::trace_summary(&data));
        }
    }
}
