//! Diagnostic: per-benchmark ExecStats for LTO vs PIBE-baseline images.
use pibe::experiments::Lab;
use pibe::PibeConfig;
use pibe_kernel::{measure::run_latency, workloads::Benchmark, KernelSpec, Syscall};
use pibe_sim::SimConfig;

fn main() {
    let lab = Lab::new(
        KernelSpec {
            scale: 0.1,
            ..KernelSpec::paper()
        },
        16,
        2,
    )
    .expect("diag lab builds");
    let image = lab.image(&PibeConfig::pibe_baseline());
    for sc in [Syscall::Read, Syscall::Open, Syscall::Null] {
        let b = Benchmark {
            syscall: sc,
            iterations: 16,
            warmup: 2,
        };
        for (name, m) in [("lto ", &lab.kernel.module), ("pibe", &image.module)] {
            let (lat, st, _) = run_latency(
                m,
                &lab.kernel,
                &lab.workload,
                b,
                SimConfig::default(),
                lab.seed,
            )
            .unwrap();
            println!("{} {:>6}: cyc/it {:>8.0} ops {:>8} dc {:>6} ic {:>5} ret {:>6} btbmiss {:>5} icmiss {:>6} rsbmiss {:>4}",
                name, sc.name(), lat.cycles_per_iter, st.ops, st.dcalls, st.icalls, st.rets, st.btb_misses, st.icache_misses, st.rsb_misses);
        }
    }
}
