//! Inspect the synthetic kernel: generate at a chosen scale and report its
//! structure — static census, interface-site histogram, subsystem layout —
//! or dump a function (or the whole module) as textual IR.
//!
//! ```text
//! kernelgen [--scale F] [--seed N] [--dump NAME | --dump-all PATH] [--reachability]
//! ```

use pibe_ir::FuncId;
use pibe_kernel::{Kernel, KernelSpec, Syscall};
use pibe_passes::strip_unreachable;

struct Args {
    scale: f64,
    seed: u64,
    dump: Option<String>,
    dump_all: Option<String>,
    reachability: bool,
    profile: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.05,
        seed: KernelSpec::paper().seed,
        dump: None,
        dump_all: None,
        reachability: false,
        profile: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => args.scale = val().parse().expect("--scale takes a float"),
            "--seed" => args.seed = val().parse().expect("--seed takes an integer"),
            "--dump" => args.dump = Some(val()),
            "--dump-all" => args.dump_all = Some(val()),
            "--reachability" => args.reachability = true,
            "--profile" => args.profile = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let kernel = Kernel::generate(KernelSpec {
        scale: args.scale,
        seed: args.seed,
    });
    let census = kernel.module.census();

    println!(
        "synthetic kernel @ scale {} (seed {:#x})",
        args.scale, args.seed
    );
    println!("  functions:           {}", kernel.module.len());
    println!("  code bytes:          {}", kernel.module.code_bytes());
    println!("  direct call sites:   {}", census.direct_calls);
    println!("  indirect call sites: {}", census.indirect_calls);
    println!("  indirect jumps:      {}", census.indirect_jumps);
    println!("  return sites:        {}", census.returns);

    let mut hist = [0u64; 7];
    let mut asm = 0u64;
    for s in &kernel.interface_sites {
        if s.asm {
            asm += 1;
            continue;
        }
        let n = s.targets.len();
        hist[if n > 6 { 6 } else { n - 1 }] += 1;
    }
    println!("  interface sites by multiplicity (1..6, >6): {hist:?}");
    println!("  paravirt asm sites:  {asm}");

    println!("\nentry points:");
    for (sc, f) in kernel.entries() {
        println!(
            "  {:>14} -> {}",
            sc.name(),
            kernel.module.function(f).name()
        );
    }

    if args.reachability {
        let roots: Vec<FuncId> = Syscall::ALL.iter().map(|s| kernel.entry(*s)).collect();
        let taken: Vec<FuncId> = kernel
            .interface_sites
            .iter()
            .flat_map(|s| s.targets.iter().map(|(f, _)| *f))
            .collect();
        let (stripped, _, stats) = strip_unreachable(&kernel.module, &roots, &taken);
        println!(
            "\nreachability: {} functions reachable from the syscall surface, \
             {} unreachable ({} bytes of cold text)",
            stats.kept_functions, stats.removed_functions, stats.removed_bytes
        );
        println!(
            "  reachable code bytes: {} of {}",
            stripped.code_bytes(),
            kernel.module.code_bytes()
        );
    }

    if args.profile {
        use pibe_kernel::measure::collect_profile;
        use pibe_kernel::workloads::{lmbench_suite, WorkloadSpec};
        use pibe_profile::{direct_concentration, indirect_concentration};
        let p = collect_profile(
            &kernel,
            &WorkloadSpec::lmbench(),
            &lmbench_suite(16),
            3,
            0xBA5E,
        )
        .expect("profiling run succeeds");
        let d = direct_concentration(&p);
        let i = indirect_concentration(&p);
        println!("\nLMBench profile weight concentration (PIBE's premise):");
        println!(
            "  direct calls:   {} sites, gini {:.3}; 50/90/99% of weight in \
             {:.1}/{:.1}/{:.1}% of sites",
            d.sites,
            d.gini,
            d.sites_for_50 * 100.0,
            d.sites_for_90 * 100.0,
            d.sites_for_99 * 100.0
        );
        println!(
            "  indirect pairs: {} pairs, gini {:.3}; 50/90/99% of weight in \
             {:.1}/{:.1}/{:.1}% of pairs",
            i.sites,
            i.gini,
            i.sites_for_50 * 100.0,
            i.sites_for_90 * 100.0,
            i.sites_for_99 * 100.0
        );
    }

    if let Some(name) = &args.dump {
        match kernel.module.find_function(name) {
            Some(id) => println!("\n{}", kernel.module.function(id)),
            None => {
                eprintln!("no function named {name:?}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.dump_all {
        std::fs::write(path, kernel.module.to_string())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote full textual IR to {path}");
    }
}
