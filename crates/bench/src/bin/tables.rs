//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! tables [--scale F] [--iters N] [--rounds N] [--requests N] [--only LIST]
//!
//!   --scale F      kernel scale: 1.0 = the paper's Linux 5.1 census
//!                  (default 0.15; use 1.0 for the EXPERIMENTS.md record)
//!   --iters N      LMBench iterations per benchmark (default 24)
//!   --rounds N     profiling rounds to aggregate (default 3; paper: 11)
//!   --requests N   macro-benchmark requests (default 40)
//!   --threads N    image-farm worker threads (default: PIBE_BUILD_THREADS
//!                  if set, else the machine's available parallelism)
//!   --arch NAME    defense backend every table runs under: x86_64
//!                  (default), arm64, riscv64, riscv64-nop. Equivalent to
//!                  setting PIBE_ARCH. The crossarch table always sweeps
//!                  all backends regardless of this flag.
//!   --only LIST    comma-separated subset, e.g. "1,5,robustness,fig1"
//!   --json PATH    additionally write all regenerated tables as JSON
//!   --trace PATH   enable pipeline tracing, write a Chrome trace-event
//!                  JSON file (load it at https://ui.perfetto.dev) and
//!                  print the hierarchical span summary
//! ```
//!
//! Every configuration any table requests is built exactly once through
//! the lab's [`pibe::ImageFarm`]; the closing build report shows how much
//! wall-clock each pipeline stage cost and how many rebuilds the farm's
//! cache absorbed.

use pibe::experiments::{self, ExperimentError, Lab};
use pibe_kernel::KernelSpec;
use std::time::Instant;

/// Unwraps an experiment result, exiting with the typed error (which names
/// the failing workload, benchmark, or build) instead of a panic trace.
fn or_die<T>(result: Result<T, ExperimentError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

struct Args {
    scale: f64,
    iters: u32,
    rounds: u32,
    requests: u32,
    threads: Option<usize>,
    arch: Option<String>,
    only: Option<Vec<String>>,
    json: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.15,
        iters: 24,
        rounds: 3,
        requests: 40,
        threads: None,
        arch: None,
        only: None,
        json: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => args.scale = val().parse().expect("--scale takes a float"),
            "--iters" => args.iters = val().parse().expect("--iters takes an integer"),
            "--rounds" => args.rounds = val().parse().expect("--rounds takes an integer"),
            "--requests" => args.requests = val().parse().expect("--requests takes an integer"),
            "--threads" => {
                args.threads = Some(val().parse().expect("--threads takes a positive integer"));
            }
            "--arch" => {
                let name = val();
                let _: pibe::Arch = name
                    .parse()
                    .unwrap_or_else(|e: String| panic!("--arch: {e}"));
                args.arch = Some(name);
            }
            "--only" => args.only = Some(val().split(',').map(str::to_string).collect()),
            "--json" => args.json = Some(val()),
            "--trace" => args.trace = Some(val()),
            "--all" => args.only = None,
            "--list" => {
                println!(
                    "available keys: 1 fig1 2 3 4 5 6 7 8 9 10 11 12 \
                     robustness refill breakdown v1 eibrs userspace convergence \
                     crossarch"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    pibe_trace::init_from_env();
    if args.trace.is_some() {
        pibe_trace::set_enabled(true);
    }
    pibe_trace::set_track_name("main");
    if let Some(n) = args.threads {
        assert!(n >= 1, "--threads takes a positive integer");
        // The farm reads this when the lab constructs it.
        std::env::set_var("PIBE_BUILD_THREADS", n.to_string());
    }
    if let Some(arch) = &args.arch {
        // The lab reads this when it constructs; every table then runs
        // under the named backend.
        std::env::set_var("PIBE_ARCH", arch);
    }
    let wanted = |key: &str| {
        args.only
            .as_ref()
            .is_none_or(|list| list.iter().any(|k| k == key))
    };
    let mut produced: Vec<pibe::report::Table> = Vec::new();

    println!("; PIBE reproduction — table regeneration");
    println!(
        "; kernel scale {}, {} LMBench iters, {} profiling rounds, {} macro requests",
        args.scale, args.iters, args.rounds, args.requests
    );

    // Table 1 and Figure 1 need no kernel.
    if wanted("1") {
        let t0 = Instant::now();
        let span = pibe_trace::span("table.1");
        let t = experiments::table1();
        drop(span);
        println!("\n{t}");
        produced.push(t);
        eprintln!("[table 1 in {:.1?}]", t0.elapsed());
    }
    if wanted("fig1") {
        let span = pibe_trace::span("table.fig1");
        let t = experiments::figure1();
        drop(span);
        println!("\n{t}");
        produced.push(t);
    }

    let lab_keys = [
        "2",
        "3",
        "4",
        "5",
        "6",
        "7",
        "8",
        "9",
        "10",
        "11",
        "12",
        "robustness",
        "refill",
        "breakdown",
        "v1",
        "eibrs",
        "userspace",
        "convergence",
        "crossarch",
    ];
    if !lab_keys.iter().any(|k| wanted(k)) {
        write_json(&args, &produced);
        finish_trace(&args);
        return;
    }

    let t0 = Instant::now();
    let spec = KernelSpec {
        scale: args.scale,
        ..KernelSpec::paper()
    };
    let lab = or_die(Lab::new(spec, args.iters, args.rounds));
    let census = lab.kernel.module.census();
    eprintln!(
        "[lab ready in {:.1?}: {} functions, {} icall sites, {} return sites, \
         {} farm threads, arch {}]",
        t0.elapsed(),
        lab.kernel.module.len(),
        census.indirect_calls,
        census.returns,
        lab.farm().threads(),
        lab.arch.name()
    );

    type TableFn = dyn Fn(&Lab) -> pibe::report::Table;
    let simple: [(&str, &TableFn); 9] = [
        ("2", &experiments::table2),
        ("3", &experiments::table3),
        ("4", &experiments::table4),
        ("5", &experiments::table5),
        ("6", &experiments::table6),
        ("8", &experiments::table8),
        ("9", &experiments::table9),
        ("10", &experiments::table10),
        ("11", &experiments::table11),
    ];
    for (key, f) in simple {
        if wanted(key) {
            let t0 = Instant::now();
            let span = pibe_trace::span(format!("table.{key}"));
            let table = f(&lab);
            drop(span);
            println!("\n{table}");
            produced.push(table);
            eprintln!("[table {key} in {:.1?}]", t0.elapsed());
        }
    }
    if wanted("12") {
        let t0 = Instant::now();
        let span = pibe_trace::span("table.12");
        let table = experiments::table12(&lab);
        drop(span);
        println!("\n{table}");
        produced.push(table);
        eprintln!("[table 12 in {:.1?}]", t0.elapsed());
    }
    if wanted("7") {
        let t0 = Instant::now();
        let span = pibe_trace::span("table.7");
        let t = or_die(experiments::table7(&lab, args.requests));
        drop(span);
        println!("\n{t}");
        produced.push(t);
        eprintln!("[table 7 in {:.1?}]", t0.elapsed());
    }
    if wanted("convergence") {
        let t0 = Instant::now();
        let span = pibe_trace::span("table.convergence");
        let (table, _) = or_die(experiments::profiling_convergence(&lab));
        drop(span);
        println!("\n{table}");
        produced.push(table);
        eprintln!("[convergence in {:.1?}]", t0.elapsed());
    }
    if wanted("eibrs") {
        let t0 = Instant::now();
        let span = pibe_trace::span("table.eibrs");
        let (table, _) = experiments::eibrs_comparison(&lab);
        drop(span);
        println!("\n{table}");
        produced.push(table);
        eprintln!("[eibrs in {:.1?}]", t0.elapsed());
    }
    if wanted("userspace") {
        let t0 = Instant::now();
        let span = pibe_trace::span("table.userspace");
        let (table, _) = experiments::userspace(400);
        drop(span);
        println!("\n{table}");
        produced.push(table);
        eprintln!("[userspace in {:.1?}]", t0.elapsed());
    }
    if wanted("v1") {
        let t0 = Instant::now();
        let span = pibe_trace::span("table.v1");
        let (table, _) = experiments::spectre_v1_fencing(&lab);
        drop(span);
        println!("\n{table}");
        produced.push(table);
        eprintln!("[v1 in {:.1?}]", t0.elapsed());
    }
    if wanted("breakdown") {
        let t0 = Instant::now();
        let span = pibe_trace::span("table.breakdown");
        let (table, _) = or_die(experiments::cycle_breakdown(&lab));
        drop(span);
        println!("\n{table}");
        produced.push(table);
        eprintln!("[breakdown in {:.1?}]", t0.elapsed());
    }
    if wanted("refill") {
        let t0 = Instant::now();
        let span = pibe_trace::span("table.refill");
        let (table, _) = experiments::rsb_refill_comparison(&lab);
        drop(span);
        println!("\n{table}");
        produced.push(table);
        eprintln!("[refill in {:.1?}]", t0.elapsed());
    }
    if wanted("robustness") {
        let t0 = Instant::now();
        let span = pibe_trace::span("table.robustness");
        let (table, _) = or_die(experiments::robustness(&lab, args.requests));
        drop(span);
        println!("\n{table}");
        produced.push(table);
        eprintln!("[robustness in {:.1?}]", t0.elapsed());
    }
    if wanted("crossarch") {
        let t0 = Instant::now();
        let span = pibe_trace::span("table.crossarch");
        let (table, _) = experiments::cross_arch(&lab);
        drop(span);
        println!("\n{table}");
        produced.push(table);
        eprintln!("[crossarch in {:.1?}]", t0.elapsed());
    }
    let build_report = build_report(&lab);
    println!("\n{build_report}");
    produced.push(build_report);
    write_json(&args, &produced);
    finish_trace(&args);
}

/// When tracing is on, drains the tracer: writes the Chrome trace-event
/// JSON next to `--trace PATH` (when given) and prints the hierarchical
/// span summary table.
fn finish_trace(args: &Args) {
    if !pibe_trace::enabled() {
        return;
    }
    let data = pibe_trace::take();
    if data.is_empty() {
        return;
    }
    println!("\n{}", pibe::report::trace_summary(&data));
    if let Some(path) = &args.trace {
        data.write_chrome_json(path)
            .unwrap_or_else(|e| panic!("cannot write trace {path}: {e}"));
        eprintln!("[wrote {path}: load it at https://ui.perfetto.dev]");
    }
}

/// Summarises the lab's image-farm activity: cache effectiveness and the
/// wall-clock cost of each pipeline stage summed over every build.
fn build_report(lab: &Lab) -> pibe::report::Table {
    let stats = lab.farm().stats();
    let metrics = lab.build_metrics();
    let ms = |ns: u64| format!("{:.1}", ns as f64 / 1e6);
    let mut t = pibe::report::Table::new(
        "Build report: image-farm cache and per-stage pipeline timings",
        &["statistic", "value"],
    );
    t.row(vec![
        "farm worker threads".into(),
        lab.farm().threads().to_string(),
    ]);
    t.row(vec!["image requests".into(), stats.requests.to_string()]);
    t.row(vec!["pipeline builds".into(), stats.builds.to_string()]);
    t.row(vec!["cache hits".into(), stats.hits.to_string()]);
    t.row(vec![
        "distinct configurations".into(),
        stats.cached.to_string(),
    ]);
    t.row(vec!["failed builds".into(), stats.failed.to_string()]);
    for (stage, ns) in metrics.stages() {
        t.row(vec![format!("stage {stage} (ms)"), ms(ns)]);
    }
    t.row(vec!["total build time (ms)".into(), ms(metrics.total_ns)]);
    t.row(vec![
        "stage rollbacks".into(),
        metrics.rollbacks.to_string(),
    ]);
    // Fold tracer aggregates in when tracing is on: span volume and the
    // per-build wall-clock distribution the pipeline records.
    if pibe_trace::enabled() {
        let trace = pibe_trace::snapshot();
        t.row(vec![
            "trace spans / tracks".into(),
            format!("{} / {}", trace.spans.len(), trace.tracks.len()),
        ]);
        for (name, h) in &trace.histograms {
            t.row(vec![
                format!("trace hist {name} (min/mean/max)"),
                format!("{} / {:.1} / {}", h.min, h.mean(), h.max),
            ]);
        }
    }
    t
}

/// Writes the regenerated tables as a JSON document when `--json` was given.
fn write_json(args: &Args, tables: &[pibe::report::Table]) {
    let Some(path) = &args.json else { return };
    let doc = serde_json::json!({
        "scale": args.scale,
        "iters": args.iters,
        "rounds": args.rounds,
        "requests": args.requests,
        "tables": tables,
    });
    std::fs::write(
        path,
        serde_json::to_string_pretty(&doc).expect("tables serialize"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("[wrote {path}]");
}
