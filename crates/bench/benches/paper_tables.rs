//! Regenerates every paper table as part of `cargo bench`, at a reduced
//! kernel scale so the whole sweep stays fast. For the full-scale record
//! (the numbers in EXPERIMENTS.md) run:
//!
//! ```text
//! cargo run --release -p pibe-bench --bin tables -- --scale 1.0 --iters 48 --rounds 11
//! ```

use pibe::experiments::{self, Lab};
use pibe_kernel::KernelSpec;
use std::time::Instant;

fn main() {
    // `cargo bench -- --bench` passes extra flags; ignore them.
    let t0 = Instant::now();
    println!("# PIBE paper-table regeneration (reduced scale)");
    println!("\n{}", experiments::table1());
    println!("\n{}", experiments::figure1());

    let lab = Lab::new(
        KernelSpec {
            scale: 0.08,
            ..KernelSpec::paper()
        },
        16,
        2,
    )
    .expect("bench lab builds");
    println!("\n{}", experiments::table2(&lab));
    println!("\n{}", experiments::table3(&lab));
    println!("\n{}", experiments::table4(&lab));
    println!("\n{}", experiments::table5(&lab));
    println!("\n{}", experiments::table6(&lab));
    println!("\n{}", experiments::table7(&lab, 24).expect("table7 runs"));
    println!("\n{}", experiments::table8(&lab));
    println!("\n{}", experiments::table9(&lab));
    println!("\n{}", experiments::table10(&lab));
    println!("\n{}", experiments::table11(&lab));
    println!("\n{}", experiments::table12(&lab));
    let (robust, _) = experiments::robustness(&lab, 24).expect("robustness runs");
    println!("\n{robust}");
    println!("\n# regenerated all tables in {:.1?}", t0.elapsed());
}
