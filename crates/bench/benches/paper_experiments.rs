//! One Criterion benchmark per paper table/figure: times the regeneration
//! of each experiment over a shared small-scale lab, so `cargo bench`
//! tracks the cost of every experiment harness individually (the *numbers*
//! the experiments produce are printed by the `paper_tables` bench and the
//! `tables` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use pibe::experiments;

fn bench_experiments(c: &mut Criterion) {
    let lab = pibe_bench::quick_lab();
    let mut group = c.benchmark_group("paper_experiments");
    group.sample_size(10);

    group.bench_function("table1_defense_costs", |b| b.iter(experiments::table1));
    group.bench_function("figure1_rule3", |b| b.iter(experiments::figure1));
    group.bench_function("table2_baselines", |b| b.iter(|| experiments::table2(&lab)));
    group.bench_function("table3_retpolines", |b| {
        b.iter(|| experiments::table3(&lab))
    });
    group.bench_function("table4_multiplicity", |b| {
        b.iter(|| experiments::table4(&lab))
    });
    group.bench_function("table5_comprehensive", |b| {
        b.iter(|| experiments::table5(&lab))
    });
    group.bench_function("table6_per_defense", |b| {
        b.iter(|| experiments::table6(&lab))
    });
    group.bench_function("table7_macro", |b| b.iter(|| experiments::table7(&lab, 10)));
    group.bench_function("table8_gadgets", |b| b.iter(|| experiments::table8(&lab)));
    group.bench_function("table9_heuristics", |b| {
        b.iter(|| experiments::table9(&lab))
    });
    group.bench_function("table10_candidates", |b| {
        b.iter(|| experiments::table10(&lab))
    });
    group.bench_function("table11_audit", |b| b.iter(|| experiments::table11(&lab)));
    group.bench_function("table12_size", |b| b.iter(|| experiments::table12(&lab)));
    group.bench_function("robustness_8_4", |b| {
        b.iter(|| experiments::robustness(&lab, 10))
    });
    group.bench_function("ext_refill", |b| {
        b.iter(|| experiments::rsb_refill_comparison(&lab))
    });
    group.bench_function("ext_eibrs", |b| {
        b.iter(|| experiments::eibrs_comparison(&lab))
    });
    group.bench_function("ext_breakdown", |b| {
        b.iter(|| experiments::cycle_breakdown(&lab))
    });
    group.bench_function("ext_spectre_v1", |b| {
        b.iter(|| experiments::spectre_v1_fencing(&lab))
    });
    group.bench_function("ext_userspace", |b| b.iter(|| experiments::userspace(100)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_experiments
}
criterion_main!(benches);
