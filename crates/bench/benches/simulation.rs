//! Simulation throughput per image configuration: how fast the simulator
//! executes the LMBench `read` path on unoptimized vs PIBE-optimized
//! images, with and without comprehensive defenses. The *ratios* between
//! these timings are not the experiment (cycle counts are — see the
//! `tables` binary); this bench tracks the harness's own performance.

use criterion::{criterion_group, criterion_main, Criterion};
use pibe::PibeConfig;
use pibe_harden::DefenseSet;
use pibe_kernel::measure::run_latency;
use pibe_kernel::workloads::Benchmark;
use pibe_kernel::Syscall;
use pibe_sim::SimConfig;

fn bench_simulation(c: &mut Criterion) {
    let lab = pibe_bench::quick_lab();
    let bench = Benchmark {
        syscall: Syscall::Read,
        iterations: 16,
        warmup: 4,
    };

    let configs: Vec<(&str, std::sync::Arc<pibe::Image>)> = vec![
        ("lto_undefended", lab.image(&PibeConfig::lto())),
        (
            "lto_all_defenses",
            lab.image(&PibeConfig::lto_with(DefenseSet::ALL)),
        ),
        (
            "pibe_lax_all_defenses",
            lab.image(&PibeConfig::lax(DefenseSet::ALL)),
        ),
    ];

    let mut group = c.benchmark_group("simulate_read_path");
    for (name, image) in &configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = SimConfig {
                    defenses: image.config.defenses,
                    ..SimConfig::default()
                };
                run_latency(&image.module, &lab.kernel, &lab.workload, bench, cfg, 7)
                    .expect("read benchmark runs")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulation
}
criterion_main!(benches);
