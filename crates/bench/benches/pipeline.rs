//! Component timing: kernel generation, profiling, and each optimization
//! pass. These are the build-time costs of PIBE's pipeline (the paper's
//! artifact compiles a kernel per configuration; our analogue is pass
//! runtime over the synthetic kernel).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pibe_baselines::{run_llvm_inliner, LlvmInlinerConfig};
use pibe_kernel::measure::collect_profile;
use pibe_kernel::workloads::{lmbench_suite, WorkloadSpec};
use pibe_kernel::{Kernel, KernelSpec};
use pibe_passes::{promote_indirect_calls, run_inliner, IcpConfig, InlinerConfig, SiteWeights};
use pibe_profile::Budget;

fn bench_pipeline(c: &mut Criterion) {
    let spec = KernelSpec::test();
    let kernel = Kernel::generate(spec);
    let workload = WorkloadSpec::lmbench();
    let suite = lmbench_suite(8);
    let profile = collect_profile(&kernel, &workload, &suite, 2, 7).expect("profiling succeeds");

    c.bench_function("generate_kernel_test_scale", |b| {
        b.iter(|| Kernel::generate(spec))
    });

    c.bench_function("collect_lmbench_profile", |b| {
        b.iter(|| collect_profile(&kernel, &workload, &suite, 1, 7).unwrap())
    });

    c.bench_function("icp_pass_99_9999", |b| {
        b.iter_batched(
            || (kernel.module.clone(), SiteWeights::from_profile(&profile)),
            |(mut m, mut w)| {
                promote_indirect_calls(
                    &mut m,
                    &mut w,
                    &profile,
                    &IcpConfig {
                        budget: Budget::P99_9999,
                        max_targets_per_site: None,
                    },
                )
            },
            BatchSize::LargeInput,
        )
    });

    // Inliner input: post-ICP module + extended weights, cloned per iter.
    let (icp_module, icp_weights) = {
        let mut m = kernel.module.clone();
        let mut w = SiteWeights::from_profile(&profile);
        promote_indirect_calls(
            &mut m,
            &mut w,
            &profile,
            &IcpConfig {
                budget: Budget::P99_9999,
                max_targets_per_site: None,
            },
        );
        (m, w)
    };

    c.bench_function("pibe_inliner_99_9999", |b| {
        b.iter_batched(
            || icp_module.clone(),
            |mut m| {
                run_inliner(
                    &mut m,
                    &icp_weights,
                    &profile,
                    &InlinerConfig {
                        budget: Budget::P99_9999,
                        ..InlinerConfig::default()
                    },
                )
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("llvm_default_inliner", |b| {
        b.iter_batched(
            || icp_module.clone(),
            |mut m| run_llvm_inliner(&mut m, &icp_weights, &LlvmInlinerConfig::default()),
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
