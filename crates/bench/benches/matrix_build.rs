//! Building a configuration matrix through the [`pibe::ImageFarm`]:
//! sequential (1 worker) vs the full worker pool, plus the memoized
//! steady state. On a single-core host the pool cannot beat sequential
//! builds — the interesting comparisons there are pool overhead (should
//! be negligible) and the cached pass (should be near-free, since every
//! request after the first pass is a cache hit).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pibe::{ImageFarm, PibeConfig};
use pibe_harden::DefenseSet;
use pibe_kernel::measure::collect_profile;
use pibe_kernel::workloads::{lmbench_suite, WorkloadSpec};
use pibe_kernel::{Kernel, KernelSpec};
use pibe_profile::{Budget, Profile};
use std::sync::Arc;

/// The distinct-configuration matrix Tables 5/11/12 collectively request.
fn matrix() -> Vec<PibeConfig> {
    let all = DefenseSet::ALL;
    vec![
        PibeConfig::lto(),
        PibeConfig::lto_with(all),
        PibeConfig::icp_only(Budget::P99_999, DefenseSet::RETPOLINES),
        PibeConfig::full(Budget::P99, all),
        PibeConfig::full(Budget::P99_9, all),
        PibeConfig::full(Budget::P99_9999, all),
        PibeConfig::lax(all),
        PibeConfig::pibe_baseline(),
    ]
}

fn bench_matrix_build(c: &mut Criterion) {
    let kernel = Kernel::generate(KernelSpec::test());
    let profile = collect_profile(
        &kernel,
        &WorkloadSpec::lmbench(),
        &lmbench_suite(8),
        2,
        0xBA5E,
    )
    .expect("profiling succeeds");
    let base: Arc<pibe_ir::Module> = Arc::new(kernel.module.clone());
    let profile: Arc<Profile> = Arc::new(profile);
    let configs = matrix();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut group = c.benchmark_group("matrix_build");
    group.sample_size(10);
    let fresh_farm = |threads: usize| {
        let base = Arc::clone(&base);
        let profile = Arc::clone(&profile);
        move || {
            ImageFarm::with_shared(Arc::clone(&base), Arc::clone(&profile)).with_threads(threads)
        }
    };
    group.bench_function("farm_sequential", |b| {
        b.iter_batched(
            fresh_farm(1),
            |farm| farm.images(&configs).expect("matrix builds"),
            BatchSize::PerIteration,
        )
    });
    let pool_id = format!("farm_pool_{threads}_threads");
    group.bench_function(&pool_id, |b| {
        b.iter_batched(
            fresh_farm(threads),
            |farm| farm.images(&configs).expect("matrix builds"),
            BatchSize::PerIteration,
        )
    });
    // The steady state every experiment table after the first enjoys: all
    // requests are cache hits.
    let warm = ImageFarm::with_shared(Arc::clone(&base), Arc::clone(&profile));
    warm.prefetch(&configs).expect("matrix builds");
    group.bench_function("farm_memoized", |b| {
        b.iter(|| warm.images(&configs).expect("matrix cached"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matrix_build
}
criterion_main!(benches);
