//! Ablation sweeps over the design choices DESIGN.md calls out:
//!
//! * **Rule 2 threshold** (12 000 in the paper, selected by sweeping from
//!   3 000 upward in +3 000 steps, §5.2) — geomean overhead per threshold;
//! * **Rule 3 threshold** (3 000, LLVM's default);
//! * **ICP per-site target cap** — unlimited (PIBE) vs the conventional
//!   1–2 (§5.3);
//! * **inlining order** — PIBE's greedy hot-first vs LLVM's bottom-up.
//!
//! Each sweep prints its measured series (the data behind the choice) and
//! registers one Criterion timing per point so `cargo bench` records it.

use criterion::{criterion_group, criterion_main, Criterion};
use pibe::experiments::Lab;
use pibe::{eval, PibeConfig};
use pibe_baselines::{run_llvm_inliner, LlvmInlinerConfig};
use pibe_harden::DefenseSet;
use pibe_passes::{promote_indirect_calls, run_inliner, IcpConfig, InlinerConfig, SiteWeights};
use pibe_profile::Budget;
use pibe_sim::SimConfig;

/// Geomean LMBench overhead (vs the lab's LTO baseline) of a custom-built
/// all-defenses image.
fn geomean_of(lab: &Lab, build: &dyn Fn(&Lab) -> pibe_ir::Module) -> f64 {
    let module = build(lab);
    let rows = eval::lmbench_latencies(
        &module,
        &lab.kernel,
        &lab.workload,
        &lab.suite,
        SimConfig {
            defenses: DefenseSet::ALL,
            ..SimConfig::default()
        },
        lab.seed,
    );
    lab.geomean(&rows)
}

fn build_with_inliner(lab: &Lab, inliner: InlinerConfig) -> pibe_ir::Module {
    let mut m = lab.kernel.module.clone();
    let mut w = SiteWeights::from_profile(&lab.profile);
    promote_indirect_calls(
        &mut m,
        &mut w,
        &lab.profile,
        &IcpConfig {
            budget: Budget::P99_9999,
            max_targets_per_site: None,
        },
    );
    run_inliner(&mut m, &w, &lab.profile, &inliner);
    pibe_harden::apply(&mut m, DefenseSet::ALL);
    m
}

fn ablation_rule_thresholds(c: &mut Criterion, lab: &Lab) {
    eprintln!("\n# Ablation: Rule 2 caller-complexity threshold (paper: 12000)");
    for rule2 in [3_000u32, 6_000, 12_000, 24_000] {
        let g = geomean_of(lab, &|lab| {
            build_with_inliner(
                lab,
                InlinerConfig {
                    budget: Budget::P99_9999,
                    rule2_caller_limit: rule2,
                    ..InlinerConfig::default()
                },
            )
        });
        eprintln!("rule2={rule2:>6}  geomean overhead = {g:.2}%");
    }
    eprintln!("\n# Ablation: Rule 3 callee-complexity threshold (paper: 3000)");
    for rule3 in [750u32, 1_500, 3_000, 6_000] {
        let g = geomean_of(lab, &|lab| {
            build_with_inliner(
                lab,
                InlinerConfig {
                    budget: Budget::P99_9999,
                    rule3_callee_limit: rule3,
                    ..InlinerConfig::default()
                },
            )
        });
        eprintln!("rule3={rule3:>6}  geomean overhead = {g:.2}%");
    }
    c.bench_function("ablation_inline_rules_point", |b| {
        b.iter(|| {
            geomean_of(lab, &|lab| {
                build_with_inliner(lab, InlinerConfig::default())
            })
        })
    });
}

fn ablation_icp_cap(c: &mut Criterion, lab: &Lab) {
    eprintln!("\n# Ablation: ICP promoted-targets-per-site cap (paper: unlimited)");
    for cap in [Some(1usize), Some(2), None] {
        let g = geomean_of(lab, &|lab| {
            let mut m = lab.kernel.module.clone();
            let mut w = SiteWeights::from_profile(&lab.profile);
            promote_indirect_calls(
                &mut m,
                &mut w,
                &lab.profile,
                &IcpConfig {
                    budget: Budget::P99_9999,
                    max_targets_per_site: cap,
                },
            );
            run_inliner(
                &mut m,
                &w,
                &lab.profile,
                &InlinerConfig {
                    budget: Budget::P99_9999,
                    ..InlinerConfig::default()
                },
            );
            pibe_harden::apply(&mut m, DefenseSet::ALL);
            m
        });
        let label = cap.map_or("unlimited".to_string(), |c| c.to_string());
        eprintln!("cap={label:>9}  geomean overhead = {g:.2}%");
    }
    c.bench_function("ablation_icp_cap_point", |b| {
        b.iter(|| {
            lab.run_config(&PibeConfig::full(Budget::P99_9, DefenseSet::ALL))
                .0
        })
    });
}

fn ablation_ordering(c: &mut Criterion, lab: &Lab) {
    eprintln!("\n# Ablation: inlining order — PIBE greedy hot-first vs LLVM bottom-up");
    let pibe = geomean_of(lab, &|lab| {
        build_with_inliner(
            lab,
            InlinerConfig {
                budget: Budget::P99_9999,
                ..InlinerConfig::default()
            },
        )
    });
    let llvm = geomean_of(lab, &|lab| {
        let mut m = lab.kernel.module.clone();
        let mut w = SiteWeights::from_profile(&lab.profile);
        promote_indirect_calls(
            &mut m,
            &mut w,
            &lab.profile,
            &IcpConfig {
                budget: Budget::P99_9999,
                max_targets_per_site: None,
            },
        );
        run_llvm_inliner(&mut m, &w, &LlvmInlinerConfig::default());
        pibe_harden::apply(&mut m, DefenseSet::ALL);
        m
    });
    eprintln!("pibe greedy hot-first: {pibe:.2}%   llvm bottom-up: {llvm:.2}%");
    c.bench_function("ablation_ordering_point", |b| {
        b.iter(|| {
            geomean_of(lab, &|lab| {
                build_with_inliner(lab, InlinerConfig::default())
            })
        })
    });
}

fn ablations(c: &mut Criterion) {
    let lab = pibe_bench::quick_lab();
    ablation_rule_thresholds(c, &lab);
    ablation_icp_cap(c, &lab);
    ablation_ordering(c, &lab);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablations
}
criterion_main!(benches);
