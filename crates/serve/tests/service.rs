//! Supervision-machinery tests: watchdog timeouts, bounded retries, the
//! Healthy → Degraded → Frozen state machine, typed quarantine, and
//! last-known-good rollback — all driven through injected [`Rebuilder`]s.

use pibe::{DefenseSet, HardenCache, Image, PibeConfig, PipelineError};
use pibe_ir::{FunctionBuilder, Module, OpKind, SiteId};
use pibe_profile::{Profile, ProfileIssue};
use pibe_serve::{
    EpochOutcome, PibeService, PipelineRebuilder, ProfileDelta, QuarantineReason, Rebuilder,
    ServeConfig, ServiceState,
};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A module with two leaves, a middle function, and a root with three
/// direct calls plus one indirect call — enough surface for ICP and the
/// inliner to make real decisions.
fn fixture() -> (Module, Profile) {
    let mut m = Module::new("svc");
    let mut leaves = Vec::new();
    for i in 0..2 {
        let mut b = FunctionBuilder::new(format!("leaf{i}"), 0);
        b.op(OpKind::Alu);
        b.ret();
        leaves.push(m.add_function(b.build()));
    }
    let d0 = m.fresh_site();
    let d1 = m.fresh_site();
    let mut b = FunctionBuilder::new("mid", 0);
    b.call(d0, leaves[0], 0);
    b.call(d1, leaves[1], 0);
    b.ret();
    let mid = m.add_function(b.build());
    let d2 = m.fresh_site();
    let ind = m.fresh_site();
    let mut b = FunctionBuilder::new("root", 0);
    b.call(d2, mid, 0);
    b.call_indirect(ind, 1);
    b.ret();
    let root = m.add_function(b.build());

    let mut p = Profile::new();
    for _ in 0..40 {
        p.record_direct(d0);
    }
    for _ in 0..30 {
        p.record_direct(d1);
    }
    for _ in 0..50 {
        p.record_direct(d2);
    }
    for _ in 0..20 {
        p.record_indirect(ind, leaves[0]);
    }
    for _ in 0..10 {
        p.record_indirect(ind, leaves[1]);
    }
    for f in [leaves[0], leaves[1], mid, root] {
        for _ in 0..25 {
            p.record_entry(f);
            p.record_return(f);
        }
    }
    (m, p)
}

fn config() -> PibeConfig {
    PibeConfig::lax(DefenseSet::ALL)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        watchdog: Duration::from_secs(20),
        max_retries: 0,
        freeze_after: 2,
        backoff: Duration::ZERO,
        threads: 1,
    }
}

/// A delta touching only return counts: returns drive no profile-guided
/// decision, so the decision surface cannot move — a guaranteed fast path.
fn no_drift_delta(seq: u64) -> ProfileDelta {
    let mut p = Profile::new();
    p.record_return(pibe_ir::FuncId::from_raw(0));
    ProfileDelta {
        shard: 0,
        seq,
        profile: p,
    }
}

/// A delta boosting an inline-selected direct site's weight by five
/// figures: the selected candidate's recorded weight changes, so the
/// surface must drift.
fn drift_delta(seq: u64) -> ProfileDelta {
    let mut p = Profile::new();
    for _ in 0..100_000 {
        p.record_direct(SiteId::from_raw(0));
    }
    ProfileDelta {
        shard: 1,
        seq,
        profile: p,
    }
}

struct FlakyRebuilder {
    remaining_failures: AtomicU32,
}

impl Rebuilder for FlakyRebuilder {
    fn rebuild(
        &self,
        base: &Module,
        profile: &Profile,
        config: &PibeConfig,
        threads: usize,
        cache: &HardenCache,
    ) -> Result<Image, PipelineError> {
        if self
            .remaining_failures
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(PipelineError::StagePanicked {
                message: "transient worker fault".into(),
            });
        }
        PipelineRebuilder.rebuild(base, profile, config, threads, cache)
    }
}

struct HangingRebuilder {
    delay: Duration,
}

impl Rebuilder for HangingRebuilder {
    fn rebuild(
        &self,
        base: &Module,
        profile: &Profile,
        config: &PibeConfig,
        threads: usize,
        cache: &HardenCache,
    ) -> Result<Image, PipelineError> {
        std::thread::sleep(self.delay);
        PipelineRebuilder.rebuild(base, profile, config, threads, cache)
    }
}

struct FatalRebuilder;

impl Rebuilder for FatalRebuilder {
    fn rebuild(
        &self,
        _base: &Module,
        _profile: &Profile,
        _config: &PibeConfig,
        _threads: usize,
        _cache: &HardenCache,
    ) -> Result<Image, PipelineError> {
        Err(PipelineError::ProfileInvalid(ProfileIssue::Empty))
    }
}

#[test]
fn fast_path_serves_the_same_image_without_rebuilding() {
    let (m, p) = fixture();
    let mut svc = PibeService::bootstrap(m, p, config(), serve_config()).expect("bootstrap");
    let before = Arc::clone(svc.image());

    let record = svc.ingest_epoch(vec![no_drift_delta(1)]).clone();
    assert_eq!(record.outcome, EpochOutcome::FastPath);
    assert_eq!(record.accepted, 1);
    assert_eq!(record.drifted_functions, 0);
    assert!(
        Arc::ptr_eq(svc.image(), &before),
        "fast path must not touch the served image"
    );
    assert_eq!(svc.state(), ServiceState::Healthy);
    // The cumulative profile did advance.
    assert_eq!(
        svc.cumulative_profile()
            .return_count(pibe_ir::FuncId::from_raw(0)),
        26
    );
}

#[test]
fn drift_rebuilds_and_promotes_a_new_last_known_good() {
    let (m, p) = fixture();
    let mut svc = PibeService::bootstrap(m, p, config(), serve_config()).expect("bootstrap");
    let before = Arc::clone(svc.image());

    let record = svc.ingest_epoch(vec![drift_delta(1)]).clone();
    match record.outcome {
        EpochOutcome::Rebuilt { drifted, retries } => {
            assert!(drifted > 0, "a boosted selected site must drift");
            assert_eq!(retries, 0);
        }
        ref other => panic!("wanted Rebuilt, got {other:?}"),
    }
    assert!(
        !Arc::ptr_eq(svc.image(), &before),
        "rebuild must promote a fresh image"
    );
    assert_eq!(svc.state(), ServiceState::Healthy);
}

#[test]
fn quarantine_alone_never_degrades_the_service() {
    let (m, p) = fixture();
    let ghost = SiteId::from_raw(m.peek_next_site() + 3);
    let mut svc = PibeService::bootstrap(m, p, config(), serve_config()).expect("bootstrap");

    let mut bad = Profile::new();
    bad.record_direct(ghost);
    let record = svc
        .ingest_epoch(vec![
            ProfileDelta {
                shard: 7,
                seq: 1,
                profile: bad,
            },
            no_drift_delta(2),
        ])
        .clone();

    assert_eq!(record.quarantined, 1);
    assert_eq!(record.accepted, 1);
    assert_eq!(record.outcome, EpochOutcome::FastPath);
    assert_eq!(
        svc.state(),
        ServiceState::Healthy,
        "quarantine is not failure"
    );

    let q = &svc.quarantine()[0];
    assert_eq!(q.delta.shard, 7);
    assert_eq!(q.epoch, 0);
    match &q.reason {
        QuarantineReason::Invalid(issues) => {
            assert!(issues
                .iter()
                .any(|i| matches!(i, ProfileIssue::DanglingDirectSite { .. })));
        }
        other => panic!("wanted Invalid, got {other:?}"),
    }
    // The ghost count never reached the cumulative profile.
    assert_eq!(svc.cumulative_profile().direct_count(ghost), 0);
}

#[test]
fn watchdog_timeout_rolls_back_and_degrades() {
    let (m, p) = fixture();
    let cumulative_before = p.clone();
    let serve = ServeConfig {
        watchdog: Duration::from_millis(30),
        ..serve_config()
    };
    let mut svc = PibeService::bootstrap_with(
        m,
        p,
        config(),
        serve,
        Arc::new(HangingRebuilder {
            delay: Duration::from_millis(400),
        }),
    )
    .expect("bootstrap");
    let before = Arc::clone(svc.image());

    let record = svc.ingest_epoch(vec![drift_delta(1)]).clone();
    match &record.outcome {
        EpochOutcome::RolledBack {
            error, recoverable, ..
        } => {
            assert!(*recoverable, "a timeout is recoverable");
            assert!(error.contains("watchdog"), "{error}");
        }
        other => panic!("wanted RolledBack, got {other:?}"),
    }
    assert_eq!(svc.state(), ServiceState::Degraded);
    assert!(
        Arc::ptr_eq(svc.image(), &before),
        "last-known-good image still served"
    );
    assert_eq!(
        svc.cumulative_profile(),
        &cumulative_before,
        "the failed epoch's merge was rolled back entirely"
    );
}

#[test]
fn transient_failures_are_retried_with_bounded_attempts() {
    let (m, p) = fixture();
    let serve = ServeConfig {
        max_retries: 2,
        ..serve_config()
    };
    let mut svc = PibeService::bootstrap_with(
        m,
        p,
        config(),
        serve,
        Arc::new(FlakyRebuilder {
            remaining_failures: AtomicU32::new(2),
        }),
    )
    .expect("bootstrap");

    let record = svc.ingest_epoch(vec![drift_delta(1)]).clone();
    match record.outcome {
        EpochOutcome::Rebuilt { retries, .. } => assert_eq!(retries, 2),
        ref other => panic!("wanted Rebuilt after retries, got {other:?}"),
    }
    assert_eq!(svc.state(), ServiceState::Healthy);
}

#[test]
fn exhausted_retries_degrade_then_freeze_and_thaw_recovers() {
    let (m, p) = fixture();
    let mut svc = PibeService::bootstrap_with(
        m,
        p,
        config(),
        serve_config(), // freeze_after: 2, max_retries: 0
        Arc::new(FlakyRebuilder {
            remaining_failures: AtomicU32::new(u32::MAX),
        }),
    )
    .expect("bootstrap");
    let before = Arc::clone(svc.image());

    svc.ingest_epoch(vec![drift_delta(1)]);
    assert_eq!(svc.state(), ServiceState::Degraded);
    svc.ingest_epoch(vec![drift_delta(2)]);
    assert_eq!(svc.state(), ServiceState::Frozen, "2 consecutive failures");

    // Frozen: epochs are refused outright — not merged, not rebuilt.
    let cumulative = svc.cumulative_profile().clone();
    let record = svc.ingest_epoch(vec![no_drift_delta(3)]).clone();
    assert_eq!(record.outcome, EpochOutcome::Frozen);
    assert_eq!(record.accepted, 0);
    assert_eq!(svc.cumulative_profile(), &cumulative);
    assert!(Arc::ptr_eq(svc.image(), &before));

    // Operator thaw: the loop runs again (and fails again, back to
    // Degraded — the rebuilder is still broken).
    svc.thaw();
    assert_eq!(svc.state(), ServiceState::Healthy);
    svc.ingest_epoch(vec![drift_delta(4)]);
    assert_eq!(svc.state(), ServiceState::Degraded);

    // The journal replays to exactly the live state.
    let replay = svc.journal().replay();
    assert_eq!(replay.state, svc.state());
    assert_eq!(replay.rollbacks, 3);
    assert_eq!(replay.frozen_epochs, 1);
}

#[test]
fn unrecoverable_errors_freeze_immediately_without_retries() {
    let (m, p) = fixture();
    let serve = ServeConfig {
        max_retries: 5,
        freeze_after: 100,
        ..serve_config()
    };
    let mut svc = PibeService::bootstrap_with(m, p, config(), serve, Arc::new(FatalRebuilder))
        .expect("bootstrap");

    let record = svc.ingest_epoch(vec![drift_delta(1)]).clone();
    match record.outcome {
        EpochOutcome::RolledBack {
            recoverable,
            retries,
            ..
        } => {
            assert!(!recoverable);
            assert_eq!(retries, 0, "unrecoverable errors are never retried");
        }
        ref other => panic!("wanted RolledBack, got {other:?}"),
    }
    assert_eq!(svc.state(), ServiceState::Frozen);
    assert_eq!(svc.journal().replay().state, ServiceState::Frozen);
}

#[test]
fn merge_overflow_quarantines_the_delta_and_keeps_the_epoch_atomic() {
    let (m, mut initial) = fixture();
    // Push one counter's cumulative value to the brink via binary merge
    // composition (64 merges, not 2^64 recordings). Return counts feed no
    // optimization decision, so the near-saturated value is inert in the
    // pipeline — only the merge arithmetic is on trial here.
    let hot = pibe_ir::FuncId::from_raw(0);
    let mut unit = Profile::new();
    unit.record_return(hot);
    let mut power = unit.clone();
    let mut bits = u64::MAX - 30; // fixture already holds 25 returns
    let mut boost = Profile::new();
    loop {
        if bits & 1 == 1 {
            boost.merge(&power);
        }
        bits >>= 1;
        if bits == 0 {
            break;
        }
        let double = power.clone();
        power.merge(&double);
    }
    initial.merge(&boost);
    assert_eq!(initial.return_count(hot), u64::MAX - 5);

    let mut svc = PibeService::bootstrap(m, initial, config(), serve_config()).expect("bootstrap");
    let cumulative_before = svc.cumulative_profile().clone();

    let mut overflowing = Profile::new();
    for _ in 0..10 {
        overflowing.record_return(hot);
    }
    let record = svc
        .ingest_epoch(vec![
            ProfileDelta {
                shard: 3,
                seq: 1,
                profile: overflowing,
            },
            no_drift_delta(2),
        ])
        .clone();

    assert_eq!(record.overflow_rejected, 1);
    assert_eq!(record.accepted, 1, "the clean shard still merged");
    assert_eq!(svc.state(), ServiceState::Healthy);
    let q = svc
        .quarantine()
        .iter()
        .find(|q| q.delta.shard == 3)
        .expect("overflow delta quarantined");
    match &q.reason {
        QuarantineReason::Overflow(overflows) => {
            assert_eq!(
                overflows,
                &vec![pibe_profile::MergeOverflow::Return { func: hot }]
            );
        }
        other => panic!("wanted Overflow, got {other:?}"),
    }
    // Atomicity: only the accepted delta's single return landed — the
    // rejected delta left no trace in the cumulative counts.
    assert_eq!(
        svc.cumulative_profile().return_count(hot),
        cumulative_before.return_count(hot) + 1
    );
}

#[test]
fn journal_survives_json_and_replays_to_the_live_state() {
    let (m, p) = fixture();
    let mut svc = PibeService::bootstrap(m, p, config(), serve_config()).expect("bootstrap");
    svc.ingest_epoch(vec![no_drift_delta(1)]);
    svc.ingest_epoch(vec![drift_delta(2)]);
    svc.ingest_epoch(vec![no_drift_delta(3)]);

    let text = serde_json::to_string_pretty(svc.journal()).expect("serializes");
    let back: pibe_serve::EpochJournal = serde_json::from_str(&text).expect("parses");
    assert_eq!(&back, svc.journal());
    let replay = back.replay();
    assert_eq!(replay.state, svc.state());
    assert_eq!(replay.fast_paths, 2);
    assert_eq!(replay.rebuilds, 1);
}
