//! The continuous-PGO chaos soak: 200 epochs of sharded profile deltas —
//! a fair fraction of them adversarially corrupted — against a generated
//! module, with the incremental-vs-full bit-identity oracle checked at
//! **every** epoch.
//!
//! This is the test that makes the decision-surface fast path honest: if
//! the surface ever under-approximates drift (skipping a rebuild that
//! would have changed the image) or the warm harden cache ever leaks a
//! stale function body, some epoch's served image diverges from the
//! from-scratch rebuild and [`pibe_difftest::bit_identical`] names the
//! function.

use pibe::{DefenseSet, Image, PibeConfig};
use pibe_difftest::{gen_case, profile_case, GenConfig};
use pibe_serve::{DeltaStream, EpochOutcome, PibeService, ServeConfig, ServiceState, StreamConfig};
use std::time::Duration;

const EPOCHS: u64 = 200;

#[test]
fn soak_200_epochs_of_corrupted_shards_stays_bit_identical_and_never_freezes() {
    let case = gen_case(
        0x50AC_2026,
        &GenConfig {
            min_funcs: 14,
            max_funcs: 18,
            ..GenConfig::default()
        },
    );
    let initial = profile_case(&case);
    let config = PibeConfig::lax(DefenseSet::ALL).with_dce(true);
    let serve = ServeConfig {
        watchdog: Duration::from_secs(60),
        max_retries: 1,
        freeze_after: 3,
        backoff: Duration::ZERO,
        threads: 1,
    };

    let mut stream = DeltaStream::new(
        &case.module,
        &initial,
        StreamConfig {
            shards: 4,
            corrupt_permille: 350,
            drift_every: 5,
            drift_boost: 40_000,
        },
        0xC0FF_EE00_2026,
    );

    let mut svc = PibeService::bootstrap(case.module.clone(), initial.clone(), config, serve)
        .expect("initial build");

    for epoch in 0..EPOCHS {
        let deltas = stream.epoch_deltas(epoch);
        let record = svc.ingest_epoch(deltas);
        assert_ne!(
            record.outcome,
            EpochOutcome::Frozen,
            "epoch {epoch} was refused"
        );
        assert_ne!(
            svc.state(),
            ServiceState::Frozen,
            "recoverable faults must never freeze the service (epoch {epoch})"
        );

        // The oracle: a from-scratch pipeline run over the same cumulative
        // profile must produce exactly the image being served.
        let full = Image::builder(&case.module)
            .profile(svc.cumulative_profile())
            .config(config)
            .threads(1)
            .build()
            .expect("from-scratch rebuild");
        if let Err(mismatch) = pibe_difftest::bit_identical(&svc.image().module, &full.module) {
            panic!("epoch {epoch}: served image is not bit-identical: {mismatch}");
        }
    }

    let stats = stream.stats();
    assert_eq!(stats.epochs, EPOCHS);
    assert!(
        stats.corrupted * 5 >= stats.deltas,
        "chaos kept below 20%: {} corrupted of {} deltas",
        stats.corrupted,
        stats.deltas
    );

    let replay = svc.journal().replay();
    assert_eq!(replay.state, svc.state(), "journal replay diverged");
    assert!(
        replay.fast_paths > 0,
        "no epoch took the no-drift fast path"
    );
    assert!(replay.rebuilds > 0, "no drift epoch forced a rebuild");
    assert_eq!(replay.rollbacks, 0, "clean rebuilds never roll back");
    // Every landed corruption was caught by validation and quarantined
    // (thinning can also produce empty shards, which quarantine as
    // advisory-invalid — hence >=, not ==).
    let invalid = svc.quarantine().iter().filter(|q| q.is_invalid()).count() as u64;
    assert!(
        invalid >= stats.corrupted,
        "{} corrupted deltas but only {invalid} invalid quarantines",
        stats.corrupted
    );
    assert_eq!(
        replay.quarantined, invalid,
        "journal quarantine counters disagree with the quarantine store"
    );

    // The warm harden cache actually got reuse across rebuild epochs.
    let cache = svc.harden_cache_stats();
    assert!(
        cache.hits > 0,
        "rebuilds never reused a hardened function: {cache:?}"
    );
}
