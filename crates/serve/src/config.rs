//! Service configuration: the `PIBE_SERVE_*` environment knobs with typed
//! parse errors.
//!
//! Every knob fails loudly: a typo'd `PIBE_SERVE_RETRIES=two` returns a
//! [`ServeConfigError`] naming the variable, the rejected value, and the
//! reason — it never silently falls back to a default the operator did not
//! choose (the same contract `PIBE_BUILD_THREADS` keeps through
//! [`pibe_ir::par::threads_from_env`]).

use pibe_ir::par::EnvThreadsError;
use std::fmt;
use std::time::Duration;

/// Environment variable bounding one rebuild attempt's wall-clock time, in
/// milliseconds.
pub const WATCHDOG_MS_VAR: &str = "PIBE_SERVE_WATCHDOG_MS";
/// Environment variable selecting how many times a recoverable rebuild
/// failure is retried within one epoch.
pub const RETRIES_VAR: &str = "PIBE_SERVE_RETRIES";
/// Environment variable selecting how many *consecutive* failed epochs
/// freeze the service.
pub const FREEZE_AFTER_VAR: &str = "PIBE_SERVE_FREEZE_AFTER";
/// Environment variable selecting the base retry backoff, in milliseconds.
pub const BACKOFF_MS_VAR: &str = "PIBE_SERVE_BACKOFF_MS";

/// Tuning of the epoch loop's supervision machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Upper bound on one rebuild attempt's wall-clock time. An attempt
    /// exceeding it is abandoned (the service keeps serving its
    /// last-known-good image) and counts as a recoverable failure.
    pub watchdog: Duration,
    /// Recoverable rebuild failures retried per epoch (0 = one attempt).
    pub max_retries: u32,
    /// Consecutive failed epochs after which the service freezes (≥ 1).
    pub freeze_after: u32,
    /// Base backoff slept before retry `k` as `backoff << k`
    /// (`Duration::ZERO` disables sleeping — what the tests use).
    pub backoff: Duration,
    /// Worker threads per rebuild (the pipeline's per-function stages).
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            watchdog: Duration::from_millis(30_000),
            max_retries: 2,
            freeze_after: 3,
            backoff: Duration::from_millis(25),
            threads: 1,
        }
    }
}

/// Why a `PIBE_SERVE_*` value was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobErrorKind {
    /// Not an unsigned integer.
    NotANumber,
    /// Parsed, but zero where the knob requires a positive value.
    Zero,
}

/// A malformed serve-loop environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeConfigError {
    /// A `PIBE_SERVE_*` knob failed to parse.
    Knob {
        /// The environment variable that was set.
        var: &'static str,
        /// The rejected value, as found in the environment.
        value: String,
        /// Why it was rejected.
        reason: KnobErrorKind,
    },
    /// `PIBE_BUILD_THREADS` failed to parse.
    Threads(EnvThreadsError),
}

impl fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeConfigError::Knob { var, value, reason } => match reason {
                KnobErrorKind::NotANumber => write!(
                    f,
                    "{var}={value:?} is not a count (expected an unsigned integer)"
                ),
                KnobErrorKind::Zero => write!(f, "{var}=0 is out of range (must be positive)"),
            },
            ServeConfigError::Threads(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ServeConfigError {}

impl From<EnvThreadsError> for ServeConfigError {
    fn from(e: EnvThreadsError) -> Self {
        ServeConfigError::Threads(e)
    }
}

/// Parses one knob value (attributed to `var`), requiring a positive value
/// when `nonzero`.
///
/// # Errors
/// Returns [`ServeConfigError::Knob`] when the value is malformed.
pub fn parse_knob(var: &'static str, value: &str, nonzero: bool) -> Result<u64, ServeConfigError> {
    match value.trim().parse::<u64>() {
        Ok(0) if nonzero => Err(ServeConfigError::Knob {
            var,
            value: value.to_string(),
            reason: KnobErrorKind::Zero,
        }),
        Ok(n) => Ok(n),
        Err(_) => Err(ServeConfigError::Knob {
            var,
            value: value.to_string(),
            reason: KnobErrorKind::NotANumber,
        }),
    }
}

fn knob_from_env(var: &'static str, nonzero: bool) -> Result<Option<u64>, ServeConfigError> {
    match std::env::var(var) {
        Ok(v) => parse_knob(var, &v, nonzero).map(Some),
        Err(_) => Ok(None),
    }
}

impl ServeConfig {
    /// Reads the configuration from the environment, starting from
    /// [`ServeConfig::default`] and overriding each knob that is set.
    ///
    /// # Errors
    /// Returns the first [`ServeConfigError`] for a set-but-malformed
    /// variable; an unset variable keeps its default.
    pub fn from_env() -> Result<Self, ServeConfigError> {
        let mut cfg = ServeConfig::default();
        if let Some(ms) = knob_from_env(WATCHDOG_MS_VAR, true)? {
            cfg.watchdog = Duration::from_millis(ms);
        }
        if let Some(n) = knob_from_env(RETRIES_VAR, false)? {
            cfg.max_retries = n.min(u32::MAX as u64) as u32;
        }
        if let Some(n) = knob_from_env(FREEZE_AFTER_VAR, true)? {
            cfg.freeze_after = n.min(u32::MAX as u64) as u32;
        }
        if let Some(ms) = knob_from_env(BACKOFF_MS_VAR, false)? {
            cfg.backoff = Duration::from_millis(ms);
        }
        if let Some(threads) = pibe_ir::par::threads_from_env()? {
            cfg.threads = threads;
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_parse_and_reject_with_typed_errors() {
        assert_eq!(parse_knob(RETRIES_VAR, "0", false), Ok(0));
        assert_eq!(parse_knob(WATCHDOG_MS_VAR, " 500 ", true), Ok(500));

        let err = parse_knob(FREEZE_AFTER_VAR, "0", true).unwrap_err();
        assert!(matches!(
            err,
            ServeConfigError::Knob {
                var: FREEZE_AFTER_VAR,
                reason: KnobErrorKind::Zero,
                ..
            }
        ));
        assert!(err.to_string().contains(FREEZE_AFTER_VAR));

        for bad in ["two", "-1", "1.5", ""] {
            let err = parse_knob(RETRIES_VAR, bad, false).unwrap_err();
            assert!(
                matches!(
                    err,
                    ServeConfigError::Knob {
                        reason: KnobErrorKind::NotANumber,
                        ..
                    }
                ),
                "{bad:?}: {err}"
            );
        }
    }

    #[test]
    fn thread_errors_carry_through() {
        let e = pibe_ir::par::parse_threads(pibe_ir::par::THREADS_VAR, "many").unwrap_err();
        let wrapped = ServeConfigError::from(e.clone());
        assert_eq!(wrapped, ServeConfigError::Threads(e));
        assert!(wrapped.to_string().contains("PIBE_BUILD_THREADS"));
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.freeze_after >= 1);
        assert!(cfg.watchdog > Duration::ZERO);
        assert_eq!(cfg.threads, 1);
    }
}
