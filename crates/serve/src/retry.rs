//! Deterministic bounded retry with exponential backoff.

use std::time::Duration;

/// A bounded retry schedule: at most `1 + max_retries` attempts, sleeping
/// `base << attempt` before retry `attempt` (attempts are numbered from 0;
/// no sleep precedes the first attempt). Purely arithmetic — two services
/// configured identically back off identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt.
    pub max_retries: u32,
    /// Base backoff; `Duration::ZERO` disables sleeping entirely.
    pub base: Duration,
}

impl RetryPolicy {
    /// The backoff slept before retry number `retry` (1-based: the sleep
    /// preceding the second attempt is `backoff(1) = base << 0`).
    /// Saturates instead of overflowing for absurd retry counts.
    pub fn backoff(&self, retry: u32) -> Duration {
        if retry == 0 || self.base.is_zero() {
            return Duration::ZERO;
        }
        let shift = (retry - 1).min(16);
        self.base
            .checked_mul(1u32 << shift)
            .unwrap_or(Duration::MAX)
    }

    /// Total attempts the policy allows.
    pub fn attempts(&self) -> u32 {
        self.max_retries.saturating_add(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_deterministically() {
        let p = RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(10),
        };
        assert_eq!(p.attempts(), 4);
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        // Same policy, same schedule.
        assert_eq!(p.backoff(3), p.backoff(3));
    }

    #[test]
    fn zero_base_never_sleeps_and_huge_retries_saturate() {
        let p = RetryPolicy {
            max_retries: 2,
            base: Duration::ZERO,
        };
        assert_eq!(p.backoff(7), Duration::ZERO);
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base: Duration::from_secs(u64::MAX / 2),
        };
        assert_eq!(p.backoff(40), Duration::MAX);
        assert_eq!(p.attempts(), u32::MAX);
    }
}
