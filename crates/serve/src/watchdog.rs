//! Wall-clock supervision of one rebuild attempt.

use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How a supervised computation ended.
#[derive(Debug)]
pub enum WatchdogVerdict<T> {
    /// The computation finished within the deadline.
    Completed(T),
    /// The deadline elapsed first. The worker thread is *detached*, not
    /// killed — it finishes (or hangs) in the background and its result is
    /// dropped on the floor; the supervisor moves on. `waited` is the
    /// actual wall-clock time spent.
    TimedOut {
        /// Wall-clock time waited before giving up.
        waited: Duration,
    },
    /// The computation panicked; the payload (when it was a string) is
    /// captured.
    Panicked {
        /// The panic payload, or a placeholder for non-string payloads.
        message: String,
    },
}

/// Runs `f` on a fresh worker thread and waits at most `timeout` for its
/// result.
///
/// Panics inside `f` are contained by `catch_unwind` and surfaced as
/// [`WatchdogVerdict::Panicked`]. On timeout the worker is detached: Rust
/// offers no safe thread cancellation, so a truly wedged rebuild leaks one
/// thread — which is precisely why the serve loop pairs the watchdog with
/// a freeze threshold instead of retrying forever.
pub fn supervise<T, F>(timeout: Duration, f: F) -> WatchdogVerdict<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let started = Instant::now();
    std::thread::Builder::new()
        .name("pibe-serve-rebuild".into())
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            // A dropped receiver (timeout) makes this send fail; that is
            // fine — the result is stale by definition.
            let _ = tx.send(result);
        })
        .expect("spawn rebuild worker");

    match rx.recv_timeout(timeout) {
        Ok(Ok(value)) => WatchdogVerdict::Completed(value),
        Ok(Err(payload)) => WatchdogVerdict::Panicked {
            message: payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into()),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => WatchdogVerdict::TimedOut {
            waited: started.elapsed(),
        },
        // The worker died without sending — only possible if the send
        // itself raced the catch_unwind; treat it like a panic.
        Err(mpsc::RecvTimeoutError::Disconnected) => WatchdogVerdict::Panicked {
            message: "rebuild worker disappeared".into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_beats_the_deadline() {
        match supervise(Duration::from_secs(5), || 41 + 1) {
            WatchdogVerdict::Completed(42) => {}
            other => panic!("wanted Completed(42), got {other:?}"),
        }
    }

    #[test]
    fn a_wedged_worker_times_out() {
        let verdict = supervise(Duration::from_millis(20), || {
            std::thread::sleep(Duration::from_secs(30));
            0u8
        });
        match verdict {
            WatchdogVerdict::TimedOut { waited } => {
                assert!(waited >= Duration::from_millis(20));
            }
            other => panic!("wanted TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn panics_are_contained_with_their_message() {
        let verdict = supervise(Duration::from_secs(5), || {
            panic!("rebuild exploded");
            #[allow(unreachable_code)]
            0u8
        });
        match verdict {
            WatchdogVerdict::Panicked { message } => {
                assert!(message.contains("rebuild exploded"), "{message}");
            }
            other => panic!("wanted Panicked, got {other:?}"),
        }
    }
}
