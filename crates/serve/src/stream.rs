//! Deterministic synthesis of epoch delta streams — clean shard reports,
//! decision-drifting hot-spot shifts, and chaos-corrupted deltas — for the
//! soak suite and the serve benchmark.

use crate::delta::ProfileDelta;
use pibe_ir::{Module, SiteId};
use pibe_profile::{corrupt_profile, ChaosRng, Profile};

/// Shape of the synthesized stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Shard reports per epoch.
    pub shards: u32,
    /// Per-delta corruption probability, in permille (350 = 35% of deltas
    /// get a [`pibe_profile::ProfileChaos`] corruption attempt).
    pub corrupt_permille: u32,
    /// Every `drift_every`-th epoch (1-based; 0 disables) ships a hot-spot
    /// shift: one shard's delta massively boosts a rotating direct call
    /// site, enough to flip budget-prefix decisions.
    pub drift_every: u64,
    /// Counts added to the boosted site on drift epochs.
    pub drift_boost: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 4,
            corrupt_permille: 350,
            drift_every: 5,
            drift_boost: 40_000,
        }
    }
}

/// Running totals of what the stream emitted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Epochs synthesized.
    pub epochs: u64,
    /// Deltas emitted.
    pub deltas: u64,
    /// Deltas carrying a *landed* corruption (the quarantine's workload).
    pub corrupted: u64,
    /// Hot-spot drift deltas emitted.
    pub drifts: u64,
}

/// A deterministic generator of per-epoch [`ProfileDelta`] batches over a
/// fixed base module and profile. Same seed and config, same stream — on
/// every machine.
#[derive(Debug)]
pub struct DeltaStream<'a> {
    module: &'a Module,
    base: &'a Profile,
    cfg: StreamConfig,
    seed: u64,
    direct_sites: Vec<SiteId>,
    stats: StreamStats,
    seq: u64,
}

impl<'a> DeltaStream<'a> {
    /// A stream over `module`'s profile universe, thinning and perturbing
    /// `base` (a clean profile of the module).
    pub fn new(module: &'a Module, base: &'a Profile, cfg: StreamConfig, seed: u64) -> Self {
        let mut direct_sites: Vec<SiteId> = base.iter_direct().map(|(s, _)| s).collect();
        direct_sites.sort();
        DeltaStream {
            module,
            base,
            cfg,
            seed,
            direct_sites,
            stats: StreamStats::default(),
            seq: 0,
        }
    }

    /// What the stream has emitted so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Synthesizes epoch `epoch`'s shard reports. Deterministic in
    /// `(seed, cfg, epoch)`; the mutable borrow only feeds [`Self::stats`]
    /// and the per-shard sequence numbers.
    pub fn epoch_deltas(&mut self, epoch: u64) -> Vec<ProfileDelta> {
        let mut out = Vec::with_capacity(self.cfg.shards as usize);
        let drift_epoch =
            self.cfg.drift_every != 0 && epoch % self.cfg.drift_every == self.cfg.drift_every - 1;
        for shard in 0..self.cfg.shards {
            let mut rng = ChaosRng::new(
                self.seed
                    ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ u64::from(shard).wrapping_mul(0xD1B5_4A32_D192_ED03),
            );
            let mut profile = self.thinned_delta(&mut rng);

            if drift_epoch && shard == 0 && !self.direct_sites.is_empty() {
                // Rotate the boosted site so successive drift epochs move
                // *different* decisions.
                let site = self.direct_sites
                    [(epoch / self.cfg.drift_every) as usize % self.direct_sites.len()];
                for _ in 0..self.cfg.drift_boost {
                    profile.record_direct(site);
                }
                self.stats.drifts += 1;
            }

            if rng.below(1000) < u64::from(self.cfg.corrupt_permille) {
                let corrupt_seed = rng.below(u64::MAX);
                let (corrupted, _kind, landed) =
                    corrupt_profile(&profile, self.module, corrupt_seed);
                if landed {
                    profile = corrupted;
                    self.stats.corrupted += 1;
                }
            }

            self.seq += 1;
            self.stats.deltas += 1;
            out.push(ProfileDelta {
                shard,
                seq: self.seq,
                profile,
            });
        }
        self.stats.epochs += 1;
        out
    }

    /// A clean shard report: a pseudorandom thinning of the base profile
    /// across all four counter dimensions.
    fn thinned_delta(&self, rng: &mut ChaosRng) -> Profile {
        let mut d = Profile::new();
        for (site, count) in self.base.iter_direct() {
            for _ in 0..(count % (2 + rng.below(7))) {
                d.record_direct(site);
            }
        }
        for (site, entries) in self.base.iter_indirect() {
            for e in entries {
                for _ in 0..(e.count % (2 + rng.below(5))) {
                    d.record_indirect(site, e.target);
                }
            }
        }
        for (f, c) in self.base.iter_entries() {
            for _ in 0..(c % (1 + rng.below(4))) {
                d.record_entry(f);
            }
        }
        for (f, c) in self.base.iter_returns() {
            for _ in 0..(c % (1 + rng.below(4))) {
                d.record_return(f);
            }
        }
        d
    }
}
