//! The continuous-PGO service: ingest → quarantine → merge → drift → (fast
//! path | guarded rebuild) → last-known-good bookkeeping.

use crate::config::ServeConfig;
use crate::delta::{ProfileDelta, QuarantineReason, QuarantinedDelta};
use crate::retry::RetryPolicy;
use crate::state::{EpochJournal, EpochOutcome, EpochRecord, ServiceState};
use crate::watchdog::{supervise, WatchdogVerdict};
use pibe::{HardenCache, Image, PibeConfig, PipelineError};
use pibe_ir::Module;
use pibe_profile::{DecisionSurface, DriftConfig, IcpSpec, InlineSpec, ModuleIndex, Profile};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Derives the drift analysis's knobs from the pipeline configuration, so
/// the surface tracks exactly the decisions this configuration lets the
/// passes make.
pub fn drift_config(config: &PibeConfig) -> DriftConfig {
    DriftConfig {
        icp: config.icp.map(|icp| IcpSpec {
            budget: icp.budget,
            max_targets_per_site: icp.max_targets_per_site,
        }),
        inline: config.inliner.map(|inl| InlineSpec {
            budget: inl.budget,
            lax_budget: inl.lax_heuristics.then_some(inl.lax_budget),
        }),
        dce: config.dce,
    }
}

/// How one supervised rebuild attempt failed.
#[derive(Debug)]
pub enum RebuildFailure {
    /// The pipeline returned a typed error.
    Pipeline(PipelineError),
    /// The watchdog gave up on the attempt.
    TimedOut {
        /// Wall-clock time waited before abandoning the attempt.
        waited: Duration,
    },
}

impl RebuildFailure {
    /// Whether the supervisor may retry / continue serving past this.
    /// Timeouts are recoverable by construction: the inputs are intact and
    /// a later attempt (or epoch) may be faster.
    pub fn is_recoverable(&self) -> bool {
        match self {
            RebuildFailure::Pipeline(e) => e.is_recoverable(),
            RebuildFailure::TimedOut { .. } => true,
        }
    }
}

impl fmt::Display for RebuildFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebuildFailure::Pipeline(e) => e.fmt(f),
            RebuildFailure::TimedOut { waited } => {
                write!(f, "rebuild exceeded the watchdog deadline ({waited:?})")
            }
        }
    }
}

/// The pluggable rebuild seam. Production is [`PipelineRebuilder`]; the
/// fault-injection tests substitute flaky, hanging, or fatally-broken
/// implementations to drive the supervision machinery through every path.
pub trait Rebuilder: Send + Sync {
    /// Builds an image of `base` under `profile` and `config`.
    ///
    /// # Errors
    /// Returns the pipeline's typed error when the build fails.
    fn rebuild(
        &self,
        base: &Module,
        profile: &Profile,
        config: &PibeConfig,
        threads: usize,
        cache: &HardenCache,
    ) -> Result<Image, PipelineError>;
}

/// The production rebuilder: the real pipeline, re-entered with the warm
/// harden cache attached.
#[derive(Debug, Default, Clone, Copy)]
pub struct PipelineRebuilder;

impl Rebuilder for PipelineRebuilder {
    fn rebuild(
        &self,
        base: &Module,
        profile: &Profile,
        config: &PibeConfig,
        threads: usize,
        cache: &HardenCache,
    ) -> Result<Image, PipelineError> {
        Image::builder(base)
            .profile(profile)
            .config(*config)
            .threads(threads)
            .warm_harden_cache(cache)
            .build()
    }
}

/// The fault-tolerant continuous-PGO epoch loop.
///
/// The service owns a base module, a cumulative profile, and the
/// last-known-good image built from them. Each
/// [`ingest_epoch`](Self::ingest_epoch) call:
///
/// 1. **validates** every delta against the base module and quarantines the
///    dirty ones with their typed [`ProfileIssue`](pibe_profile::ProfileIssue)s
///    — a corrupted count never reaches the cumulative profile;
/// 2. **merges** the survivors shard-by-shard into a scratch clone via
///    [`Profile::merge_checked`], rejecting (and quarantining) any delta
///    whose merge would saturate a counter — per-delta atomicity;
/// 3. **detects drift**: the scratch profile's [`DecisionSurface`] is
///    compared against the surface the served image was built from. Surface
///    equality proves every profile-driven decision — promoted targets,
///    inline prefix, DCE roots — is unchanged, so the image *cannot* differ:
///    the epoch takes the fast path (cumulative advances, no pipeline runs);
/// 4. on drift, runs a **guarded rebuild** — watchdog-bounded, retried with
///    deterministic backoff on recoverable failures, warm-harden-cache
///    accelerated — and promotes the result to last-known-good;
/// 5. on exhausted failure, **rolls back** the epoch's merge entirely and
///    keeps serving the previous last-known-good image, degrading (and
///    eventually freezing) the [`ServiceState`].
///
/// Everything is journaled; [`EpochJournal::replay`] over the journal
/// reproduces the live state machine exactly.
pub struct PibeService {
    base: Arc<Module>,
    index: ModuleIndex,
    config: PibeConfig,
    serve: ServeConfig,
    drift: DriftConfig,
    cumulative: Profile,
    surface: DecisionSurface,
    lkg: Arc<Image>,
    state: ServiceState,
    consecutive_failures: u32,
    journal: EpochJournal,
    quarantine: Vec<QuarantinedDelta>,
    harden_cache: Arc<HardenCache>,
    rebuilder: Arc<dyn Rebuilder>,
}

impl fmt::Debug for PibeService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PibeService")
            .field("base", &self.base.name())
            .field("state", &self.state)
            .field("epochs", &self.journal.records.len())
            .field("quarantine", &self.quarantine.len())
            .finish()
    }
}

impl PibeService {
    /// Bootstraps the service: builds the initial image from `initial`
    /// (typically a trusted offline profile) and records it as
    /// last-known-good. The bootstrap build is *not* supervised — a service
    /// that cannot build its first image has nothing to fall back to, so
    /// the error propagates.
    ///
    /// # Errors
    /// Returns the pipeline's error when the initial build fails.
    pub fn bootstrap(
        base: Module,
        initial: Profile,
        config: PibeConfig,
        serve: ServeConfig,
    ) -> Result<Self, PipelineError> {
        Self::bootstrap_with(base, initial, config, serve, Arc::new(PipelineRebuilder))
    }

    /// [`bootstrap`](Self::bootstrap) with an explicit [`Rebuilder`] — the
    /// fault-injection seam (the bootstrap build itself always uses the
    /// real pipeline).
    ///
    /// # Errors
    /// Returns the pipeline's error when the initial build fails.
    pub fn bootstrap_with(
        base: Module,
        initial: Profile,
        config: PibeConfig,
        serve: ServeConfig,
        rebuilder: Arc<dyn Rebuilder>,
    ) -> Result<Self, PipelineError> {
        let harden_cache = Arc::new(HardenCache::new());
        let image = Image::builder(&base)
            .profile(&initial)
            .config(config)
            .threads(serve.threads)
            .warm_harden_cache(&harden_cache)
            .build()?;
        let index = ModuleIndex::new(&base);
        let drift = drift_config(&config);
        let surface = DecisionSurface::compute(&index, &initial, &drift);
        Ok(PibeService {
            base: Arc::new(base),
            index,
            config,
            serve,
            drift,
            cumulative: initial,
            surface,
            lkg: Arc::new(image),
            state: ServiceState::Healthy,
            consecutive_failures: 0,
            journal: EpochJournal::new(serve.freeze_after),
            quarantine: Vec::new(),
            harden_cache,
            rebuilder,
        })
    }

    /// The image currently served — always the last-known-good build.
    pub fn image(&self) -> &Arc<Image> {
        &self.lkg
    }

    /// The service's health.
    pub fn state(&self) -> ServiceState {
        self.state
    }

    /// The cumulative profile the served image was built from.
    pub fn cumulative_profile(&self) -> &Profile {
        &self.cumulative
    }

    /// The replayable epoch journal.
    pub fn journal(&self) -> &EpochJournal {
        &self.journal
    }

    /// Every delta rejected so far, with full attribution.
    pub fn quarantine(&self) -> &[QuarantinedDelta] {
        &self.quarantine
    }

    /// Warm harden-cache effectiveness counters.
    pub fn harden_cache_stats(&self) -> pibe::HardenCacheStats {
        self.harden_cache.stats()
    }

    /// Operator intervention: unfreezes (or un-degrades) the service and
    /// zeroes the consecutive-failure counter. The next drifting epoch gets
    /// a fresh chance to rebuild.
    pub fn thaw(&mut self) {
        self.state = ServiceState::Healthy;
        self.consecutive_failures = 0;
        self.journal.record_thaw();
    }

    /// Processes one epoch of shard deltas; see the type-level docs for the
    /// phase breakdown. Returns the journal record it appended.
    pub fn ingest_epoch(&mut self, deltas: Vec<ProfileDelta>) -> &EpochRecord {
        let epoch = self.journal.next_epoch();
        let _span = pibe_trace::span_args("serve.epoch", || {
            vec![
                ("epoch", pibe_trace::Value::from(epoch)),
                ("deltas", pibe_trace::Value::from(deltas.len() as u64)),
            ]
        });
        let total = deltas.len();

        if self.state == ServiceState::Frozen {
            pibe_trace::event("serve.frozen_epoch");
            return self.finish(EpochRecord {
                epoch,
                deltas: total,
                accepted: 0,
                quarantined: 0,
                overflow_rejected: 0,
                drifted_functions: 0,
                outcome: EpochOutcome::Frozen,
                state_after: self.state,
            });
        }

        // Phase 1: validation quarantine. Rejection is per-delta and does
        // not touch the state machine — a noisy shard must not degrade a
        // service whose pipeline is fine.
        let mut quarantined = 0;
        let mut clean = Vec::with_capacity(deltas.len());
        for delta in deltas {
            let health = delta.profile.validate_against(&self.base);
            if health.is_clean() {
                clean.push(delta);
            } else {
                quarantined += 1;
                pibe_trace::event_args("serve.quarantine", || {
                    vec![
                        ("shard", pibe_trace::Value::from(u64::from(delta.shard))),
                        (
                            "issues",
                            pibe_trace::Value::from(health.issues().len() as u64),
                        ),
                    ]
                });
                self.quarantine.push(QuarantinedDelta {
                    epoch,
                    reason: QuarantineReason::Invalid(health.issues().to_vec()),
                    delta,
                });
            }
        }

        // Phase 2: shard-by-shard checked merge into a scratch clone. The
        // cumulative profile is only replaced once the whole epoch commits.
        let mut scratch = self.cumulative.clone();
        let mut overflow_rejected = 0;
        let mut accepted = 0;
        for delta in clean {
            let mut trial = scratch.clone();
            let report = trial.merge_checked(&delta.profile);
            if report.is_clean() {
                scratch = trial;
                accepted += 1;
            } else {
                overflow_rejected += 1;
                self.quarantine.push(QuarantinedDelta {
                    epoch,
                    reason: QuarantineReason::Overflow(report.overflows),
                    delta,
                });
            }
        }

        // Phase 3: drift detection against the served image's surface.
        let new_surface = DecisionSurface::compute(&self.index, &scratch, &self.drift);
        let report = self.surface.diff(&new_surface);
        let drifted = report.drifted_functions();

        let outcome = if report.unchanged {
            // Surface equality ⇒ identical pipeline decisions ⇒ the image
            // the pipeline would build is bit-identical to the one being
            // served. Advance the profile, skip the pipeline.
            self.cumulative = scratch;
            pibe_trace::event("serve.fast_path");
            EpochOutcome::FastPath
        } else {
            match self.supervised_rebuild(&scratch) {
                Ok((image, retries)) => {
                    self.lkg = Arc::new(image);
                    self.surface = new_surface;
                    self.cumulative = scratch;
                    self.state = ServiceState::Healthy;
                    self.consecutive_failures = 0;
                    EpochOutcome::Rebuilt { drifted, retries }
                }
                Err((failure, retries)) => {
                    let recoverable = failure.is_recoverable();
                    if recoverable {
                        self.consecutive_failures += 1;
                        self.state = if self.consecutive_failures >= self.serve.freeze_after {
                            ServiceState::Frozen
                        } else {
                            ServiceState::Degraded
                        };
                    } else {
                        self.state = ServiceState::Frozen;
                    }
                    pibe_trace::event_args("serve.rollback", || {
                        vec![("error", pibe_trace::Value::from(failure.to_string()))]
                    });
                    EpochOutcome::RolledBack {
                        error: failure.to_string(),
                        recoverable,
                        retries,
                    }
                }
            }
        };

        self.finish(EpochRecord {
            epoch,
            deltas: total,
            accepted,
            quarantined,
            overflow_rejected,
            drifted_functions: drifted,
            outcome,
            state_after: self.state,
        })
    }

    fn finish(&mut self, record: EpochRecord) -> &EpochRecord {
        pibe_trace::counter("serve.quarantine_total", self.quarantine.len() as u64);
        self.journal.push(record);
        self.journal.records.last().expect("just pushed")
    }

    /// One epoch's rebuild campaign: up to `1 + max_retries` watchdogged
    /// attempts, sleeping the deterministic backoff between recoverable
    /// failures. Returns the image and the number of retries burned, or the
    /// final failure.
    fn supervised_rebuild(&self, profile: &Profile) -> Result<(Image, u32), (RebuildFailure, u32)> {
        let policy = RetryPolicy {
            max_retries: self.serve.max_retries,
            base: self.serve.backoff,
        };
        let mut retries = 0;
        loop {
            let _span = pibe_trace::span_args("serve.rebuild", || {
                vec![("attempt", pibe_trace::Value::from(u64::from(retries)))]
            });
            let base = Arc::clone(&self.base);
            let profile = Arc::new(profile.clone());
            let config = self.config;
            let threads = self.serve.threads;
            let cache = Arc::clone(&self.harden_cache);
            let rebuilder = Arc::clone(&self.rebuilder);
            let verdict = supervise(self.serve.watchdog, move || {
                rebuilder.rebuild(&base, &profile, &config, threads, &cache)
            });
            let failure = match verdict {
                WatchdogVerdict::Completed(Ok(image)) => return Ok((image, retries)),
                WatchdogVerdict::Completed(Err(e)) => RebuildFailure::Pipeline(e),
                WatchdogVerdict::Panicked { message } => {
                    RebuildFailure::Pipeline(PipelineError::StagePanicked { message })
                }
                WatchdogVerdict::TimedOut { waited } => RebuildFailure::TimedOut { waited },
            };
            if !failure.is_recoverable() || retries >= policy.max_retries {
                return Err((failure, retries));
            }
            retries += 1;
            let pause = policy.backoff(retries);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
    }
}
