//! The service state machine and the replayable epoch journal.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The serve loop's health, always relative to a last-known-good image the
/// service keeps serving no matter what.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceState {
    /// The served image was built from the current cumulative profile.
    #[default]
    Healthy,
    /// The last rebuild failed recoverably; the service serves the
    /// last-known-good image and keeps accepting epochs.
    Degraded,
    /// Either an unrecoverable pipeline error or
    /// [`freeze_after`](crate::ServeConfig::freeze_after) consecutive
    /// failed epochs: the service stops rebuilding (and merging) until an
    /// operator [`thaw`](crate::PibeService::thaw)s it. The last-known-good
    /// image is still served.
    Frozen,
}

impl fmt::Display for ServiceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ServiceState::Healthy => "healthy",
            ServiceState::Degraded => "degraded",
            ServiceState::Frozen => "frozen",
        })
    }
}

/// What one epoch did to the served image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochOutcome {
    /// The merged deltas left every profile-driven decision unchanged
    /// (decision-surface equality): the cumulative profile advanced, the
    /// image did not need to change, and no pipeline ran.
    FastPath,
    /// Decisions drifted and the guarded rebuild succeeded; the new image
    /// is now last-known-good.
    Rebuilt {
        /// Functions whose decisions drifted (what forced the rebuild).
        drifted: usize,
        /// Recoverable failures retried before the successful attempt.
        retries: u32,
    },
    /// Decisions drifted but every rebuild attempt failed; the epoch's
    /// merge was rolled back and the previous last-known-good image is
    /// still served.
    RolledBack {
        /// The final attempt's error, rendered.
        error: String,
        /// Whether that error was recoverable (unrecoverable errors freeze
        /// the service immediately).
        recoverable: bool,
        /// Failed attempts beyond the first.
        retries: u32,
    },
    /// The epoch arrived while the service was frozen: nothing was merged,
    /// nothing was rebuilt.
    Frozen,
}

/// One epoch's journal entry: everything needed to replay the state
/// machine offline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// The epoch number (journal position).
    pub epoch: u64,
    /// Deltas that arrived.
    pub deltas: usize,
    /// Deltas merged into the cumulative profile.
    pub accepted: usize,
    /// Deltas quarantined by validation.
    pub quarantined: usize,
    /// Deltas rejected because merging them would overflow counters.
    pub overflow_rejected: usize,
    /// Functions whose profile-driven decisions drifted this epoch.
    pub drifted_functions: usize,
    /// What the epoch did.
    pub outcome: EpochOutcome,
    /// The service state after the epoch.
    pub state_after: ServiceState,
}

/// Aggregate counters recomputed from a journal by [`EpochJournal::replay`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplaySummary {
    /// The state the machine ends in.
    pub state: ServiceState,
    /// Epochs that took the no-drift fast path.
    pub fast_paths: u64,
    /// Epochs that rebuilt successfully.
    pub rebuilds: u64,
    /// Epochs rolled back after failed rebuilds.
    pub rollbacks: u64,
    /// Epochs refused while frozen.
    pub frozen_epochs: u64,
    /// Total deltas quarantined by validation.
    pub quarantined: u64,
    /// Total deltas rejected for merge overflow.
    pub overflow_rejected: u64,
}

/// An append-only record of every epoch the service processed. The journal
/// carries the freeze threshold it was recorded under, so
/// [`replay`](Self::replay) is self-contained: feeding the records through
/// the state machine must land in exactly the state the live service is in
/// — the crash-recovery and audit story in one structure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochJournal {
    /// The freeze threshold the recording service ran with.
    pub freeze_after: u32,
    /// The records, in epoch order.
    pub records: Vec<EpochRecord>,
    /// Epoch numbers an operator [`thaw`](crate::PibeService::thaw) took
    /// effect *before* (i.e. the [`next_epoch`](Self::next_epoch) at thaw
    /// time). Interventions are part of the history — without them a replay
    /// could not land in the live state.
    pub thaws: Vec<u64>,
}

impl EpochJournal {
    /// An empty journal for a service with the given freeze threshold.
    pub fn new(freeze_after: u32) -> Self {
        EpochJournal {
            freeze_after,
            records: Vec::new(),
            thaws: Vec::new(),
        }
    }

    /// The next epoch number.
    pub fn next_epoch(&self) -> u64 {
        self.records.len() as u64
    }

    /// Appends a record (the service's only write path).
    pub fn push(&mut self, record: EpochRecord) {
        debug_assert_eq!(record.epoch, self.next_epoch());
        self.records.push(record);
    }

    /// Records an operator thaw taking effect before the next epoch.
    pub fn record_thaw(&mut self) {
        self.thaws.push(self.next_epoch());
    }

    /// Replays the state machine over the recorded outcomes from a cold
    /// start, returning the resulting state and aggregate counters.
    ///
    /// The transition rules are the service's own: a successful rebuild
    /// resets the consecutive-failure counter and returns to
    /// [`ServiceState::Healthy`]; a fast path preserves the current state
    /// (it proves nothing about the pipeline); a recoverable rollback
    /// degrades, and [`freeze_after`](Self::freeze_after) consecutive
    /// rollbacks — or one unrecoverable error — freeze. Quarantined deltas
    /// never affect state by themselves. Recorded operator thaws are
    /// applied at the epoch boundary they took effect at.
    pub fn replay(&self) -> ReplaySummary {
        let mut summary = ReplaySummary::default();
        let mut consecutive = 0u32;
        let mut thaws = self.thaws.iter().peekable();
        let mut apply_thaws = |upto: u64, summary: &mut ReplaySummary, consecutive: &mut u32| {
            while thaws.next_if(|&&at| at <= upto).is_some() {
                summary.state = ServiceState::Healthy;
                *consecutive = 0;
            }
        };
        for r in &self.records {
            apply_thaws(r.epoch, &mut summary, &mut consecutive);
            summary.quarantined += r.quarantined as u64;
            summary.overflow_rejected += r.overflow_rejected as u64;
            match &r.outcome {
                EpochOutcome::FastPath => summary.fast_paths += 1,
                EpochOutcome::Rebuilt { .. } => {
                    summary.rebuilds += 1;
                    consecutive = 0;
                    summary.state = ServiceState::Healthy;
                }
                EpochOutcome::RolledBack { recoverable, .. } => {
                    summary.rollbacks += 1;
                    if *recoverable {
                        consecutive += 1;
                        summary.state = if consecutive >= self.freeze_after {
                            ServiceState::Frozen
                        } else {
                            ServiceState::Degraded
                        };
                    } else {
                        summary.state = ServiceState::Frozen;
                    }
                }
                EpochOutcome::Frozen => summary.frozen_epochs += 1,
            }
        }
        apply_thaws(u64::MAX, &mut summary, &mut consecutive);
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64, outcome: EpochOutcome, state_after: ServiceState) -> EpochRecord {
        EpochRecord {
            epoch,
            deltas: 4,
            accepted: 3,
            quarantined: 1,
            overflow_rejected: 0,
            drifted_functions: 0,
            outcome,
            state_after,
        }
    }

    fn rollback() -> EpochOutcome {
        EpochOutcome::RolledBack {
            error: "stage inline produced an invalid module".into(),
            recoverable: true,
            retries: 2,
        }
    }

    #[test]
    fn replay_walks_degraded_to_frozen_and_back_through_recovery() {
        let mut j = EpochJournal::new(2);
        j.push(record(0, EpochOutcome::FastPath, ServiceState::Healthy));
        j.push(record(1, rollback(), ServiceState::Degraded));
        // A fast path between failures proves nothing: still degraded, and
        // the consecutive-failure count survives.
        j.push(record(2, EpochOutcome::FastPath, ServiceState::Degraded));
        let s = j.replay();
        assert_eq!(s.state, ServiceState::Degraded);
        assert_eq!((s.fast_paths, s.rollbacks), (2, 1));

        // A successful rebuild resets the counter...
        let mut recovered = j.clone();
        recovered.push(record(
            3,
            EpochOutcome::Rebuilt {
                drifted: 5,
                retries: 1,
            },
            ServiceState::Healthy,
        ));
        recovered.push(record(4, rollback(), ServiceState::Degraded));
        assert_eq!(recovered.replay().state, ServiceState::Degraded);

        // ...while a second consecutive rollback freezes at threshold 2.
        j.push(record(3, rollback(), ServiceState::Frozen));
        j.push(record(4, EpochOutcome::Frozen, ServiceState::Frozen));
        let s = j.replay();
        assert_eq!(s.state, ServiceState::Frozen);
        assert_eq!(s.frozen_epochs, 1);
    }

    #[test]
    fn recorded_thaws_reset_the_machine_at_their_epoch_boundary() {
        let mut j = EpochJournal::new(2);
        j.push(record(0, rollback(), ServiceState::Degraded));
        j.push(record(1, rollback(), ServiceState::Frozen));
        j.record_thaw();
        // The thaw lands before epoch 2: one fresh failure only degrades.
        j.push(record(2, rollback(), ServiceState::Degraded));
        assert_eq!(j.replay().state, ServiceState::Degraded);

        // A trailing thaw (no epoch after it yet) is applied too.
        j.push(record(3, rollback(), ServiceState::Frozen));
        j.record_thaw();
        assert_eq!(j.replay().state, ServiceState::Healthy);
    }

    #[test]
    fn unrecoverable_errors_freeze_immediately() {
        let mut j = EpochJournal::new(100);
        j.push(record(
            0,
            EpochOutcome::RolledBack {
                error: "audit rejected the image".into(),
                recoverable: false,
                retries: 0,
            },
            ServiceState::Frozen,
        ));
        assert_eq!(j.replay().state, ServiceState::Frozen);
    }

    #[test]
    fn journal_round_trips_through_json() {
        let mut j = EpochJournal::new(3);
        j.push(record(0, rollback(), ServiceState::Degraded));
        j.push(record(
            1,
            EpochOutcome::Rebuilt {
                drifted: 2,
                retries: 0,
            },
            ServiceState::Healthy,
        ));
        let text = serde_json::to_string(&j).expect("serializes");
        let back: EpochJournal = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, j);
        assert_eq!(back.replay(), j.replay());
    }
}
