//! Profile deltas and the typed quarantine.

use pibe_profile::{MergeOverflow, Profile, ProfileIssue};
use serde::{Deserialize, Serialize};

/// One shard's profile report for one epoch: a *delta* of counts observed
/// since the shard's previous report, to be accumulated into the service's
/// cumulative profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileDelta {
    /// The reporting shard, for attribution in quarantine records.
    pub shard: u32,
    /// The shard's own sequence number for this report.
    pub seq: u64,
    /// The counts observed since the shard's previous report.
    pub profile: Profile,
}

/// Why a delta was quarantined instead of merged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// The delta failed validation against the base module: the issues are
    /// the verbatim findings of
    /// [`Profile::validate_against`](pibe_profile::Profile::validate_against).
    Invalid(Vec<ProfileIssue>),
    /// Merging the delta would have saturated cumulative counters — the
    /// typed overflow records from
    /// [`Profile::merge_checked`](pibe_profile::Profile::merge_checked).
    /// The merge was performed on a scratch clone and discarded, so the
    /// cumulative profile is untouched.
    Overflow(Vec<MergeOverflow>),
}

/// A delta that was rejected, with full attribution: which shard sent it,
/// in which epoch, and exactly why. Quarantined deltas are never merged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedDelta {
    /// The epoch during which the delta arrived.
    pub epoch: u64,
    /// The offending delta, kept verbatim for offline diagnosis.
    pub delta: ProfileDelta,
    /// Why it was rejected.
    pub reason: QuarantineReason,
}

impl QuarantinedDelta {
    /// Whether the delta was rejected by validation (as opposed to merge
    /// overflow).
    pub fn is_invalid(&self) -> bool {
        matches!(self.reason, QuarantineReason::Invalid(_))
    }
}
