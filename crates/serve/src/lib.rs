//! # pibe-serve
//!
//! A fault-tolerant **continuous-PGO epoch loop** over the PIBE pipeline:
//! the paper's offline profile→optimize→harden flow (§4), run as a
//! long-lived service that keeps re-optimizing as fresh profile deltas
//! stream in from production shards.
//!
//! ```text
//!  shard deltas ──► validate ──► merge_checked ──► decision-surface diff
//!       │              │              │                    │
//!       │         quarantine     overflow reject     unchanged? ──► fast path
//!       │        (typed issues)  (typed records)          │
//!       │                                           drifted functions
//!       │                                                 │
//!       │                              watchdog + retry + warm harden cache
//!       │                                                 │
//!       └── journal ◄── state machine ◄── rebuild ok? ──► new last-known-good
//!                    (Healthy / Degraded / Frozen)   else roll epoch back
//! ```
//!
//! The load-bearing ideas:
//!
//! * **Decision-surface drift detection** ([`pibe_profile::DecisionSurface`]):
//!   an epoch only needs the pipeline if some profile-driven *decision*
//!   changed — promoted targets, the inline budget prefix, DCE roots.
//!   Surface equality is proven by exact replication of the passes'
//!   selection math, so the fast path is sound: same decisions, same image,
//!   bit for bit. Re-optimization latency scales with drift, not with
//!   module size.
//! * **Typed quarantine** ([`QuarantinedDelta`]): every rejected delta is
//!   kept with the exact [`pibe_profile::ProfileIssue`]s or
//!   [`pibe_profile::MergeOverflow`]s that condemned it. Corrupt counts
//!   never reach the cumulative profile, and a noisy shard never degrades
//!   the service's health.
//! * **Last-known-good everything** ([`PibeService`]): rebuilds run under a
//!   wall-clock [`watchdog`] with bounded, deterministically-backed-off
//!   [`retry`]; any exhausted failure rolls the *entire epoch* back —
//!   profile merge included — and the previous image keeps being served.
//!   The [`ServiceState`] machine (`Healthy → Degraded → Frozen`) freezes
//!   after repeated or unrecoverable failures instead of flapping forever.
//! * **Replayable journal** ([`EpochJournal`]): every epoch's outcome is
//!   recorded; replaying the journal through the state machine reproduces
//!   the live service's state exactly, and the journal serializes to JSON
//!   for offline audit.
//!
//! The chaos soak suite (`tests/soak.rs`) drives hundreds of epochs of
//! corrupted, drifting delta streams ([`DeltaStream`]) through the service
//! and proves at **every** epoch that the incrementally-maintained image is
//! bit-identical to a from-scratch rebuild.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod delta;
pub mod retry;
pub mod service;
pub mod state;
pub mod stream;
pub mod watchdog;

pub use config::{KnobErrorKind, ServeConfig, ServeConfigError};
pub use delta::{ProfileDelta, QuarantineReason, QuarantinedDelta};
pub use retry::RetryPolicy;
pub use service::{drift_config, PibeService, PipelineRebuilder, RebuildFailure, Rebuilder};
pub use state::{EpochJournal, EpochOutcome, EpochRecord, ReplaySummary, ServiceState};
pub use stream::{DeltaStream, StreamConfig, StreamStats};
pub use watchdog::{supervise, WatchdogVerdict};
