//! # pibe-passes
//!
//! PIBE's profile-guided indirect-branch-elimination passes — the paper's
//! core contribution (§5):
//!
//! * [`icp`] — **indirect call promotion**: rewrites the hottest
//!   `(site, target)` pairs (greedily, by execution count, with *no* cap on
//!   promoted targets per site, §5.3) into compare-guarded direct calls with
//!   the original indirect call left as a fallback;
//! * [`inliner`] — the **security inliner**: greedily inlines the hottest
//!   direct call sites (which ICP just multiplied) to eliminate backward
//!   edges, governed by the paper's three rules: (1) inline only hot call
//!   sites (an optimization [`Budget`] over the cumulative execution
//!   count); (2) skip when the caller's post-inline complexity would exceed
//!   12 000; (3) skip callees whose own complexity exceeds 3 000. After
//!   inlining `f` with site count ε, `f`'s call sites are re-added as
//!   candidates at `count × ε / invocations(f)` (the constant-ratio
//!   heuristic).
//!
//! Both passes are real CFG transformations (block splitting and splicing),
//! so code growth, cache pressure, and gadget duplication emerge in the
//! simulator rather than being assumed. Run ICP *before* the inliner, as
//! the paper does — promotion is what turns indirect calls into inlinable
//! direct calls.
//!
//! ## Example
//!
//! ```
//! use pibe_ir::{FunctionBuilder, Module, OpKind};
//! use pibe_passes::{run_inliner, InlinerConfig, SiteWeights};
//! use pibe_profile::Profile;
//!
//! // callee() { alu; ret }   caller() { call callee; ret }
//! let mut module = Module::new("demo");
//! let mut b = FunctionBuilder::new("callee", 0);
//! b.op(OpKind::Alu);
//! b.ret();
//! let callee = module.add_function(b.build());
//! let site = module.fresh_site();
//! let mut b = FunctionBuilder::new("caller", 0);
//! b.call(site, callee, 0);
//! b.ret();
//! module.add_function(b.build());
//!
//! // A profile that saw the call 100 times.
//! let mut profile = Profile::new();
//! for _ in 0..100 {
//!     profile.record_direct(site);
//!     profile.record_entry(callee);
//! }
//! let weights = SiteWeights::from_profile(&profile);
//! let stats = run_inliner(&mut module, &weights, &profile, &InlinerConfig::default());
//! assert_eq!(stats.inlined_sites, 1);
//! assert_eq!(stats.inlined_weight, 100);
//! ```
//!
//! [`Budget`]: pibe_profile::Budget

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dce;
pub mod icp;
pub mod inliner;
pub mod spectre_v1;
pub mod stats;
mod transform;
mod weights;

pub use dce::{strip_unreachable, strip_unreachable_threaded, DceMap, DceStats};
pub use icp::{promote_indirect_calls, IcpConfig, IcpStats};
pub use inliner::{run_inliner, InlinerConfig, InlinerStats};
pub use spectre_v1::{fence_all_conditionals, fence_gadgets, find_v1_gadgets, V1Gadget};
pub use stats::PassStats;
pub use transform::{inline_call_site, InlineError, InlinedCall};
pub use weights::SiteWeights;
