//! A uniform view over per-pass statistics, consumed by build-metrics
//! reporting in the core crate (pass throughput = transformed sites per
//! second of pass wall-clock time).

use crate::icp::IcpStats;
use crate::inliner::InlinerStats;
use pibe_harden::{DefenseBackend, DefenseSet};

/// Common accessors over the statistics either optimization pass returns.
///
/// Both passes rewrite call sites selected by a budget over dynamic weight;
/// this trait exposes the two numbers every pass shares so aggregated
/// reports (the `tables` binary's build-metrics section) can treat passes
/// uniformly.
pub trait PassStats {
    /// Human-readable pass name for report rows.
    fn pass_name(&self) -> &'static str;

    /// Call sites the pass rewrote.
    fn transformed_sites(&self) -> u64;

    /// Dynamic weight the pass moved off the slow path: promoted to guarded
    /// direct calls (ICP) or elided entirely (inliner).
    fn transformed_weight(&self) -> u64;

    /// Sites the pass examined as candidates.
    fn candidate_sites(&self) -> u64;

    /// The defense toll one transformed execution no longer pays under
    /// `backend`: the hardened forward edge for ICP (a promoted call takes
    /// a guarded direct call instead of the thunk), the hardened backward
    /// edge for the inliner (an inlined call never returns).
    fn elided_delta(&self, backend: &dyn DefenseBackend, defenses: DefenseSet) -> u64;

    /// Estimated dynamic defense cycles the pass elided under `backend`:
    /// the transformed weight times the per-execution toll it removed.
    /// This is the budget logic's figure of merit — the number PIBE's
    /// thesis says shrinks by an order of magnitude when the residual
    /// defense is cheap hardware CFI instead of a retpoline family.
    fn estimated_cycles_elided(&self, backend: &dyn DefenseBackend, defenses: DefenseSet) -> u64 {
        self.transformed_weight() * self.elided_delta(backend, defenses)
    }
}

impl PassStats for IcpStats {
    fn pass_name(&self) -> &'static str {
        "icp"
    }

    fn transformed_sites(&self) -> u64 {
        self.promoted_sites
    }

    fn transformed_weight(&self) -> u64 {
        self.promoted_weight
    }

    fn candidate_sites(&self) -> u64 {
        self.total_sites
    }

    fn elided_delta(&self, backend: &dyn DefenseBackend, defenses: DefenseSet) -> u64 {
        backend.forward_delta(defenses)
    }
}

impl PassStats for InlinerStats {
    fn pass_name(&self) -> &'static str {
        "inline"
    }

    fn transformed_sites(&self) -> u64 {
        self.inlined_sites
    }

    fn transformed_weight(&self) -> u64 {
        self.inlined_weight
    }

    fn candidate_sites(&self) -> u64 {
        self.candidate_sites
    }

    fn elided_delta(&self, backend: &dyn DefenseBackend, defenses: DefenseSet) -> u64 {
        backend.return_delta(defenses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_views_read_the_matching_fields() {
        let icp = IcpStats {
            promoted_sites: 3,
            promoted_weight: 700,
            total_sites: 9,
            ..IcpStats::default()
        };
        assert_eq!(icp.pass_name(), "icp");
        assert_eq!(icp.transformed_sites(), 3);
        assert_eq!(icp.transformed_weight(), 700);
        assert_eq!(PassStats::candidate_sites(&icp), 9);

        let inl = InlinerStats {
            inlined_sites: 2,
            inlined_weight: 450,
            candidate_sites: 5,
            ..InlinerStats::default()
        };
        assert_eq!(inl.pass_name(), "inline");
        assert_eq!(inl.transformed_sites(), 2);
        assert_eq!(inl.transformed_weight(), 450);
        assert_eq!(PassStats::candidate_sites(&inl), 5);
    }

    #[test]
    fn elided_cycles_scale_with_the_backend_cost_model() {
        use pibe_harden::Arch;
        let icp = IcpStats {
            promoted_weight: 1000,
            ..IcpStats::default()
        };
        let inl = InlinerStats {
            inlined_weight: 1000,
            ..InlinerStats::default()
        };
        let d = pibe_harden::DefenseSet::ALL;
        let x86 = Arch::X86.backend();
        let arm = Arch::Arm64.backend();
        // x86: 41-cycle fenced retpolines / 32-cycle returns.
        assert_eq!(icp.estimated_cycles_elided(x86, d), 41_000);
        assert_eq!(inl.estimated_cycles_elided(x86, d), 32_000);
        // ARM BTI+PAC: an order of magnitude less to elide — the
        // cross-arch question the backend API exists to answer.
        assert!(icp.estimated_cycles_elided(arm, d) * 4 < icp.estimated_cycles_elided(x86, d));
        assert_eq!(
            icp.estimated_cycles_elided(x86, pibe_harden::DefenseSet::NONE),
            0
        );
    }
}
