//! A uniform view over per-pass statistics, consumed by build-metrics
//! reporting in the core crate (pass throughput = transformed sites per
//! second of pass wall-clock time).

use crate::icp::IcpStats;
use crate::inliner::InlinerStats;

/// Common accessors over the statistics either optimization pass returns.
///
/// Both passes rewrite call sites selected by a budget over dynamic weight;
/// this trait exposes the two numbers every pass shares so aggregated
/// reports (the `tables` binary's build-metrics section) can treat passes
/// uniformly.
pub trait PassStats {
    /// Human-readable pass name for report rows.
    fn pass_name(&self) -> &'static str;

    /// Call sites the pass rewrote.
    fn transformed_sites(&self) -> u64;

    /// Dynamic weight the pass moved off the slow path: promoted to guarded
    /// direct calls (ICP) or elided entirely (inliner).
    fn transformed_weight(&self) -> u64;

    /// Sites the pass examined as candidates.
    fn candidate_sites(&self) -> u64;
}

impl PassStats for IcpStats {
    fn pass_name(&self) -> &'static str {
        "icp"
    }

    fn transformed_sites(&self) -> u64 {
        self.promoted_sites
    }

    fn transformed_weight(&self) -> u64 {
        self.promoted_weight
    }

    fn candidate_sites(&self) -> u64 {
        self.total_sites
    }
}

impl PassStats for InlinerStats {
    fn pass_name(&self) -> &'static str {
        "inline"
    }

    fn transformed_sites(&self) -> u64 {
        self.inlined_sites
    }

    fn transformed_weight(&self) -> u64 {
        self.inlined_weight
    }

    fn candidate_sites(&self) -> u64 {
        self.candidate_sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_views_read_the_matching_fields() {
        let icp = IcpStats {
            promoted_sites: 3,
            promoted_weight: 700,
            total_sites: 9,
            ..IcpStats::default()
        };
        assert_eq!(icp.pass_name(), "icp");
        assert_eq!(icp.transformed_sites(), 3);
        assert_eq!(icp.transformed_weight(), 700);
        assert_eq!(PassStats::candidate_sites(&icp), 9);

        let inl = InlinerStats {
            inlined_sites: 2,
            inlined_weight: 450,
            candidate_sites: 5,
            ..InlinerStats::default()
        };
        assert_eq!(inl.pass_name(), "inline");
        assert_eq!(inl.transformed_sites(), 2);
        assert_eq!(inl.transformed_weight(), 450);
        assert_eq!(PassStats::candidate_sites(&inl), 5);
    }
}
