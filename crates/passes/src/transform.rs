//! The mechanical inline transform: CFG splicing.

use pibe_ir::{BlockId, FuncId, Inst, Module, SiteId, Terminator};
use std::fmt;

/// What [`inline_call_site`] did: the identity of the elided call plus every
/// call site that was copied from the callee into the caller (the inliner
/// turns these into new candidates via the constant-ratio heuristic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlinedCall {
    /// The function the callee was merged into.
    pub caller: FuncId,
    /// The function whose body was copied.
    pub callee: FuncId,
    /// The elided call site.
    pub site: SiteId,
    /// Arguments the elided call passed — with the callee's complexity this
    /// determines the exact caller-cost change
    /// ([`pibe_ir::size::inline_cost_delta`]).
    pub call_args: u8,
    /// Direct call sites copied into the caller: `(site, callee)`.
    pub copied_direct_sites: Vec<(SiteId, FuncId)>,
    /// Indirect call sites copied into the caller.
    pub copied_indirect_sites: Vec<SiteId>,
}

/// Failure of [`inline_call_site`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlineError {
    /// The caller contains no direct call with the given site id.
    SiteNotFound {
        /// The function searched.
        caller: FuncId,
        /// The site that was not found.
        site: SiteId,
    },
    /// The call is a self-call; inlining it would not terminate.
    SelfInline {
        /// The self-calling function.
        func: FuncId,
    },
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::SiteNotFound { caller, site } => {
                write!(f, "no direct call {site} in {caller}")
            }
            InlineError::SelfInline { func } => write!(f, "refusing to inline {func} into itself"),
        }
    }
}

impl std::error::Error for InlineError {}

/// Inlines the first direct call with id `site` found in `caller`:
/// the call instruction is replaced by the callee's CFG, the callee's
/// returns become jumps to the split-off continuation, and the caller's
/// stack frame grows by the callee's (stack slots of merged frames are
/// *not* re-coloured — the inefficiency Rule 2 exists to bound, §5.2).
///
/// The caller's code size and complexity grow by construction; callers of
/// this function (the inliner, the baselines) decide *whether* growing is
/// worth it.
///
/// # Errors
/// [`InlineError::SiteNotFound`] when `caller` has no direct call `site`;
/// [`InlineError::SelfInline`] when the call target is `caller` itself.
pub fn inline_call_site(
    module: &mut Module,
    caller: FuncId,
    site: SiteId,
) -> Result<InlinedCall, InlineError> {
    // Locate the call (first in block order; see `Function::find_call`).
    let (bid, idx, callee, call_args) = module
        .function(caller)
        .find_call(site)
        .ok_or(InlineError::SiteNotFound { caller, site })?;
    if callee == caller {
        return Err(InlineError::SelfInline { func: caller });
    }

    // Snapshot the callee via its sharing handle (no body copy) and record
    // the sites we are about to copy, in block order.
    let callee_fn = module.function_arc(callee).clone();
    let mut copied_direct = Vec::new();
    let mut copied_indirect = Vec::new();
    for inst in callee_fn.iter_insts() {
        match inst {
            Inst::Call {
                site: s, callee: c, ..
            } => copied_direct.push((*s, *c)),
            Inst::CallIndirect { site: s, .. } => copied_indirect.push(*s),
            _ => {}
        }
    }

    let caller_fn = module.function_mut(caller);
    let nblocks = caller_fn.num_blocks() as u32;
    let entry_id = BlockId::from_raw(nblocks + 1);

    // Split the calling block at the call instruction (the call slot is
    // tombstoned, everything after it becomes the continuation), then
    // splice the callee body in one pool append with returns redirected.
    let cont_id = caller_fn.split_block(bid, idx, true, Terminator::Jump { target: entry_id });
    debug_assert_eq!(cont_id, BlockId::from_raw(nblocks));
    let spliced_entry = caller_fn.splice_body(&callee_fn, cont_id);
    debug_assert_eq!(spliced_entry, entry_id);

    // Merged frames keep both allocations (no stack re-colouring).
    let merged = caller_fn
        .frame_bytes()
        .saturating_add(callee_fn.frame_bytes());
    caller_fn.set_frame_bytes(merged);

    Ok(InlinedCall {
        caller,
        callee,
        site,
        call_args,
        copied_direct_sites: copied_direct,
        copied_indirect_sites: copied_indirect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{size, Cond, FunctionBuilder, OpKind};

    /// callee(1) { alu; alu; ret }   caller() { mov; call callee; load; ret }
    fn module() -> (Module, FuncId, FuncId, SiteId) {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("callee", 1);
        b.frame_bytes(96);
        b.ops(OpKind::Alu, 2);
        b.ret();
        let callee = m.add_function(b.build());
        let site = m.fresh_site();
        let mut b = FunctionBuilder::new("caller", 0);
        b.frame_bytes(64);
        b.op(OpKind::Mov);
        b.call(site, callee, 1);
        b.op(OpKind::Load);
        b.ret();
        let caller = m.add_function(b.build());
        (m, caller, callee, site)
    }

    #[test]
    fn inlining_splices_body_and_preserves_verification() {
        let (mut m, caller, callee, site) = module();
        let info = inline_call_site(&mut m, caller, site).unwrap();
        assert_eq!(info.caller, caller);
        assert_eq!(info.callee, callee);
        assert!(info.copied_direct_sites.is_empty());
        m.verify().unwrap();
        // The caller no longer contains the call.
        let f = m.function(caller);
        assert!(f.iter_insts().all(|i| i.call_site() != Some(site)));
        // Blocks: original, continuation, one callee block.
        assert_eq!(f.num_blocks(), 3);
        // All callee ops are now in the caller.
        assert_eq!(f.inst_count(), 2 + 2);
    }

    #[test]
    fn frames_merge_without_recolouring() {
        let (mut m, caller, _callee, site) = module();
        inline_call_site(&mut m, caller, site).unwrap();
        assert_eq!(m.function(caller).frame_bytes(), 64 + 96);
    }

    #[test]
    fn caller_cost_grows_by_roughly_callee_cost() {
        let (mut m, caller, callee, site) = module();
        let caller_before = size::function_cost(m.function(caller));
        let callee_cost = size::function_cost(m.function(callee));
        inline_call_site(&mut m, caller, site).unwrap();
        let caller_after = size::function_cost(m.function(caller));
        // The call inst (5 + 5*1) disappears; the body plus glue jumps appear.
        assert!(caller_after > caller_before);
        assert!(caller_after <= caller_before + callee_cost + 2 * size::STANDARD_INST_COST);
    }

    #[test]
    fn inline_cost_delta_is_exact() {
        let (mut m, caller, callee, site) = module();
        let caller_before = size::function_cost(m.function(caller));
        let callee_cost = size::function_cost(m.function(callee));
        let info = inline_call_site(&mut m, caller, site).unwrap();
        let caller_after = size::function_cost(m.function(caller));
        assert_eq!(info.call_args, 1);
        assert_eq!(
            i64::from(caller_after),
            i64::from(caller_before) + size::inline_cost_delta(callee_cost, info.call_args),
            "the analytic delta must match a recomputed walk exactly"
        );
    }

    #[test]
    fn multi_return_callee_rejoins_at_continuation() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("branchy", 0);
        let t = b.new_block();
        let e = b.new_block();
        b.branch(Cond::Random { ptaken_milli: 500 }, t, e);
        b.switch_to(t);
        b.op(OpKind::Alu);
        b.ret();
        b.switch_to(e);
        b.op(OpKind::Load);
        b.ret();
        let callee = m.add_function(b.build());
        let site = m.fresh_site();
        let mut b = FunctionBuilder::new("caller", 0);
        b.call(site, callee, 0);
        b.op(OpKind::Store);
        b.ret();
        let caller = m.add_function(b.build());

        inline_call_site(&mut m, caller, site).unwrap();
        m.verify().unwrap();
        let f = m.function(caller);
        // No Return from the callee body survives except the caller's own.
        assert_eq!(f.return_sites(), 1);
    }

    #[test]
    fn copied_sites_are_reported() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", 0);
        b.ret();
        let leaf = m.add_function(b.build());
        let s_inner = m.fresh_site();
        let s_ind = m.fresh_site();
        let mut b = FunctionBuilder::new("mid", 0);
        b.call(s_inner, leaf, 0);
        b.call_indirect(s_ind, 0);
        b.ret();
        let mid = m.add_function(b.build());
        let s_outer = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(s_outer, mid, 0);
        b.ret();
        let root = m.add_function(b.build());

        let info = inline_call_site(&mut m, root, s_outer).unwrap();
        assert_eq!(info.copied_direct_sites, vec![(s_inner, leaf)]);
        assert_eq!(info.copied_indirect_sites, vec![s_ind]);
        m.verify().unwrap();
    }

    #[test]
    fn missing_site_is_an_error() {
        let (mut m, caller, _callee, _site) = module();
        let bogus = SiteId::from_raw(999);
        assert_eq!(
            inline_call_site(&mut m, caller, bogus),
            Err(InlineError::SiteNotFound {
                caller,
                site: bogus
            })
        );
    }

    #[test]
    fn self_inline_is_rejected() {
        let mut m = Module::new("m");
        // Build rec() with a self call (allowed structurally).
        let mut b = FunctionBuilder::new("tmp", 0);
        b.ret();
        let rec = m.add_function(b.build());
        let site = m.fresh_site();
        let mut b = FunctionBuilder::new("rec", 0);
        b.call(site, rec, 0);
        b.ret();
        m.replace_function(rec, b.build());
        let err = inline_call_site(&mut m, rec, site).unwrap_err();
        assert_eq!(err, InlineError::SelfInline { func: rec });
    }
}
