//! Spectre V1 gadget analysis and selective fencing.
//!
//! The paper's threat model *excludes* Spectre V1 because "few conditional
//! branches are suitable gadgets, and static analysis can identify and
//! protect them efficiently" (§3, §6.1, citing the kernel's smatch-based
//! checker). This module substantiates that claim on the synthetic kernel:
//! a structural gadget finder locates Listing 3-shaped patterns — a
//! data-dependent conditional branch whose guarded block immediately
//! performs a dependent double load (`ptr = data[index]; value = *ptr`) —
//! and fences exactly those, which costs a tiny fraction of fencing every
//! conditional branch (the naive alternative).

use pibe_ir::{BlockId, Cond, FuncId, Inst, Module, OpKind, Terminator};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One Listing 3-shaped gadget candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct V1Gadget {
    /// Function containing the gadget.
    pub func: FuncId,
    /// Block whose conditional branch is the bounds check.
    pub branch_block: BlockId,
    /// Guarded block performing the dependent loads.
    pub vulnerable_block: BlockId,
}

/// How many leading instructions of the guarded block the double-load
/// pattern must fall within (the dependent load chain is short in real
/// gadgets).
const WINDOW: usize = 4;

/// Finds Listing 3-shaped gadgets: a data-dependent conditional branch
/// guarding a block that performs two loads within its first `WINDOW`
/// (= 4) instructions.
pub fn find_v1_gadgets(module: &Module) -> Vec<V1Gadget> {
    let mut out = Vec::new();
    for f in module.functions() {
        for (bid, block) in f.iter_blocks() {
            let Terminator::Branch {
                cond: Cond::Random { .. },
                then_bb,
                ..
            } = block.term()
            else {
                continue;
            };
            let guarded = f.block(*then_bb);
            let loads = guarded
                .insts()
                .iter()
                .take(WINDOW)
                .filter(|i| matches!(i, Inst::Op(OpKind::Load)))
                .count();
            if loads >= 2 {
                out.push(V1Gadget {
                    func: f.id(),
                    branch_block: bid,
                    vulnerable_block: *then_bb,
                });
            }
        }
    }
    out
}

/// What a fencing pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FenceStats {
    /// Fences inserted.
    pub fences: u64,
    /// Conditional branches inspected.
    pub branches_seen: u64,
}

/// Fences exactly the given gadgets: an `lfence` at the head of each
/// vulnerable block stops the out-of-bounds load from executing
/// transiently. Blocks are fenced at most once.
pub fn fence_gadgets(module: &mut Module, gadgets: &[V1Gadget]) -> FenceStats {
    let mut seen: HashSet<(FuncId, BlockId)> = HashSet::new();
    let mut stats = FenceStats::default();
    for g in gadgets {
        if !seen.insert((g.func, g.vulnerable_block)) {
            continue;
        }
        let f = module.function_mut(g.func);
        f.insert_inst(g.vulnerable_block, 0, Inst::Op(OpKind::Fence));
        stats.fences += 1;
    }
    stats
}

/// The naive alternative the paper's efficiency argument is made against:
/// fence the taken successor of *every* data-dependent conditional branch.
pub fn fence_all_conditionals(module: &mut Module) -> FenceStats {
    let mut stats = FenceStats::default();
    let mut targets: Vec<(FuncId, BlockId)> = Vec::new();
    for f in module.functions() {
        for term in f.terms() {
            if let Terminator::Branch {
                cond: Cond::Random { .. },
                then_bb,
                ..
            } = term
            {
                stats.branches_seen += 1;
                targets.push((f.id(), *then_bb));
            }
        }
    }
    let mut seen = HashSet::new();
    for (func, bb) in targets {
        if !seen.insert((func, bb)) {
            continue;
        }
        module
            .function_mut(func)
            .insert_inst(bb, 0, Inst::Op(OpKind::Fence));
        stats.fences += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::FunctionBuilder;

    /// One function with a real gadget, one with a harmless branch.
    fn module() -> (Module, FuncId, FuncId) {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("gadget", 1);
        let vuln = b.new_block();
        let exit = b.new_block();
        b.op(OpKind::Cmp); // index < size
        b.branch(Cond::Random { ptaken_milli: 900 }, vuln, exit);
        b.switch_to(vuln);
        b.op(OpKind::Load); // ptr = data[index]
        b.op(OpKind::Load); // value = *ptr
        b.jump(exit);
        b.switch_to(exit);
        b.ret();
        let gadget = m.add_function(b.build());

        let mut b = FunctionBuilder::new("harmless", 1);
        let t = b.new_block();
        let exit = b.new_block();
        b.op(OpKind::Cmp);
        b.branch(Cond::Random { ptaken_milli: 500 }, t, exit);
        b.switch_to(t);
        b.op(OpKind::Alu); // no dependent loads
        b.op(OpKind::Load);
        b.jump(exit);
        b.switch_to(exit);
        b.ret();
        let harmless = m.add_function(b.build());
        (m, gadget, harmless)
    }

    #[test]
    fn finds_only_double_load_gadgets() {
        let (m, gadget, _) = module();
        let found = find_v1_gadgets(&m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].func, gadget);
    }

    #[test]
    fn fencing_inserts_one_fence_per_gadget_block() {
        let (mut m, gadget, _) = module();
        let found = find_v1_gadgets(&m);
        // Duplicate entries must not double-fence.
        let doubled: Vec<_> = found.iter().chain(found.iter()).copied().collect();
        let stats = fence_gadgets(&mut m, &doubled);
        assert_eq!(stats.fences, 1);
        m.verify().unwrap();
        let vuln = m.function(gadget).block(BlockId::from_raw(1));
        assert!(matches!(vuln.insts()[0], Inst::Op(OpKind::Fence)));
        // The fenced block no longer matches the gadget pattern head-on
        // (the fence sits before the loads), but re-fencing stays idempotent
        // through the dedup above either way.
    }

    #[test]
    fn naive_fencing_touches_every_conditional() {
        let (mut m, _, _) = module();
        let stats = fence_all_conditionals(&mut m);
        assert_eq!(stats.branches_seen, 2);
        assert_eq!(stats.fences, 2);
        m.verify().unwrap();
    }

    #[test]
    fn kernel_has_few_gadgets_relative_to_branches() {
        use pibe_kernel::{Kernel, KernelSpec};
        let k = Kernel::generate(KernelSpec::test());
        let gadgets = find_v1_gadgets(&k.module);
        let mut all = k.module.clone();
        let naive = fence_all_conditionals(&mut all);
        assert!(
            (gadgets.len() as u64) < naive.branches_seen / 4,
            "§3: few conditional branches are suitable gadgets \
             ({} gadgets vs {} branches)",
            gadgets.len(),
            naive.branches_seen
        );
    }
}
