//! Dead-function elimination: the linker-style `--gc-sections` analogue.
//!
//! The synthetic kernel (like a real one) carries a long tail of functions
//! no entry point can reach. This pass rebuilds a module containing only
//! the functions reachable from a root set — following direct calls,
//! promoted-guard targets, and a caller-supplied set of address-taken
//! functions (indirect-call targets are invisible statically, exactly the
//! reason real dead-code elimination needs relocation/address-taken
//! information).
//!
//! Because function ids are dense indices, removal *renumbers* the
//! survivors; the returned [`DceMap`] translates old ids so callers can
//! remap entry tables, target oracles, and profiles.

use pibe_ir::{Cond, FuncId, Inst, Module, Terminator};
use serde::{Deserialize, Serialize};

/// Old-id → new-id translation for a stripped module.
#[derive(Debug, Clone)]
pub struct DceMap {
    forward: Vec<Option<FuncId>>,
}

impl DceMap {
    /// New id of an old function, or `None` if it was removed.
    pub fn translate(&self, old: FuncId) -> Option<FuncId> {
        self.forward.get(old.index()).copied().flatten()
    }
}

/// What [`strip_unreachable`] removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DceStats {
    /// Functions kept.
    pub kept_functions: u64,
    /// Functions removed.
    pub removed_functions: u64,
    /// Model code bytes removed.
    pub removed_bytes: u64,
}

/// Rebuilds `module` with only the functions reachable from `roots` plus
/// `address_taken` (functions whose address escapes into dispatch tables —
/// they stay even without a static call edge, since an indirect call may
/// reach them).
///
/// Call edges followed: direct calls, and promoted-guard (`TargetIs`)
/// targets. Returns the stripped module, the id translation, and removal
/// statistics. Site ids are preserved, so profiles keep applying.
pub fn strip_unreachable(
    module: &Module,
    roots: &[FuncId],
    address_taken: &[FuncId],
) -> (Module, DceMap, DceStats) {
    strip_unreachable_threaded(module, roots, address_taken, 1)
}

/// The callees and promoted-guard targets of one function — the out-edges
/// the mark phase follows.
fn out_edges(f: &pibe_ir::Function) -> Vec<FuncId> {
    let mut out = Vec::new();
    // Flat pool scan: tombstones are plain ops and never carry a FuncId,
    // so the raw pool holds exactly the live calls.
    for inst in f.insts() {
        if let Inst::Call { callee, .. } = inst {
            out.push(*callee);
        }
    }
    for term in f.terms() {
        if let Terminator::Branch {
            cond: Cond::TargetIs { target, .. },
            ..
        } = term
        {
            out.push(*target);
        }
    }
    out
}

/// Like [`strip_unreachable`], fanning the expensive per-function body
/// scans across up to `threads` workers.
///
/// With `threads > 1` the mark phase first extracts every function's
/// out-edges in parallel (the body walks dominate DCE cost at kernel
/// scale), then runs the same worklist closure over the precomputed edge
/// lists; the sweep and remap are unchanged. Liveness is a fixpoint over
/// the same edge set either way, so the surviving set — and therefore the
/// output module, map, and stats — is identical to the sequential pass.
pub fn strip_unreachable_threaded(
    module: &Module,
    roots: &[FuncId],
    address_taken: &[FuncId],
    threads: usize,
) -> (Module, DceMap, DceStats) {
    let _pass_span = pibe_trace::span("pass.dce");
    // Mark phase.
    let edges: Option<Vec<Vec<FuncId>>> = (threads > 1).then(|| {
        pibe_ir::par::map_indexed(module.len(), threads, |i| out_edges(&module.functions()[i]))
    });
    // Function ids are dense, so liveness is a flat bit vector — no
    // per-function hashing anywhere in the mark phase.
    let mut live = vec![false; module.len()];
    let mut work: Vec<FuncId> = Vec::new();
    for &f in roots.iter().chain(address_taken) {
        if !std::mem::replace(&mut live[f.index()], true) {
            work.push(f);
        }
    }
    while let Some(f) = work.pop() {
        let mut follow = |succ: FuncId, work: &mut Vec<FuncId>| {
            if !std::mem::replace(&mut live[succ.index()], true) {
                work.push(succ);
            }
        };
        if let Some(edges) = &edges {
            for &succ in &edges[f.index()] {
                follow(succ, &mut work);
            }
            continue;
        }
        for succ in out_edges(module.function(f)) {
            follow(succ, &mut work);
        }
    }

    // Sweep phase: rebuild with dense new ids, old order preserved.
    let mut stripped = Module::new(module.name().to_string());
    let mut forward: Vec<Option<FuncId>> = vec![None; module.len()];
    for f in module.functions() {
        if live[f.id().index()] {
            // Arc clone: survivors stay shared with the input module until
            // the remap below actually has to rewrite one of them.
            forward[f.id().index()] = Some(stripped.add_function_arc(f.clone()));
        }
    }
    // Remap call targets. Only functions whose targets actually move get
    // rewritten — everything else stays CoW-shared with the input module.
    let translate =
        |old: FuncId| forward[old.index()].expect("live function calls only live functions");
    for id in stripped.func_ids().collect::<Vec<_>>() {
        // Flat pool scans: dropped calls are tombstoned to plain ops, so
        // every Call in the raw pool is live and safe to translate.
        let func = stripped.function(id);
        let needs_remap =
            func.insts().iter().any(
                |inst| matches!(inst, Inst::Call { callee, .. } if translate(*callee) != *callee),
            ) || func.terms().any(|term| {
                matches!(
                    term,
                    Terminator::Branch {
                        cond: Cond::TargetIs { target, .. },
                        ..
                    } if translate(*target) != *target
                )
            });
        if !needs_remap {
            continue;
        }
        let func = stripped.function_mut(id);
        for inst in func.insts_mut() {
            if let Inst::Call { callee, .. } = inst {
                *callee = translate(*callee);
            }
        }
        for term in func.terms_mut() {
            if let Terminator::Branch {
                cond: Cond::TargetIs { target, .. },
                ..
            } = term
            {
                *target = translate(*target);
            }
        }
    }

    // Sum bytes over the removed functions only — identical to the
    // pre/post `code_bytes` difference (remapping callee ids never changes
    // an instruction's size), but it skips every survivor and the removed
    // cold mass is unmutated, so its per-function byte counts stay
    // memoized across repeated builds of the same input.
    let removed_bytes = module
        .functions()
        .iter()
        .filter(|f| forward[f.id().index()].is_none())
        .map(|f| pibe_ir::size::function_bytes(f))
        .sum();
    let stats = DceStats {
        kept_functions: stripped.len() as u64,
        removed_functions: (module.len() - stripped.len()) as u64,
        removed_bytes,
    };
    pibe_trace::event_args("dce.strip", || {
        vec![
            ("kept", pibe_trace::Value::from(stats.kept_functions)),
            ("removed", pibe_trace::Value::from(stats.removed_functions)),
            ("bytes", pibe_trace::Value::from(stats.removed_bytes)),
        ]
    });
    (stripped, DceMap { forward }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FunctionBuilder, OpKind};

    /// dead0, leaf, dead1, root(->leaf), dead2(->dead0)
    fn module() -> (Module, FuncId, FuncId) {
        let mut m = Module::new("m");
        let mk_leaf = |m: &mut Module, name: &str| {
            let mut b = FunctionBuilder::new(name, 0);
            b.op(OpKind::Alu);
            b.ret();
            m.add_function(b.build())
        };
        let dead0 = mk_leaf(&mut m, "dead0");
        let leaf = mk_leaf(&mut m, "leaf");
        let _dead1 = mk_leaf(&mut m, "dead1");
        let s = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(s, leaf, 0);
        b.ret();
        let root = m.add_function(b.build());
        let s2 = m.fresh_site();
        let mut b = FunctionBuilder::new("dead2", 0);
        b.call(s2, dead0, 0);
        b.ret();
        m.add_function(b.build());
        (m, root, leaf)
    }

    #[test]
    fn strips_everything_unreachable_from_roots() {
        let (m, root, leaf) = module();
        let (stripped, map, stats) = strip_unreachable(&m, &[root], &[]);
        assert_eq!(stats.kept_functions, 2);
        assert_eq!(stats.removed_functions, 3);
        assert!(stats.removed_bytes > 0);
        stripped.verify().unwrap();
        // Ids renumbered but names survive, and call edges still resolve.
        let new_root = map.translate(root).expect("root kept");
        assert_eq!(stripped.function(new_root).name(), "root");
        assert!(map.translate(leaf).is_some());
        assert_eq!(map.translate(FuncId::from_raw(0)), None, "dead0 removed");
    }

    #[test]
    fn address_taken_functions_survive() {
        let (m, root, _leaf) = module();
        let dead1 = m.find_function("dead1").unwrap();
        let (stripped, map, _) = strip_unreachable(&m, &[root], &[dead1]);
        assert!(map.translate(dead1).is_some());
        assert_eq!(stripped.len(), 3);
    }

    #[test]
    fn transitive_closure_via_dead_functions_is_not_kept() {
        let (m, root, _) = module();
        // dead2 calls dead0, but neither is reachable from root.
        let (stripped, _, _) = strip_unreachable(&m, &[root], &[]);
        assert!(stripped.find_function("dead2").is_none());
        assert!(stripped.find_function("dead0").is_none());
    }

    #[test]
    fn promoted_guard_targets_are_followed() {
        use pibe_ir::{BlockId, Cond, Terminator};
        let (mut m, root, _leaf) = module();
        let dead1 = m.find_function("dead1").unwrap();
        // Give root an ICP-style guard naming dead1.
        let s = m.fresh_site();
        let f = m.function_mut(root);
        f.insert_inst(BlockId::ENTRY, 0, pibe_ir::Inst::ResolveTarget { site: s });
        let last = f.append_block(Vec::new(), Terminator::Return);
        *f.term_mut(BlockId::ENTRY) = Terminator::Branch {
            cond: Cond::TargetIs {
                site: s,
                target: dead1,
            },
            then_bb: last,
            else_bb: last,
        };
        m.verify().unwrap();
        let (stripped, map, _) = strip_unreachable(&m, &[root], &[]);
        assert!(map.translate(dead1).is_some(), "guard target kept");
        stripped.verify().unwrap();
    }

    #[test]
    fn threaded_dce_is_bit_identical_to_sequential() {
        let (m, root, _) = module();
        let dead1 = m.find_function("dead1").unwrap();
        let (ref_m, ref_map, ref_stats) = strip_unreachable(&m, &[root], &[dead1]);
        for threads in [2, 4] {
            let (got_m, got_map, got_stats) =
                strip_unreachable_threaded(&m, &[root], &[dead1], threads);
            assert_eq!(got_stats, ref_stats, "threads={threads}");
            assert_eq!(got_m.functions(), ref_m.functions(), "threads={threads}");
            for old in m.func_ids() {
                assert_eq!(got_map.translate(old), ref_map.translate(old));
            }
        }
    }

    #[test]
    fn kernel_scale_dce_removes_the_cold_mass() {
        use pibe_kernel::{Kernel, KernelSpec, Syscall};
        let k = Kernel::generate(KernelSpec::test());
        let roots: Vec<FuncId> = Syscall::ALL.iter().map(|s| k.entry(*s)).collect();
        let taken: Vec<FuncId> = k
            .interface_sites
            .iter()
            .flat_map(|s| s.targets.iter().map(|(f, _)| *f))
            .collect();
        let (stripped, _, stats) = strip_unreachable(&k.module, &roots, &taken);
        stripped.verify().unwrap();
        let cold_total = k
            .module
            .functions()
            .iter()
            .filter(|f| f.name().starts_with("cold_") || f.name().starts_with("boot_"))
            .count() as u64;
        assert!(cold_total > 0);
        assert!(
            stats.removed_functions >= cold_total,
            "all cold/boot mass is unreachable ({} removed, {cold_total} cold)",
            stats.removed_functions
        );
        assert!(
            stripped
                .functions()
                .iter()
                .all(|f| !f.name().starts_with("cold_")),
            "no cold function survives"
        );
        // Every syscall entry survives and still verifies.
        assert!(stripped.find_function("sys_read").is_some());
    }
}
