//! Indirect call promotion (§5.3).
//!
//! "Indirect call promotion uses profiling information to determine the most
//! common target(s) for an indirect call site and then adds conditional
//! direct calls to those targets. The indirect call site itself remains as a
//! fallback."
//!
//! PIBE's twist: because hardened slow paths are so expensive (a retpoline
//! is ~21 cycles) while a guard is ~2 cycles, there is **no cap** on the
//! number of targets promoted from a single site — unlike conventional ICP
//! (and unlike JumpSwitches, whose inline chain is slot-limited).
//!
//! The transform turns
//!
//! ```text
//! call *ptr          ; site s
//! ```
//!
//! into the guard chain of Listing 2:
//!
//! ```text
//!         resolve s
//!         br (s == t0) ? direct0 : guard1
//! guard1: br (s == t1) ? direct1 : fallback
//! direct0: call t0 ; jmp merge
//! direct1: call t1 ; jmp merge
//! fallback: call *resolved ; jmp merge
//! merge:  ...rest of block
//! ```
//!
//! Each promoted direct call receives a fresh [`SiteId`] whose estimated
//! weight (the value-profile count) is recorded in the shared
//! [`SiteWeights`] table so the inliner can elide it next.

use crate::weights::SiteWeights;
use pibe_ir::{BlockId, Cond, FuncId, Inst, Module, SiteId, Terminator};
use pibe_profile::{select_by_budget, Budget, Profile};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// ICP tuning knobs.
///
/// Configurations are hashable so image caches (the `ImageFarm` in the core
/// crate) can key builds by the exact configuration that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IcpConfig {
    /// Optimization budget over cumulative `(site, target)` weight.
    pub budget: Budget,
    /// Cap on promoted targets per site. PIBE uses `None` (unlimited,
    /// §5.3); conventional ICP implementations use `Some(1)` or `Some(2)` —
    /// exposed for the ablation benchmarks.
    pub max_targets_per_site: Option<usize>,
}

impl Default for IcpConfig {
    fn default() -> Self {
        IcpConfig {
            budget: Budget::P99_999,
            max_targets_per_site: None,
        }
    }
}

/// What promotion did — feeding Tables 3, 8, and 10.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcpStats {
    /// Total `(site, target)` weight observed (candidate population).
    pub total_weight: u64,
    /// Distinct profiled indirect call sites.
    pub total_sites: u64,
    /// Distinct profiled `(site, target)` pairs.
    pub total_targets: u64,
    /// `(site, target)` pairs selected by the budget.
    pub candidate_targets: u64,
    /// Sites touched by promotion (Table 8 "call sites").
    pub promoted_sites: u64,
    /// Targets promoted (Table 8 "call targets").
    pub promoted_targets: u64,
    /// Dynamic weight promoted to direct calls.
    pub promoted_weight: u64,
    /// Sites skipped because they are inline-assembly or sit in `optnone`
    /// functions.
    pub skipped_sites: u64,
}

/// Runs indirect call promotion over `module`, updating `weights` with the
/// estimated counts of the freshly created direct-call sites.
///
/// Promotion must run *before* the inliner (it is what creates the inliner's
/// hottest candidates); the paper's pipeline does the same.
pub fn promote_indirect_calls(
    module: &mut Module,
    weights: &mut SiteWeights,
    profile: &Profile,
    config: &IcpConfig,
) -> IcpStats {
    let _pass_span = pibe_trace::span("pass.icp");
    let mut stats = IcpStats::default();

    // Gather (site, target, weight) candidates from the value profiles.
    let mut candidates: Vec<((SiteId, FuncId), u64)> = Vec::new();
    for (site, entries) in profile.iter_indirect() {
        stats.total_sites += 1;
        for e in entries {
            stats.total_targets += 1;
            stats.total_weight += e.count;
            candidates.push(((site, e.target), e.count));
        }
    }

    let selected = select_by_budget(&candidates, config.budget);
    stats.candidate_targets = selected.len() as u64;

    // Group the selected targets per site, hottest first (selection order).
    let mut per_site: HashMap<SiteId, Vec<(FuncId, u64)>> = HashMap::new();
    let mut site_order: Vec<SiteId> = Vec::new();
    for ((site, target), w) in selected {
        let entry = per_site.entry(site).or_default();
        if entry.is_empty() {
            site_order.push(site);
        }
        if config
            .max_targets_per_site
            .is_none_or(|cap| entry.len() < cap)
        {
            entry.push((target, w));
        }
    }

    // Index: which function owns each *selected* indirect site (pre-ICP
    // they are static-unique). Only promotion candidates need an owner, so
    // the scan filters before hashing instead of indexing every indirect
    // site in the module.
    let needed: HashSet<SiteId> = site_order.iter().copied().collect();
    let mut owner: HashMap<SiteId, FuncId> = HashMap::with_capacity(needed.len());
    for f in module.functions() {
        if owner.len() == needed.len() {
            break;
        }
        // Flat pool scan: tombstones are plain ops and cannot match.
        for inst in f.insts() {
            if let Inst::CallIndirect { site, .. } = inst {
                if needed.contains(site) {
                    owner.insert(*site, f.id());
                }
            }
        }
    }

    for site in site_order {
        let targets = &per_site[&site];
        let Some(&func) = owner.get(&site) else {
            // Profiled site no longer exists (e.g. DCE'd); nothing to do.
            stats.skipped_sites += 1;
            continue;
        };
        if module.function(func).attrs().optnone {
            stats.skipped_sites += 1;
            continue;
        }
        match promote_site(module, weights, func, site, targets) {
            PromoteOutcome::Promoted { targets, weight } => {
                stats.promoted_sites += 1;
                stats.promoted_targets += targets;
                stats.promoted_weight += weight;
                pibe_trace::event_args("icp.promote", || {
                    vec![
                        ("site", pibe_trace::Value::from(site.raw())),
                        ("targets", pibe_trace::Value::from(targets)),
                        ("weight", pibe_trace::Value::from(weight)),
                    ]
                });
                pibe_trace::record_value("icp.targets_per_site", targets);
            }
            PromoteOutcome::Skipped => {
                stats.skipped_sites += 1;
                pibe_trace::event_args("icp.skip", || {
                    vec![("site", pibe_trace::Value::from(site.raw()))]
                });
            }
        }
    }
    stats
}

enum PromoteOutcome {
    Promoted { targets: u64, weight: u64 },
    Skipped,
}

/// Rewrites one indirect call site into the guard chain.
fn promote_site(
    module: &mut Module,
    weights: &mut SiteWeights,
    func: FuncId,
    site: SiteId,
    targets: &[(FuncId, u64)],
) -> PromoteOutcome {
    // Locate the unresolved indirect call.
    let mut found: Option<(BlockId, usize, u8)> = None;
    'outer: for (bid, block) in module.function(func).iter_blocks() {
        for (idx, inst) in block.insts().iter().enumerate() {
            if let Inst::CallIndirect {
                site: s,
                args,
                resolved: false,
                asm,
            } = inst
            {
                if *s == site {
                    if *asm {
                        return PromoteOutcome::Skipped; // cannot touch inline asm
                    }
                    found = Some((bid, idx, *args));
                    break 'outer;
                }
            }
        }
    }
    let Some((bid, idx, args)) = found else {
        return PromoteOutcome::Skipped;
    };

    // Fresh site ids for the promoted direct calls.
    let promos: Vec<(SiteId, FuncId, u64)> = targets
        .iter()
        .map(|(t, w)| (module.fresh_site(), *t, *w))
        .collect();

    let f = module.function_mut(func);
    let nblocks = f.num_blocks() as u32;
    let n = promos.len() as u32;
    // Block id plan (appended after the existing blocks):
    //   merge                      = nblocks
    //   guard_i (i in 1..n)        = nblocks + i        (guard_0 reuses bid)
    //   direct_i (i in 0..n)       = nblocks + n + i
    //   fallback                   = nblocks + 2n
    let guard_id = |i: u32| {
        debug_assert!(i >= 1);
        BlockId::from_raw(nblocks + i)
    };
    let direct_id = |i: u32| BlockId::from_raw(nblocks + n + i);
    let fallback_id = BlockId::from_raw(nblocks + 2 * n);

    // Rewrite the indirect call into the resolve in place, then split the
    // calling block after it — pure pool-range arithmetic, no inst copies.
    f.block_insts_mut(bid)[idx] = Inst::ResolveTarget { site };
    let merge_id = f.split_block(
        bid,
        idx + 1,
        false,
        Terminator::Branch {
            cond: Cond::TargetIs {
                site,
                target: promos[0].1,
            },
            then_bb: direct_id(0),
            else_bb: if n > 1 { guard_id(1) } else { fallback_id },
        },
    );
    debug_assert_eq!(merge_id, BlockId::from_raw(nblocks));
    // guard blocks 1..n.
    for i in 1..n {
        f.append_block(
            Vec::new(),
            Terminator::Branch {
                cond: Cond::TargetIs {
                    site,
                    target: promos[i as usize].1,
                },
                then_bb: direct_id(i),
                else_bb: if i + 1 < n {
                    guard_id(i + 1)
                } else {
                    fallback_id
                },
            },
        );
    }
    // direct blocks.
    for (new_site, target, _) in &promos {
        f.append_block(
            vec![Inst::Call {
                site: *new_site,
                callee: *target,
                args,
            }],
            Terminator::Jump { target: merge_id },
        );
    }
    // fallback block.
    f.append_block(
        vec![Inst::CallIndirect {
            site,
            args,
            resolved: true,
            asm: false,
        }],
        Terminator::Jump { target: merge_id },
    );

    let mut weight = 0;
    for (new_site, _, w) in &promos {
        weights.set(*new_site, *w);
        weight += w;
    }
    PromoteOutcome::Promoted {
        targets: promos.len() as u64,
        weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FunctionBuilder, OpKind};

    /// root() { icall(site) } with three possible targets; profile observes
    /// them with the given counts.
    fn module(counts: &[u64]) -> (Module, Profile, SiteId, FuncId, Vec<FuncId>) {
        let mut m = Module::new("m");
        let mut targets = Vec::new();
        for i in 0..counts.len() {
            let mut b = FunctionBuilder::new(format!("t{i}"), 1);
            b.op(OpKind::Alu);
            b.ret();
            targets.push(m.add_function(b.build()));
        }
        let site = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.op(OpKind::Mov);
        b.call_indirect(site, 1);
        b.op(OpKind::Store);
        b.ret();
        let root = m.add_function(b.build());

        let mut p = Profile::new();
        for (t, c) in targets.iter().zip(counts) {
            for _ in 0..*c {
                p.record_indirect(site, *t);
                p.record_entry(*t);
            }
        }
        (m, p, site, root, targets)
    }

    #[test]
    fn promotes_all_targets_with_unlimited_cap() {
        let (mut m, p, _site, root, targets) = module(&[500, 300, 200]);
        let mut w = SiteWeights::new();
        let stats = promote_indirect_calls(
            &mut m,
            &mut w,
            &p,
            &IcpConfig {
                budget: Budget::new(100.0).unwrap(),
                max_targets_per_site: None,
            },
        );
        assert_eq!(stats.promoted_sites, 1);
        assert_eq!(stats.promoted_targets, 3);
        assert_eq!(stats.promoted_weight, 1000);
        m.verify().unwrap();
        // Three fresh direct-call sites with the value-profile weights.
        let weights: Vec<u64> = w.iter().map(|(_, c)| c).collect();
        assert_eq!(weights.len(), 3);
        assert_eq!(weights.iter().sum::<u64>(), 1000);
        // The fallback still exists, now resolved.
        let f = m.function(root);
        let fallback = f
            .iter_insts()
            .filter(|i| matches!(i, Inst::CallIndirect { resolved: true, .. }))
            .count();
        assert_eq!(fallback, 1);
        // Guard order is hottest-first: first direct block calls targets[0].
        let direct_callees: Vec<FuncId> = f
            .iter_insts()
            .filter_map(|i| match i {
                Inst::Call { callee, .. } => Some(*callee),
                _ => None,
            })
            .collect();
        assert_eq!(direct_callees[0], targets[0]);
    }

    #[test]
    fn budget_limits_promoted_targets() {
        let (mut m, p, _site, _root, _targets) = module(&[900, 90, 10]);
        let mut w = SiteWeights::new();
        let stats = promote_indirect_calls(
            &mut m,
            &mut w,
            &p,
            &IcpConfig {
                budget: Budget::P99,
                max_targets_per_site: None,
            },
        );
        // 900 + 90 covers 99% of 1000.
        assert_eq!(stats.candidate_targets, 2);
        assert_eq!(stats.promoted_targets, 2);
        assert_eq!(stats.promoted_weight, 990);
    }

    #[test]
    fn per_site_cap_models_conventional_icp() {
        let (mut m, p, _site, _root, _targets) = module(&[500, 300, 200]);
        let mut w = SiteWeights::new();
        let stats = promote_indirect_calls(
            &mut m,
            &mut w,
            &p,
            &IcpConfig {
                budget: Budget::new(100.0).unwrap(),
                max_targets_per_site: Some(1),
            },
        );
        assert_eq!(stats.promoted_targets, 1);
        assert_eq!(stats.promoted_weight, 500);
    }

    #[test]
    fn asm_sites_are_never_promoted() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("t", 0);
        b.ret();
        let t = m.add_function(b.build());
        let site = m.fresh_site();
        let mut b = FunctionBuilder::new("paravirt", 0);
        b.call_indirect_asm(site, 0);
        b.ret();
        m.add_function(b.build());
        let mut p = Profile::new();
        for _ in 0..100 {
            p.record_indirect(site, t);
        }
        let mut w = SiteWeights::new();
        let stats = promote_indirect_calls(&mut m, &mut w, &p, &IcpConfig::default());
        assert_eq!(stats.promoted_sites, 0);
        assert_eq!(stats.skipped_sites, 1);
        assert_eq!(m.census().indirect_calls, 1, "module unchanged");
    }

    #[test]
    fn unprofiled_sites_are_left_alone() {
        let (mut m, _p, _site, _root, _targets) = module(&[10]);
        let empty = Profile::new();
        let mut w = SiteWeights::new();
        let stats = promote_indirect_calls(&mut m, &mut w, &empty, &IcpConfig::default());
        assert_eq!(stats.promoted_sites, 0);
        assert_eq!(m.census().indirect_calls, 1);
    }

    #[test]
    fn single_target_site_gets_guard_plus_fallback() {
        let (mut m, p, _site, root, _targets) = module(&[100]);
        let mut w = SiteWeights::new();
        promote_indirect_calls(&mut m, &mut w, &p, &IcpConfig::default());
        m.verify().unwrap();
        // Blocks: entry, original-return-block isn't split... layout:
        // entry(resolve+guard), merge, direct, fallback = 4.
        assert_eq!(m.function(root).num_blocks(), 4);
    }
}
