//! PIBE's greedy hot-first security inliner (§5.2).
//!
//! Traditional inliners optimise for *further optimisation opportunities*
//! and therefore inline only very small functions. PIBE inlines to remove
//! **backward edges** (returns) from hot paths, because every surviving
//! return must pay the return-retpoline/LVI toll. The algorithm:
//!
//! 1. **Rule 1 — inline only hot call sites.** Rank every direct call site
//!    by profiled execution count and greedily select the hottest prefix
//!    covering the optimization budget.
//! 2. **Rule 2 — avoid excessive complexity in the caller.** Skip a site
//!    when the caller's post-inline `InlineCost` complexity would exceed
//!    12 000 (experimentally tuned, §5.2), bounding stack-frame bloat.
//! 3. **Rule 3 — skip heavyweight callees.** Skip callees whose own
//!    complexity exceeds LLVM's default threshold of 3 000, so one big
//!    callee cannot deplete a caller's budget that many small hot callees
//!    could use (Figure 1's `bar`/`foo_1` example).
//!
//! After inlining a callee `f` through a site with count ε, `f`'s own call
//! sites — now copied into the caller — are re-added as candidates with
//! count `count_in_f × ε / invocations(f)` (Scheifler-style constant-ratio
//! heuristic), so hot chains keep collapsing.
//!
//! The paper's best configuration additionally *disables* Rules 2 and 3 for
//! sites inside the 99% hottest prefix ("lax heuristics", §8.3), trading
//! image size for the last points of latency.

use crate::transform::{inline_call_site, InlineError};
use crate::weights::SiteWeights;
use pibe_ir::{size, FuncId, Inst, Module, SiteId};
use pibe_profile::{Budget, BudgetRanking, Profile};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Inliner tuning knobs, defaulting to the paper's experimentally selected
/// values.
///
/// Hashable (like [`IcpConfig`](crate::IcpConfig)) so image caches can key
/// builds by configuration; `Eq` is total because [`Budget`] construction
/// rejects NaN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InlinerConfig {
    /// Rule 1 optimization budget over cumulative direct-call weight.
    pub budget: Budget,
    /// Rule 2 threshold on the caller's post-inline complexity (12 000).
    pub rule2_caller_limit: u32,
    /// Rule 3 threshold on the callee's complexity (3 000, LLVM's default).
    pub rule3_callee_limit: u32,
    /// "Lax heuristics": disable Rules 2 and 3 for sites within
    /// `lax_budget` (the paper found the size heuristics counterproductive
    /// for the 99% hottest sites, §8.3).
    pub lax_heuristics: bool,
    /// The prefix within which lax mode applies (99% in the paper).
    pub lax_budget: Budget,
}

impl Default for InlinerConfig {
    fn default() -> Self {
        InlinerConfig {
            budget: Budget::P99_9,
            rule2_caller_limit: 12_000,
            rule3_callee_limit: 3_000,
            lax_heuristics: false,
            lax_budget: Budget::P99,
        }
    }
}

/// What the inliner did — the raw material of Tables 8, 9, and 10.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InlinerStats {
    /// All direct-call weight observed (Table 9's "Ovr." column).
    pub total_weight: u64,
    /// Static direct call sites considered.
    pub total_sites: u64,
    /// Direct call sites with a nonzero profiled weight — the candidate
    /// population Table 8's site percentages are relative to.
    pub profiled_sites: u64,
    /// Candidate sites selected by the budget (Table 10's "Candidates").
    pub candidate_sites: u64,
    /// Weight covered by the selected candidates.
    pub candidate_weight: u64,
    /// Call sites actually inlined (returns eliminated, Table 8).
    pub inlined_sites: u64,
    /// Dynamic weight elided — executed call/return pairs removed.
    pub inlined_weight: u64,
    /// Weight blocked by Rule 2 (caller complexity, Table 9).
    pub blocked_rule2_weight: u64,
    /// Weight blocked by Rule 3 (callee complexity, Table 9).
    pub blocked_rule3_weight: u64,
    /// Weight blocked for other reasons: recursive callees, `noinline`,
    /// `optnone` callers, inline-asm bodies (Table 9's "other").
    pub blocked_other_weight: u64,
    /// Candidates added through the constant-ratio propagation heuristic.
    pub propagated_candidates: u64,
}

/// A heap entry; ordered by weight (hottest first), ties broken by site then
/// caller for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Candidate {
    weight: u64,
    site: SiteId,
    caller: FuncId,
    callee: FuncId,
}

/// Runs the PIBE inliner over `module`.
///
/// `weights` carries per-site execution counts (lifted from the profile and
/// extended by indirect call promotion — run ICP first); `profile` supplies
/// function invocation counts for the constant-ratio heuristic.
pub fn run_inliner(
    module: &mut Module,
    weights: &SiteWeights,
    profile: &Profile,
    config: &InlinerConfig,
) -> InlinerStats {
    let _pass_span = pibe_trace::span("pass.inline");
    let mut stats = InlinerStats::default();

    // Incremental analyses: per-function complexity is memoised on first
    // use and updated by the exact splice delta on each successful inline
    // (see `size::inline_cost_delta`) — never recomputed from bodies
    // mid-pass. Inlining never adds or removes functions, so the dense
    // cache stays aligned.
    let mut cost_cache: Vec<Option<u32>> = vec![None; module.len()];

    // Rule 1: collect and rank every direct call site. The same scan
    // accumulates the flat CSR adjacency for the recursion analysis —
    // the only call-graph question the inliner asks, and one inlining
    // cannot change (every inline merely shortcuts an existing path), so
    // the marks need no maintenance while the module is transformed.
    let mut initial: Vec<(Candidate, u64)> = Vec::new();
    let mut csr_offsets: Vec<u32> = Vec::with_capacity(module.len() + 1);
    let mut csr_callees: Vec<FuncId> = Vec::new();
    csr_offsets.push(0);
    for f in module.functions() {
        // Flat pool scan: tombstones are plain ops and cannot match.
        for inst in f.insts() {
            if let Inst::Call { site, callee, .. } = inst {
                csr_callees.push(*callee);
                let w = weights.get(*site);
                stats.total_weight += w;
                stats.total_sites += 1;
                if w > 0 {
                    stats.profiled_sites += 1;
                }
                initial.push((
                    Candidate {
                        weight: w,
                        site: *site,
                        caller: f.id(),
                        callee: *callee,
                    },
                    w,
                ));
            }
        }
        csr_offsets.push(csr_callees.len() as u32);
    }
    let recursive = pibe_ir::recursive_marks(&csr_offsets, &csr_callees);
    drop(csr_offsets);
    drop(csr_callees);

    // One ranking pass answers both budgets: the selection prefix and, in
    // lax mode, the lax-exemption floor share the same sorted population.
    let ranking = BudgetRanking::new(&initial);
    let selected = ranking.selected(config.budget);
    stats.candidate_sites = selected.len() as u64;
    stats.candidate_weight = selected.iter().map(|(_, w)| *w).sum();
    // The coldest selected weight: propagated candidates below it are out of
    // budget; sites at or above the lax floor are exempt from Rules 2-3 when
    // lax mode is on.
    let weight_floor = selected.last().map(|(_, w)| *w).unwrap_or(u64::MAX);
    let lax_floor = if config.lax_heuristics {
        ranking.floor(config.lax_budget).unwrap_or(u64::MAX)
    } else {
        u64::MAX
    };

    let mut heap: BinaryHeap<Candidate> = selected.iter().map(|(c, _)| *c).collect();

    while let Some(cand) = heap.pop() {
        let caller_fn = module.function(cand.caller);
        let callee_fn = module.function(cand.callee);

        // "Other" inhibitors: recursion, attributes (Table 9).
        let callee_attrs = callee_fn.attrs();
        if cand.caller == cand.callee
            || recursive[cand.callee.index()]
            || callee_attrs.noinline
            || callee_attrs.optnone
            || callee_attrs.inline_asm
            || caller_fn.attrs().optnone
        {
            stats.blocked_other_weight += cand.weight;
            reject_event(&cand, "other", 0);
            continue;
        }

        let exempt = cand.weight >= lax_floor;
        let callee_cost = cached_cost(&mut cost_cache, module, cand.callee);
        pibe_trace::record_value("inline.callee_cost", callee_cost as u64);
        if !exempt {
            // Rule 3: a heavyweight callee would deplete the caller's
            // budget that many small hot callees could use.
            if callee_cost > config.rule3_callee_limit {
                stats.blocked_rule3_weight += cand.weight;
                reject_event(&cand, "rule3", callee_cost);
                continue;
            }
            // Rule 2: bound the caller's post-inline complexity.
            let caller_cost = cached_cost(&mut cost_cache, module, cand.caller);
            if caller_cost.saturating_add(callee_cost) > config.rule2_caller_limit {
                stats.blocked_rule2_weight += cand.weight;
                reject_event(&cand, "rule2", caller_cost.saturating_add(callee_cost));
                continue;
            }
        }

        match inline_call_site(module, cand.caller, cand.site) {
            Ok(info) => {
                // Only the caller's body changed; patch its cached cost by
                // the exact splice delta.
                if let Some(c) = cost_cache[cand.caller.index()] {
                    let updated =
                        i64::from(c) + size::inline_cost_delta(callee_cost, info.call_args);
                    debug_assert!(updated >= 0, "a function's cost cannot go negative");
                    cost_cache[cand.caller.index()] = Some(updated as u32);
                }
                stats.inlined_sites += 1;
                stats.inlined_weight += cand.weight;
                pibe_trace::event_args("inline.accept", || {
                    vec![
                        ("site", pibe_trace::Value::from(cand.site.raw())),
                        ("weight", pibe_trace::Value::from(cand.weight)),
                        ("callee_cost", pibe_trace::Value::from(callee_cost as u64)),
                    ]
                });
                // Constant-ratio heuristic: the callee's sites, now in the
                // caller, inherit scaled counts.
                let invocations = profile.entry_count(cand.callee);
                if invocations > 0 {
                    let ratio = cand.weight as f64 / invocations as f64;
                    for (s, c) in info.copied_direct_sites {
                        let w = (weights.get(s) as f64 * ratio).round() as u64;
                        if w >= weight_floor && w > 0 {
                            stats.propagated_candidates += 1;
                            // The eligible population grows as inlining
                            // exposes copied sites (Table 9's "Ovr." rises
                            // with the budget).
                            stats.total_weight += w;
                            stats.total_sites += 1;
                            stats.profiled_sites += 1;
                            heap.push(Candidate {
                                weight: w,
                                site: s,
                                caller: cand.caller,
                                callee: c,
                            });
                        }
                    }
                }
            }
            Err(InlineError::SelfInline { .. }) | Err(InlineError::SiteNotFound { .. }) => {
                stats.blocked_other_weight += cand.weight;
                reject_event(&cand, "other", 0);
            }
        }
    }
    stats
}

/// The memoised complexity of `f`: computed from the body on first use,
/// kept current by the exact inline delta afterwards (see `run_inliner`).
fn cached_cost(cache: &mut [Option<u32>], module: &Module, f: FuncId) -> u32 {
    match cache[f.index()] {
        Some(c) => c,
        None => {
            let c = size::function_cost(module.function(f));
            cache[f.index()] = Some(c);
            c
        }
    }
}

/// Emits the cost/benefit decision event for a rejected inline candidate
/// (`rule` is `rule2`, `rule3`, or `other`; `cost` the complexity that
/// tripped the rule, 0 when not cost-related).
fn reject_event(cand: &Candidate, rule: &'static str, cost: u32) {
    pibe_trace::event_args("inline.reject", || {
        vec![
            ("site", pibe_trace::Value::from(cand.site.raw())),
            ("weight", pibe_trace::Value::from(cand.weight)),
            ("rule", pibe_trace::Value::from(rule)),
            ("cost", pibe_trace::Value::from(cost as u64)),
        ]
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FnAttrs, FunctionBuilder, OpKind};

    /// Builds a module with `sizes[i]` ops in callee i, all called from
    /// `root`, and a profile giving site i the provided weight.
    fn chain_module(callees: &[(usize, u64)]) -> (Module, Profile, Vec<SiteId>, FuncId) {
        let mut m = Module::new("m");
        let mut ids = Vec::new();
        for (i, (ops, _)) in callees.iter().enumerate() {
            let mut b = FunctionBuilder::new(format!("callee{i}"), 0);
            b.ops(OpKind::Alu, *ops);
            b.ret();
            ids.push(m.add_function(b.build()));
        }
        let mut sites = Vec::new();
        let mut b = FunctionBuilder::new("root", 0);
        for id in &ids {
            let s = m.fresh_site();
            b.call(s, *id, 0);
            sites.push(s);
        }
        b.ret();
        let root = m.add_function(b.build());

        let mut p = Profile::new();
        for ((_, weight), (site, id)) in callees.iter().zip(sites.iter().zip(ids.iter())) {
            for _ in 0..*weight {
                p.record_direct(*site);
                p.record_entry(*id);
            }
        }
        (m, p, sites, root)
    }

    #[test]
    fn hot_small_callees_are_inlined() {
        let (mut m, p, _sites, root) = chain_module(&[(5, 100), (5, 100)]);
        let w = SiteWeights::from_profile(&p);
        let stats = run_inliner(&mut m, &w, &p, &InlinerConfig::default());
        assert_eq!(stats.inlined_sites, 2);
        assert_eq!(stats.inlined_weight, 200);
        m.verify().unwrap();
        assert_eq!(
            m.function(root).return_sites(),
            1,
            "only root's own return remains on the path"
        );
        assert!(m
            .function(root)
            .iter_insts()
            .all(|i| !matches!(i, Inst::Call { .. })));
    }

    #[test]
    fn budget_excludes_cold_sites() {
        // Hot site (10_000) and a very cold one (1): 99% budget covers only
        // the hot one.
        let (mut m, p, _sites, _root) = chain_module(&[(5, 10_000), (5, 1)]);
        let w = SiteWeights::from_profile(&p);
        let cfg = InlinerConfig {
            budget: Budget::P99,
            ..InlinerConfig::default()
        };
        let stats = run_inliner(&mut m, &w, &p, &cfg);
        assert_eq!(stats.candidate_sites, 1);
        assert_eq!(stats.inlined_sites, 1);
        assert_eq!(stats.total_weight, 10_001);
    }

    #[test]
    fn rule3_blocks_heavyweight_callees() {
        // 700 ops * 5 = 3500 > 3000.
        let (mut m, p, _sites, _root) = chain_module(&[(700, 100)]);
        let w = SiteWeights::from_profile(&p);
        let stats = run_inliner(&mut m, &w, &p, &InlinerConfig::default());
        assert_eq!(stats.inlined_sites, 0);
        assert_eq!(stats.blocked_rule3_weight, 100);
        assert_eq!(stats.blocked_rule2_weight, 0);
    }

    #[test]
    fn rule2_blocks_when_caller_budget_depletes() {
        // Callees of 500 ops (cost 2505 < 3000 — Rule 3 passes). Five of
        // them: after four, root's cost exceeds 12 000 and Rule 2 stops it.
        let spec: Vec<(usize, u64)> = (0..5).map(|i| (500, 100 - i as u64)).collect();
        let (mut m, p, _sites, _root) = chain_module(&spec);
        let w = SiteWeights::from_profile(&p);
        let stats = run_inliner(&mut m, &w, &p, &InlinerConfig::default());
        assert!(stats.inlined_sites >= 3, "several callees fit");
        assert!(stats.blocked_rule2_weight > 0, "the last ones do not");
        assert_eq!(stats.blocked_rule3_weight, 0);
    }

    #[test]
    fn figure1_rule3_preserves_budget_for_small_hot_callees() {
        // Figure 1: bar calls foo_1 (cost ~12000, weight 1000),
        // foo_2 (cost ~300, weight 500), foo_3 (cost ~200, weight 500).
        // Without Rule 3, greedy would inline foo_1 first and deplete the
        // budget; with Rule 3, foo_1 is skipped and both foo_2 and foo_3 fit.
        let (mut m, p, _sites, _root) = chain_module(&[(2400, 1000), (60, 500), (40, 500)]);
        let w = SiteWeights::from_profile(&p);
        let stats = run_inliner(&mut m, &w, &p, &InlinerConfig::default());
        assert_eq!(stats.blocked_rule3_weight, 1000, "foo_1 skipped by Rule 3");
        assert_eq!(stats.inlined_sites, 2, "foo_2 and foo_3 both inlined");
        assert_eq!(stats.inlined_weight, 1000, "same weight elided as foo_1");
    }

    #[test]
    fn lax_heuristics_disable_rules_for_the_hot_prefix() {
        let (mut m, p, _sites, _root) = chain_module(&[(2400, 1000), (60, 500), (40, 500)]);
        let w = SiteWeights::from_profile(&p);
        let cfg = InlinerConfig {
            lax_heuristics: true,
            lax_budget: Budget::P99,
            budget: Budget::P99_9999,
            ..InlinerConfig::default()
        };
        let stats = run_inliner(&mut m, &w, &p, &cfg);
        assert_eq!(
            stats.blocked_rule3_weight, 0,
            "rules disabled for hot sites"
        );
        assert_eq!(stats.inlined_sites, 3);
    }

    #[test]
    fn noinline_and_recursion_are_blocked_as_other() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("stubborn", 0);
        b.attrs(FnAttrs {
            noinline: true,
            ..FnAttrs::default()
        });
        b.ret();
        let stubborn = m.add_function(b.build());
        // Recursive function.
        let mut b = FunctionBuilder::new("tmp", 0);
        b.ret();
        let rec = m.add_function(b.build());
        let s_rec_self = m.fresh_site();
        let mut b = FunctionBuilder::new("rec", 0);
        b.call(s_rec_self, rec, 0);
        b.ret();
        m.replace_function(rec, b.build());

        let s1 = m.fresh_site();
        let s2 = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(s1, stubborn, 0);
        b.call(s2, rec, 0);
        b.ret();
        m.add_function(b.build());

        let mut p = Profile::new();
        for _ in 0..10 {
            p.record_direct(s1);
            p.record_direct(s2);
            p.record_entry(stubborn);
            p.record_entry(rec);
        }
        let w = SiteWeights::from_profile(&p);
        let stats = run_inliner(&mut m, &w, &p, &InlinerConfig::default());
        assert_eq!(stats.inlined_sites, 0);
        // s1 (noinline) + s2 (recursive callee) + the recursive self-site
        // s_rec_self carries weight 0 and is not selected.
        assert_eq!(stats.blocked_other_weight, 20);
    }

    #[test]
    fn propagation_collapses_hot_chains() {
        // root -> mid -> leaf, all hot; inlining mid exposes leaf's site in
        // root, which the constant-ratio heuristic then inlines too.
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", 0);
        b.ops(OpKind::Alu, 3);
        b.ret();
        let leaf = m.add_function(b.build());
        let s_mid_leaf = m.fresh_site();
        let mut b = FunctionBuilder::new("mid", 0);
        b.ops(OpKind::Alu, 2);
        b.call(s_mid_leaf, leaf, 0);
        b.ret();
        let mid = m.add_function(b.build());
        let s_root_mid = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(s_root_mid, mid, 0);
        b.ret();
        let root = m.add_function(b.build());

        let mut p = Profile::new();
        for _ in 0..100 {
            p.record_direct(s_root_mid);
            p.record_direct(s_mid_leaf);
            p.record_entry(mid);
            p.record_entry(leaf);
        }
        let w = SiteWeights::from_profile(&p);
        let stats = run_inliner(&mut m, &w, &p, &InlinerConfig::default());
        assert!(stats.propagated_candidates >= 1);
        assert_eq!(stats.inlined_sites, 3, "mid into root, leaf into both");
        m.verify().unwrap();
        // root now contains everything: no calls on its path.
        assert!(m
            .function(root)
            .iter_insts()
            .all(|i| !matches!(i, Inst::Call { .. })));
    }
}
