//! The lifted site-weight table shared between passes.

use pibe_ir::SiteId;
use pibe_profile::Profile;
use std::collections::HashMap;

/// Execution weights per direct call site, lifted from a [`Profile`] and
/// kept up to date across transformations.
///
/// ICP inserts fresh promoted-call sites here with their value-profile
/// counts; the inliner reads the table to rank candidates. This mirrors the
/// paper's profile lifting (§7): the optimization phase works on IR-level
/// weights that survive and track code transformation.
#[derive(Debug, Clone, Default)]
pub struct SiteWeights {
    map: HashMap<SiteId, u64>,
}

impl SiteWeights {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifts the direct-call counts of `profile`.
    pub fn from_profile(profile: &Profile) -> Self {
        SiteWeights {
            map: profile.iter_direct().collect(),
        }
    }

    /// Weight of `site` (0 when unknown).
    pub fn get(&self, site: SiteId) -> u64 {
        self.map.get(&site).copied().unwrap_or(0)
    }

    /// Sets the weight of a (typically freshly created) site.
    pub fn set(&mut self, site: SiteId, weight: u64) {
        self.map.insert(site, weight);
    }

    /// Iterates over `(site, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, u64)> + '_ {
        self.map.iter().map(|(s, w)| (*s, *w))
    }

    /// Number of known sites.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no weights are known.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::FuncId;

    #[test]
    fn lifts_direct_counts_from_profile() {
        let mut p = Profile::new();
        let s = SiteId::from_raw(4);
        p.record_direct(s);
        p.record_direct(s);
        p.record_indirect(SiteId::from_raw(5), FuncId::from_raw(0));
        let w = SiteWeights::from_profile(&p);
        assert_eq!(w.get(s), 2);
        assert_eq!(w.get(SiteId::from_raw(5)), 0, "indirect counts excluded");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn set_overrides_and_get_defaults_to_zero() {
        let mut w = SiteWeights::new();
        assert!(w.is_empty());
        let s = SiteId::from_raw(1);
        w.set(s, 10);
        w.set(s, 20);
        assert_eq!(w.get(s), 20);
        assert_eq!(w.iter().count(), 1);
    }
}
