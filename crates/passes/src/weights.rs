//! The lifted site-weight table shared between passes.

use pibe_ir::SiteId;
use pibe_profile::Profile;
use std::collections::HashMap;

/// An undo journal entry: the state `site` had before it was overwritten
/// (`None` when the site was previously unknown).
type UndoEntry = (SiteId, Option<u64>);

/// Execution weights per direct call site, lifted from a [`Profile`] and
/// kept up to date across transformations.
///
/// ICP inserts fresh promoted-call sites here with their value-profile
/// counts; the inliner reads the table to rank candidates. This mirrors the
/// paper's profile lifting (§7): the optimization phase works on IR-level
/// weights that survive and track code transformation.
#[derive(Debug, Clone, Default)]
pub struct SiteWeights {
    map: HashMap<SiteId, u64>,
    /// While a transaction is open ([`SiteWeights::begin_undo`]), the prior
    /// value of every overwritten site, oldest first.
    journal: Option<Vec<UndoEntry>>,
}

impl SiteWeights {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifts the direct-call counts of `profile`.
    pub fn from_profile(profile: &Profile) -> Self {
        SiteWeights {
            map: profile.iter_direct().collect(),
            journal: None,
        }
    }

    /// Opens an undo transaction: every subsequent [`SiteWeights::set`]
    /// records the site's prior state until [`SiteWeights::commit_undo`]
    /// or [`SiteWeights::rollback_undo`] closes the transaction.
    ///
    /// This is the cheap alternative to cloning the whole table for a
    /// transactional pipeline stage: the journal is proportional to the
    /// sites a pass actually touched, not to the profile.
    ///
    /// # Panics
    /// Panics if a transaction is already open (transactions do not nest —
    /// each pipeline stage closes its own).
    pub fn begin_undo(&mut self) {
        assert!(
            self.journal.is_none(),
            "undo transactions do not nest; commit or roll back first"
        );
        self.journal = Some(Vec::new());
    }

    /// Closes the open transaction, keeping all changes made since
    /// [`SiteWeights::begin_undo`] and discarding the journal.
    ///
    /// # Panics
    /// Panics if no transaction is open.
    pub fn commit_undo(&mut self) {
        self.journal.take().expect("commit_undo without begin_undo");
    }

    /// Closes the open transaction, restoring every site changed since
    /// [`SiteWeights::begin_undo`] to its prior state (inserted sites are
    /// removed again, overwritten sites get their old weight back).
    ///
    /// # Panics
    /// Panics if no transaction is open.
    pub fn rollback_undo(&mut self) {
        let journal = self
            .journal
            .take()
            .expect("rollback_undo without begin_undo");
        // Newest first, so a site set twice lands back on its original
        // pre-transaction state.
        for (site, old) in journal.into_iter().rev() {
            match old {
                Some(w) => {
                    self.map.insert(site, w);
                }
                None => {
                    self.map.remove(&site);
                }
            }
        }
    }

    /// Weight of `site` (0 when unknown).
    pub fn get(&self, site: SiteId) -> u64 {
        self.map.get(&site).copied().unwrap_or(0)
    }

    /// Sets the weight of a (typically freshly created) site.
    pub fn set(&mut self, site: SiteId, weight: u64) {
        let old = self.map.insert(site, weight);
        if let Some(journal) = &mut self.journal {
            journal.push((site, old));
        }
    }

    /// Iterates over `(site, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, u64)> + '_ {
        self.map.iter().map(|(s, w)| (*s, *w))
    }

    /// Number of known sites.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no weights are known.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::FuncId;

    #[test]
    fn lifts_direct_counts_from_profile() {
        let mut p = Profile::new();
        let s = SiteId::from_raw(4);
        p.record_direct(s);
        p.record_direct(s);
        p.record_indirect(SiteId::from_raw(5), FuncId::from_raw(0));
        let w = SiteWeights::from_profile(&p);
        assert_eq!(w.get(s), 2);
        assert_eq!(w.get(SiteId::from_raw(5)), 0, "indirect counts excluded");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn rollback_restores_inserts_and_overwrites() {
        let mut w = SiteWeights::new();
        let a = SiteId::from_raw(1);
        let b = SiteId::from_raw(2);
        w.set(a, 10);
        w.begin_undo();
        w.set(a, 99); // overwrite
        w.set(b, 7); // fresh insert
        w.set(a, 100); // second overwrite of the same site
        w.rollback_undo();
        assert_eq!(w.get(a), 10, "overwritten site restored");
        assert_eq!(w.get(b), 0, "inserted site removed again");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn commit_keeps_transaction_changes() {
        let mut w = SiteWeights::new();
        let a = SiteId::from_raw(1);
        w.begin_undo();
        w.set(a, 5);
        w.commit_undo();
        assert_eq!(w.get(a), 5);
        // A later rollback-free transaction starts clean.
        w.begin_undo();
        w.rollback_undo();
        assert_eq!(w.get(a), 5);
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nested_transactions_panic() {
        let mut w = SiteWeights::new();
        w.begin_undo();
        w.begin_undo();
    }

    #[test]
    fn set_overrides_and_get_defaults_to_zero() {
        let mut w = SiteWeights::new();
        assert!(w.is_empty());
        let s = SiteId::from_raw(1);
        w.set(s, 10);
        w.set(s, 20);
        assert_eq!(w.get(s), 20);
        assert_eq!(w.iter().count(), 1);
    }
}
