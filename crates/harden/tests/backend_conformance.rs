//! The backend-conformance suite: every [`DefenseBackend`] must satisfy
//! the trait's contract (see the trait docs in `src/backend.rs`) —
//! zero cost on `NONE`, cost monotonicity under defense union, transform
//! idempotence, and auditor-accepts-own-transform. The suite runs against
//! all four backends so a new architecture cannot land with a cost model
//! or transform that the pipeline's invariants do not hold for.

use pibe_harden::{apply_with, audit_backend, Arch, AuditError, DefenseBackend, DefenseSet};
use pibe_ir::{FnAttrs, FunctionBuilder, Module, OpKind};

/// All eight defense selections (the full power set of the three flags).
fn all_selections() -> Vec<DefenseSet> {
    let mut out = Vec::new();
    for retpolines in [false, true] {
        for ret_retpolines in [false, true] {
            for lvi_cfi in [false, true] {
                out.push(DefenseSet {
                    retpolines,
                    ret_retpolines,
                    lvi_cfi,
                });
            }
        }
    }
    out
}

fn union(a: DefenseSet, b: DefenseSet) -> DefenseSet {
    DefenseSet {
        retpolines: a.retpolines || b.retpolines,
        ret_retpolines: a.ret_retpolines || b.ret_retpolines,
        lvi_cfi: a.lvi_cfi || b.lvi_cfi,
    }
}

/// A module exercising every branch kind the auditor classifies: a
/// hardenable icall, a jump-table switch, an inline-asm icall, an
/// inline-asm jump table, and boot-only code.
fn test_module() -> Module {
    let mut m = Module::new("conformance");

    let s1 = m.fresh_site();
    let mut b = FunctionBuilder::new("normal", 0);
    let c = b.new_block();
    let exit = b.new_block();
    b.op(OpKind::Alu);
    b.call_indirect(s1, 1);
    b.switch(vec![1], vec![c], 1, exit, true);
    b.switch_to(c);
    b.jump(exit);
    b.switch_to(exit);
    b.ret();
    m.add_function(b.build());

    let s2 = m.fresh_site();
    let mut b = FunctionBuilder::new("paravirt", 0);
    b.attrs(FnAttrs {
        inline_asm: true,
        ..FnAttrs::default()
    });
    let c = b.new_block();
    let exit = b.new_block();
    b.call_indirect_asm(s2, 0);
    b.switch(vec![1], vec![c], 1, exit, true);
    b.switch_to(c);
    b.jump(exit);
    b.switch_to(exit);
    b.ret();
    m.add_function(b.build());

    let mut b = FunctionBuilder::new("start_kernel", 0);
    b.attrs(FnAttrs {
        boot_only: true,
        ..FnAttrs::default()
    });
    b.ret();
    m.add_function(b.build());
    m
}

fn backends() -> Vec<&'static dyn DefenseBackend> {
    Arch::ALL.iter().map(|a| a.backend()).collect()
}

#[test]
fn every_cost_is_zero_on_none() {
    for b in backends() {
        let none = DefenseSet::NONE;
        assert_eq!(b.forward_delta(none), 0, "{}", b.name());
        assert_eq!(b.return_delta(none), 0, "{}", b.name());
        assert_eq!(b.forward_site_bytes(none), 0, "{}", b.name());
        assert_eq!(b.return_site_bytes(none), 0, "{}", b.name());
        assert_eq!(b.shared_thunk_bytes(none), 0, "{}", b.name());
        assert!(!b.hardens_forward(none), "{}", b.name());
        assert!(!b.hardens_backward(none), "{}", b.name());
        assert!(!b.spectre_v2_safe(none), "{}", b.name());
        assert!(!b.ret2spec_safe(none), "{}", b.name());
        let m = test_module();
        assert_eq!(
            b.hardened_image_bytes(&m, none),
            m.code_bytes(),
            "{}: unhardened image must weigh its base code",
            b.name()
        );
    }
}

#[test]
fn costs_are_monotone_under_defense_union() {
    let selections = all_selections();
    for b in backends() {
        for &x in &selections {
            for &y in &selections {
                let u = union(x, y);
                for d in [x, y] {
                    assert!(
                        b.forward_delta(u) >= b.forward_delta(d),
                        "{}: forward_delta({u}) < forward_delta({d})",
                        b.name()
                    );
                    assert!(
                        b.return_delta(u) >= b.return_delta(d),
                        "{}: return_delta({u}) < return_delta({d})",
                        b.name()
                    );
                    assert!(
                        b.forward_site_bytes(u) >= b.forward_site_bytes(d),
                        "{}: forward_site_bytes not monotone at {u} vs {d}",
                        b.name()
                    );
                    assert!(
                        b.return_site_bytes(u) >= b.return_site_bytes(d),
                        "{}: return_site_bytes not monotone at {u} vs {d}",
                        b.name()
                    );
                }
            }
        }
    }
}

#[test]
fn transform_is_idempotent() {
    for b in backends() {
        for d in DefenseSet::EVALUATED {
            let mut m = test_module();
            let first = apply_with(&mut m, b, d, 1);
            let after_first = m.clone();
            let second = apply_with(&mut m, b, d, 1);
            assert_eq!(
                second.jump_tables_disabled,
                0,
                "{}: second application re-lowered tables under {d}",
                b.name()
            );
            assert_eq!(
                m.functions(),
                after_first.functions(),
                "{}: second application changed the module under {d}",
                b.name()
            );
            // x86 re-lowers the normal function's table; hardware CFI
            // backends are the identity transform.
            if b.disables_jump_tables(d) {
                assert_eq!(first.jump_tables_disabled, 1, "{}", b.name());
                assert_eq!(first.jump_tables_kept, 1, "{}", b.name());
            } else {
                assert_eq!(first.jump_tables_disabled, 0, "{}", b.name());
            }
        }
    }
}

#[test]
fn auditor_accepts_its_own_transform() {
    for b in backends() {
        for d in DefenseSet::EVALUATED {
            let mut m = test_module();
            apply_with(&mut m, b, d, 1);
            let audit = audit_backend(&m, b, d).unwrap_or_else(|e| {
                panic!(
                    "{}: auditor rejected its own transform under {d}: {e}",
                    b.name()
                )
            });
            // Whatever the backend, the inline-asm icall stays vulnerable
            // and boot-only returns are excluded.
            assert!(audit.vulnerable_icalls >= 1, "{}", b.name());
            assert_eq!(audit.boot_returns, 1, "{}", b.name());
            if b.hardens_forward(d) {
                assert_eq!(audit.protected_icalls, 1, "{}", b.name());
            }
            // Jump tables: re-lowered (x86), protected in place (hardware
            // CFI with landing pads), or left vulnerable (nop variant) —
            // never unclassifiable.
            if b.protects_jump_tables(d) {
                assert_eq!(audit.protected_ijumps, 2, "{}", b.name());
                assert_eq!(audit.vulnerable_ijumps, 0, "{}", b.name());
            } else if b.disables_jump_tables(d) {
                assert_eq!(
                    audit.vulnerable_ijumps,
                    1,
                    "{}: asm table survives",
                    b.name()
                );
            } else {
                assert_eq!(audit.vulnerable_ijumps, 2, "{}", b.name());
            }
        }
    }
}

#[test]
fn auditing_an_untransformed_image_names_the_offending_function() {
    // The x86 transform was never run: the surviving table in `normal` is
    // a backend mismatch, reported as a typed error naming the site.
    let m = test_module();
    let err = audit_backend(&m, Arch::X86.backend(), DefenseSet::ALL)
        .expect_err("untransformed table must be rejected");
    let AuditError::UnloweredJumpTable {
        function, backend, ..
    } = err;
    assert_eq!(function, "normal");
    assert_eq!(backend, "x86-retpoline");

    // The same image audits cleanly under a backend whose transform keeps
    // tables — the error is about mismatch, not about tables per se.
    for arch in [Arch::Arm64, Arch::Riscv64, Arch::Riscv64Nop] {
        audit_backend(&m, arch.backend(), DefenseSet::ALL).unwrap_or_else(|e| {
            panic!(
                "{}: table-keeping backend must accept tables: {e}",
                arch.name()
            )
        });
    }
}

#[test]
fn nop_variant_shares_bytes_with_enforced_but_charges_nothing() {
    let enforced = Arch::Riscv64.backend();
    let nop = Arch::Riscv64Nop.backend();
    let m = test_module();
    for d in all_selections() {
        assert_eq!(
            enforced.hardened_image_bytes(&m, d),
            nop.hardened_image_bytes(&m, d),
            "same binary, byte for byte, at {d}"
        );
        assert_eq!(nop.forward_delta(d), 0);
        assert_eq!(nop.return_delta(d), 0);
        assert!(!nop.spectre_v2_safe(d));
        assert!(!nop.ret2spec_safe(d));
        assert!(!nop.protects_jump_tables(d));
    }
}
