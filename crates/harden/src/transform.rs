//! IR-level side effects of enabling defenses.

use crate::backend::DefenseBackend;
use crate::DefenseSet;
use pibe_ir::{Module, Terminator};
use serde::{Deserialize, Serialize};

/// What [`apply`] changed in the module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardenReport {
    /// The defenses the image was hardened with.
    pub defenses: DefenseSet,
    /// Jump-table switches re-lowered to compare chains.
    pub jump_tables_disabled: u64,
    /// Jump-table switches that could *not* be re-lowered because they live
    /// in (modelled) inline assembly — the residual vulnerable indirect
    /// jumps of Table 11 (5 in the paper's kernel).
    pub jump_tables_kept: u64,
}

/// Applies the compile-time side effects of hardening `module` with
/// `defenses`.
///
/// Today this is jump-table disabling: "To protect against jump table
/// hijacking under transient execution, PIBE disables jump table generation
/// in the compiler — the default LLVM behavior when retpolines or LVI
/// defenses are enabled" (§5.1). Switches inside functions marked
/// `inline_asm` are outside the compiler's reach and keep their tables
/// (they become the audit's vulnerable indirect jumps).
///
/// The *costs* of hardened branches are charged dynamically by the
/// simulator from [`crate::costs`]; there is no need to rewrite every call
/// and return site in the IR.
pub fn apply(module: &mut Module, defenses: DefenseSet) -> HardenReport {
    apply_threaded(module, defenses, 1)
}

/// Like [`apply`], fanning the per-function rewrites across up to `threads`
/// workers.
///
/// Every function is an independent unit of work, so workers read shared
/// [`std::sync::Arc`] handles, rewrite privately, and the merge installs
/// results **in function-id order** — the report counts and the resulting
/// module are bit-identical to the sequential path under any thread count.
pub fn apply_threaded(module: &mut Module, defenses: DefenseSet, threads: usize) -> HardenReport {
    apply_with(module, crate::Arch::X86.backend(), defenses, threads)
}

/// [`apply_threaded`] under an explicit [`DefenseBackend`]: the backend's
/// transform semantics decide whether jump tables are re-lowered at all
/// (hardware-CFI backends cover table targets with landing pads and keep
/// the tables, so their transform is the identity).
pub fn apply_with(
    module: &mut Module,
    backend: &dyn DefenseBackend,
    defenses: DefenseSet,
    threads: usize,
) -> HardenReport {
    let mut report = HardenReport {
        defenses,
        ..HardenReport::default()
    };
    if !backend.disables_jump_tables(defenses) {
        return report;
    }
    if threads <= 1 {
        for id in module.func_ids().collect::<Vec<_>>() {
            let (rewritten, disabled, kept) = harden_function(module.function_arc(id));
            if let Some(f) = rewritten {
                module.set_function_arc(id, f);
            }
            report.jump_tables_disabled += disabled;
            report.jump_tables_kept += kept;
        }
        return report;
    }
    let shared = &*module;
    let results = pibe_ir::par::map_indexed(shared.len(), threads, |i| {
        harden_function(&shared.functions()[i])
    });
    for (i, (rewritten, disabled, kept)) in results.into_iter().enumerate() {
        if let Some(f) = rewritten {
            module.set_function_arc(pibe_ir::FuncId::from_raw(i as u32), f);
        }
        report.jump_tables_disabled += disabled;
        report.jump_tables_kept += kept;
    }
    report
}

/// Hardens one function, returning its replacement (if it changed) and the
/// `(disabled, kept)` jump-table counts. Reads first and only copies when a
/// re-lowerable table switch is actually present, so untouched functions
/// stay copy-on-write-shared with the pipeline's stage snapshots.
fn harden_function(
    f: &std::sync::Arc<pibe_ir::Function>,
) -> (Option<std::sync::Arc<pibe_ir::Function>>, u64, u64) {
    let tables = f
        .blocks()
        .iter()
        .filter(|b| {
            matches!(
                b.term,
                Terminator::Switch {
                    via_table: true,
                    ..
                }
            )
        })
        .count() as u64;
    if tables == 0 {
        return (None, 0, 0);
    }
    if f.attrs().inline_asm {
        return (None, 0, tables);
    }
    let mut nf = pibe_ir::Function::clone(f);
    for block in nf.blocks_mut() {
        if let Terminator::Switch { via_table, .. } = &mut block.term {
            *via_table = false;
        }
    }
    (Some(std::sync::Arc::new(nf)), tables, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FnAttrs, FunctionBuilder, OpKind};

    fn module_with_switches() -> Module {
        let mut m = Module::new("m");
        for (name, asm) in [("normal", false), ("paravirt", true)] {
            let mut b = FunctionBuilder::new(name, 0);
            b.attrs(FnAttrs {
                inline_asm: asm,
                ..FnAttrs::default()
            });
            let c0 = b.new_block();
            let c1 = b.new_block();
            let exit = b.new_block();
            b.op(OpKind::Cmp);
            b.switch(vec![1, 1], vec![c0, c1], 1, exit, true);
            b.switch_to(c0);
            b.jump(exit);
            b.switch_to(c1);
            b.jump(exit);
            b.switch_to(exit);
            b.ret();
            m.add_function(b.build());
        }
        m
    }

    #[test]
    fn no_defenses_keeps_jump_tables() {
        let mut m = module_with_switches();
        let r = apply(&mut m, DefenseSet::NONE);
        assert_eq!(r.jump_tables_disabled, 0);
        assert_eq!(m.census().indirect_jumps, 2);
    }

    #[test]
    fn defenses_disable_jump_tables_outside_inline_asm() {
        let mut m = module_with_switches();
        let r = apply(&mut m, DefenseSet::RETPOLINES);
        assert_eq!(r.jump_tables_disabled, 1);
        assert_eq!(r.jump_tables_kept, 1);
        assert_eq!(m.census().indirect_jumps, 1);
        m.verify().unwrap();
    }

    #[test]
    fn threaded_apply_is_bit_identical_to_sequential() {
        let reference = {
            let mut m = module_with_switches();
            let r = apply(&mut m, DefenseSet::RETPOLINES);
            (m, r)
        };
        for threads in [2, 4] {
            let mut m = module_with_switches();
            let r = apply_threaded(&mut m, DefenseSet::RETPOLINES, threads);
            assert_eq!(r, reference.1, "threads={threads}");
            assert_eq!(m.functions(), reference.0.functions(), "threads={threads}");
        }
    }

    #[test]
    fn untouched_functions_stay_cow_shared() {
        let base = module_with_switches();
        let mut m = base.clone();
        apply(&mut m, DefenseSet::RETPOLINES);
        let normal = base.find_function("normal").unwrap();
        let paravirt = base.find_function("paravirt").unwrap();
        assert!(
            !std::sync::Arc::ptr_eq(m.function_arc(normal), base.function_arc(normal)),
            "rewritten function got a private copy"
        );
        assert!(
            std::sync::Arc::ptr_eq(m.function_arc(paravirt), base.function_arc(paravirt)),
            "inline-asm function untouched, still shared"
        );
    }

    #[test]
    fn apply_is_idempotent() {
        let mut m = module_with_switches();
        apply(&mut m, DefenseSet::ALL);
        let again = apply(&mut m, DefenseSet::ALL);
        assert_eq!(again.jump_tables_disabled, 0);
        assert_eq!(again.jump_tables_kept, 1);
    }
}
