//! IR-level side effects of enabling defenses.

use crate::DefenseSet;
use pibe_ir::{Module, Terminator};
use serde::{Deserialize, Serialize};

/// What [`apply`] changed in the module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardenReport {
    /// The defenses the image was hardened with.
    pub defenses: DefenseSet,
    /// Jump-table switches re-lowered to compare chains.
    pub jump_tables_disabled: u64,
    /// Jump-table switches that could *not* be re-lowered because they live
    /// in (modelled) inline assembly — the residual vulnerable indirect
    /// jumps of Table 11 (5 in the paper's kernel).
    pub jump_tables_kept: u64,
}

/// Applies the compile-time side effects of hardening `module` with
/// `defenses`.
///
/// Today this is jump-table disabling: "To protect against jump table
/// hijacking under transient execution, PIBE disables jump table generation
/// in the compiler — the default LLVM behavior when retpolines or LVI
/// defenses are enabled" (§5.1). Switches inside functions marked
/// `inline_asm` are outside the compiler's reach and keep their tables
/// (they become the audit's vulnerable indirect jumps).
///
/// The *costs* of hardened branches are charged dynamically by the
/// simulator from [`crate::costs`]; there is no need to rewrite every call
/// and return site in the IR.
pub fn apply(module: &mut Module, defenses: DefenseSet) -> HardenReport {
    let mut report = HardenReport {
        defenses,
        ..HardenReport::default()
    };
    if !defenses.disables_jump_tables() {
        return report;
    }
    for id in module.func_ids().collect::<Vec<_>>() {
        let untouchable = module.function(id).attrs().inline_asm;
        for block in module.function_mut(id).blocks_mut() {
            if let Terminator::Switch { via_table, .. } = &mut block.term {
                if *via_table {
                    if untouchable {
                        report.jump_tables_kept += 1;
                    } else {
                        *via_table = false;
                        report.jump_tables_disabled += 1;
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FnAttrs, FunctionBuilder, OpKind};

    fn module_with_switches() -> Module {
        let mut m = Module::new("m");
        for (name, asm) in [("normal", false), ("paravirt", true)] {
            let mut b = FunctionBuilder::new(name, 0);
            b.attrs(FnAttrs {
                inline_asm: asm,
                ..FnAttrs::default()
            });
            let c0 = b.new_block();
            let c1 = b.new_block();
            let exit = b.new_block();
            b.op(OpKind::Cmp);
            b.switch(vec![1, 1], vec![c0, c1], 1, exit, true);
            b.switch_to(c0);
            b.jump(exit);
            b.switch_to(c1);
            b.jump(exit);
            b.switch_to(exit);
            b.ret();
            m.add_function(b.build());
        }
        m
    }

    #[test]
    fn no_defenses_keeps_jump_tables() {
        let mut m = module_with_switches();
        let r = apply(&mut m, DefenseSet::NONE);
        assert_eq!(r.jump_tables_disabled, 0);
        assert_eq!(m.census().indirect_jumps, 2);
    }

    #[test]
    fn defenses_disable_jump_tables_outside_inline_asm() {
        let mut m = module_with_switches();
        let r = apply(&mut m, DefenseSet::RETPOLINES);
        assert_eq!(r.jump_tables_disabled, 1);
        assert_eq!(r.jump_tables_kept, 1);
        assert_eq!(m.census().indirect_jumps, 1);
        m.verify().unwrap();
    }

    #[test]
    fn apply_is_idempotent() {
        let mut m = module_with_switches();
        apply(&mut m, DefenseSet::ALL);
        let again = apply(&mut m, DefenseSet::ALL);
        assert_eq!(again.jump_tables_disabled, 0);
        assert_eq!(again.jump_tables_kept, 1);
    }
}
