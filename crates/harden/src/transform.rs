//! IR-level side effects of enabling defenses.

use crate::backend::DefenseBackend;
use crate::DefenseSet;
use pibe_ir::{Function, Module, Terminator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What [`apply`] changed in the module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardenReport {
    /// The defenses the image was hardened with.
    pub defenses: DefenseSet,
    /// Jump-table switches re-lowered to compare chains.
    pub jump_tables_disabled: u64,
    /// Jump-table switches that could *not* be re-lowered because they live
    /// in (modelled) inline assembly — the residual vulnerable indirect
    /// jumps of Table 11 (5 in the paper's kernel).
    pub jump_tables_kept: u64,
}

/// Applies the compile-time side effects of hardening `module` with
/// `defenses`.
///
/// Today this is jump-table disabling: "To protect against jump table
/// hijacking under transient execution, PIBE disables jump table generation
/// in the compiler — the default LLVM behavior when retpolines or LVI
/// defenses are enabled" (§5.1). Switches inside functions marked
/// `inline_asm` are outside the compiler's reach and keep their tables
/// (they become the audit's vulnerable indirect jumps).
///
/// The *costs* of hardened branches are charged dynamically by the
/// simulator from [`crate::costs`]; there is no need to rewrite every call
/// and return site in the IR.
pub fn apply(module: &mut Module, defenses: DefenseSet) -> HardenReport {
    apply_threaded(module, defenses, 1)
}

/// Like [`apply`], fanning the per-function rewrites across up to `threads`
/// workers.
///
/// Every function is an independent unit of work, so workers read shared
/// [`std::sync::Arc`] handles, rewrite privately, and the merge installs
/// results **in function-id order** — the report counts and the resulting
/// module are bit-identical to the sequential path under any thread count.
pub fn apply_threaded(module: &mut Module, defenses: DefenseSet, threads: usize) -> HardenReport {
    apply_with(module, crate::Arch::X86.backend(), defenses, threads)
}

/// [`apply_threaded`] under an explicit [`DefenseBackend`]: the backend's
/// transform semantics decide whether jump tables are re-lowered at all
/// (hardware-CFI backends cover table targets with landing pads and keep
/// the tables, so their transform is the identity).
pub fn apply_with(
    module: &mut Module,
    backend: &dyn DefenseBackend,
    defenses: DefenseSet,
    threads: usize,
) -> HardenReport {
    apply_inner(module, backend, defenses, threads, None)
}

/// [`apply_with`] with a warm [`HardenCache`]: functions whose `Arc` handle
/// was already hardened by an earlier call reuse the memoized result instead
/// of rescanning their blocks. The report and the resulting module are
/// bit-identical to the uncached path — the cache only skips work, never
/// changes it.
///
/// This is the serve loop's re-optimization accelerator: across epochs the
/// untouched majority of functions keeps its copy-on-write `Arc` identity
/// through clone/ICP/inline/DCE, so only functions the epoch actually
/// rewrote are rescanned here.
pub fn apply_cached(
    module: &mut Module,
    backend: &dyn DefenseBackend,
    defenses: DefenseSet,
    threads: usize,
    cache: &HardenCache,
) -> HardenReport {
    apply_inner(module, backend, defenses, threads, Some(cache))
}

fn apply_inner(
    module: &mut Module,
    backend: &dyn DefenseBackend,
    defenses: DefenseSet,
    threads: usize,
    cache: Option<&HardenCache>,
) -> HardenReport {
    let mut report = HardenReport {
        defenses,
        ..HardenReport::default()
    };
    if !backend.disables_jump_tables(defenses) {
        // The transform is the identity; the cache (if any) is not consulted
        // and its generation clock does not advance.
        return report;
    }
    let n = module.len();

    // Phase 1: one lock acquisition resolves every function against the
    // cache (all misses when uncached).
    let mut results: Vec<Option<HardenOutcome>> = match cache {
        Some(cache) => cache.lookup_all(module.functions()),
        None => (0..n).map(|_| None).collect(),
    };

    // Phase 2: compute the misses, fanning out when asked to.
    let miss_idx: Vec<usize> = (0..n).filter(|&i| results[i].is_none()).collect();
    let shared = &*module;
    let computed = pibe_ir::par::map_indexed(miss_idx.len(), threads, |j| {
        harden_function(&shared.functions()[miss_idx[j]])
    });

    // Phase 3: memoize the fresh results (one lock acquisition), then
    // retire cache entries that no live module references anymore.
    if let Some(cache) = cache {
        cache.insert_all(module.functions(), &miss_idx, &computed);
    }
    for (j, outcome) in miss_idx.into_iter().zip(computed) {
        results[j] = Some(outcome);
    }

    // Phase 4: install in function-id order, exactly like the uncached
    // sequential path.
    for (i, outcome) in results.into_iter().enumerate() {
        let (rewritten, disabled, kept) = outcome.expect("every function resolved");
        if let Some(f) = rewritten {
            module.set_function_arc(pibe_ir::FuncId::from_raw(i as u32), f);
        }
        report.jump_tables_disabled += disabled;
        report.jump_tables_kept += kept;
    }
    report
}

/// One function's harden result: its replacement (when it changed) and the
/// `(disabled, kept)` jump-table counts.
type HardenOutcome = (Option<Arc<Function>>, u64, u64);

/// A memo of per-function harden results, keyed by the **identity** of the
/// input function's `Arc` handle.
///
/// Soundness rests on two facts. First, `harden_function` is a pure
/// function of the function body alone — it takes neither the backend nor
/// the defense set (every jump-table-disabling configuration performs the
/// same rewrite), so one cache serves any such configuration. Second, each
/// entry holds a clone of the key `Arc`: the allocation behind the pointer
/// key cannot be freed and reused while the entry lives (no ABA), and with
/// the cache holding a second reference, `Arc::make_mut` anywhere else must
/// clone rather than mutate in place — a cached pointer therefore always
/// denotes the exact bytes that were hardened.
///
/// Entries untouched for a configurable number of consecutive cached
/// applications are evicted, bounding memory across a long-lived epoch loop
/// where drifted functions churn their `Arc` identities every rebuild.
#[derive(Debug)]
pub struct HardenCache {
    inner: Mutex<CacheInner>,
    retention: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<usize, CacheEntry>,
    generation: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct CacheEntry {
    /// Pins the keyed allocation (ABA safety; forces copy-on-write
    /// elsewhere). Never read, only held.
    _key: Arc<Function>,
    outcome: HardenOutcome,
    last_used: u64,
}

/// A point-in-time snapshot of [`HardenCache`] effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardenCacheStats {
    /// Functions resolved from the memo without a rescan.
    pub hits: u64,
    /// Functions that had to be rescanned (then memoized).
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Cached applications completed (the eviction clock).
    pub generation: u64,
}

impl Default for HardenCache {
    fn default() -> Self {
        Self::new()
    }
}

impl HardenCache {
    /// Default eviction horizon: entries idle for this many cached
    /// applications are dropped.
    pub const DEFAULT_RETENTION: u64 = 4;

    /// An empty cache with [`Self::DEFAULT_RETENTION`].
    pub fn new() -> Self {
        Self::with_retention(Self::DEFAULT_RETENTION)
    }

    /// An empty cache evicting entries idle for `retention` consecutive
    /// cached applications (clamped to at least 1).
    pub fn with_retention(retention: u64) -> Self {
        HardenCache {
            inner: Mutex::new(CacheInner::default()),
            retention: retention.max(1),
        }
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> HardenCacheStats {
        let inner = self.inner.lock().expect("harden cache poisoned");
        HardenCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.entries.len(),
            generation: inner.generation,
        }
    }

    /// Drops every entry and resets the eviction clock; the hit/miss
    /// counters keep accumulating.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("harden cache poisoned");
        inner.entries.clear();
        inner.generation = 0;
    }

    /// Resolves each function against the memo, marking hits as used in the
    /// current generation.
    fn lookup_all(&self, functions: &[Arc<Function>]) -> Vec<Option<HardenOutcome>> {
        let mut inner = self.inner.lock().expect("harden cache poisoned");
        let generation = inner.generation;
        let mut out = Vec::with_capacity(functions.len());
        let mut hits = 0u64;
        for f in functions {
            let found = inner.entries.get_mut(&(Arc::as_ptr(f) as usize));
            out.push(found.map(|e| {
                e.last_used = generation;
                hits += 1;
                e.outcome.clone()
            }));
        }
        inner.hits += hits;
        inner.misses += functions.len() as u64 - hits;
        out
    }

    /// Memoizes freshly computed outcomes, then advances the eviction clock
    /// and retires entries idle past the retention horizon.
    fn insert_all(
        &self,
        functions: &[Arc<Function>],
        miss_idx: &[usize],
        computed: &[HardenOutcome],
    ) {
        let mut inner = self.inner.lock().expect("harden cache poisoned");
        let generation = inner.generation;
        for (&i, outcome) in miss_idx.iter().zip(computed) {
            let f = &functions[i];
            inner.entries.insert(
                Arc::as_ptr(f) as usize,
                CacheEntry {
                    _key: Arc::clone(f),
                    outcome: outcome.clone(),
                    last_used: generation,
                },
            );
        }
        inner.generation += 1;
        let horizon = generation.saturating_sub(self.retention - 1);
        inner.entries.retain(|_, e| e.last_used >= horizon);
    }
}

/// Hardens one function, returning its replacement (if it changed) and the
/// `(disabled, kept)` jump-table counts. Reads first and only copies when a
/// re-lowerable table switch is actually present, so untouched functions
/// stay copy-on-write-shared with the pipeline's stage snapshots.
fn harden_function(
    f: &std::sync::Arc<pibe_ir::Function>,
) -> (Option<std::sync::Arc<pibe_ir::Function>>, u64, u64) {
    let tables = f
        .terms()
        .filter(|t| {
            matches!(
                t,
                Terminator::Switch {
                    via_table: true,
                    ..
                }
            )
        })
        .count() as u64;
    if tables == 0 {
        return (None, 0, 0);
    }
    if f.attrs().inline_asm {
        return (None, 0, tables);
    }
    let mut nf = pibe_ir::Function::clone(f);
    for term in nf.terms_mut() {
        if let Terminator::Switch { via_table, .. } = term {
            *via_table = false;
        }
    }
    (Some(std::sync::Arc::new(nf)), tables, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FnAttrs, FunctionBuilder, OpKind};

    fn module_with_switches() -> Module {
        let mut m = Module::new("m");
        for (name, asm) in [("normal", false), ("paravirt", true)] {
            let mut b = FunctionBuilder::new(name, 0);
            b.attrs(FnAttrs {
                inline_asm: asm,
                ..FnAttrs::default()
            });
            let c0 = b.new_block();
            let c1 = b.new_block();
            let exit = b.new_block();
            b.op(OpKind::Cmp);
            b.switch(vec![1, 1], vec![c0, c1], 1, exit, true);
            b.switch_to(c0);
            b.jump(exit);
            b.switch_to(c1);
            b.jump(exit);
            b.switch_to(exit);
            b.ret();
            m.add_function(b.build());
        }
        m
    }

    #[test]
    fn no_defenses_keeps_jump_tables() {
        let mut m = module_with_switches();
        let r = apply(&mut m, DefenseSet::NONE);
        assert_eq!(r.jump_tables_disabled, 0);
        assert_eq!(m.census().indirect_jumps, 2);
    }

    #[test]
    fn defenses_disable_jump_tables_outside_inline_asm() {
        let mut m = module_with_switches();
        let r = apply(&mut m, DefenseSet::RETPOLINES);
        assert_eq!(r.jump_tables_disabled, 1);
        assert_eq!(r.jump_tables_kept, 1);
        assert_eq!(m.census().indirect_jumps, 1);
        m.verify().unwrap();
    }

    #[test]
    fn threaded_apply_is_bit_identical_to_sequential() {
        let reference = {
            let mut m = module_with_switches();
            let r = apply(&mut m, DefenseSet::RETPOLINES);
            (m, r)
        };
        for threads in [2, 4] {
            let mut m = module_with_switches();
            let r = apply_threaded(&mut m, DefenseSet::RETPOLINES, threads);
            assert_eq!(r, reference.1, "threads={threads}");
            assert_eq!(m.functions(), reference.0.functions(), "threads={threads}");
        }
    }

    #[test]
    fn untouched_functions_stay_cow_shared() {
        let base = module_with_switches();
        let mut m = base.clone();
        apply(&mut m, DefenseSet::RETPOLINES);
        let normal = base.find_function("normal").unwrap();
        let paravirt = base.find_function("paravirt").unwrap();
        assert!(
            !std::sync::Arc::ptr_eq(m.function_arc(normal), base.function_arc(normal)),
            "rewritten function got a private copy"
        );
        assert!(
            std::sync::Arc::ptr_eq(m.function_arc(paravirt), base.function_arc(paravirt)),
            "inline-asm function untouched, still shared"
        );
    }

    #[test]
    fn apply_is_idempotent() {
        let mut m = module_with_switches();
        apply(&mut m, DefenseSet::ALL);
        let again = apply(&mut m, DefenseSet::ALL);
        assert_eq!(again.jump_tables_disabled, 0);
        assert_eq!(again.jump_tables_kept, 1);
    }

    #[test]
    fn cached_apply_is_bit_identical_and_skips_rescans() {
        let backend = crate::Arch::X86.backend();
        let reference = {
            let mut m = module_with_switches();
            let r = apply(&mut m, DefenseSet::RETPOLINES);
            (m, r)
        };

        let base = module_with_switches();
        let cache = HardenCache::new();
        for round in 0..3 {
            // Each epoch re-clones the base, exactly like the pipeline's
            // stage snapshotting: the function Arcs keep their identity.
            let mut m = base.clone();
            let r = apply_cached(&mut m, backend, DefenseSet::RETPOLINES, 1, &cache);
            assert_eq!(r, reference.1, "round={round}");
            assert_eq!(m.functions(), reference.0.functions(), "round={round}");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "only the first round scans");
        assert_eq!(stats.hits, 4, "both functions hit in rounds 2 and 3");
        assert_eq!(stats.generation, 3);
    }

    #[test]
    fn cached_apply_threaded_matches_sequential() {
        let backend = crate::Arch::X86.backend();
        let base = module_with_switches();
        let reference = {
            let mut m = base.clone();
            (apply(&mut m, DefenseSet::RETPOLINES), m)
        };
        for threads in [2, 4] {
            let cache = HardenCache::new();
            let mut m = base.clone();
            let r = apply_cached(&mut m, backend, DefenseSet::RETPOLINES, threads, &cache);
            assert_eq!(r, reference.0, "threads={threads}");
            assert_eq!(m.functions(), reference.1.functions(), "threads={threads}");
            // A second pass over the same Arcs is all hits.
            let mut m2 = base.clone();
            let r2 = apply_cached(&mut m2, backend, DefenseSet::RETPOLINES, threads, &cache);
            assert_eq!(r2, reference.0);
            assert_eq!(cache.stats().hits, 2, "threads={threads}");
        }
    }

    #[test]
    fn changed_function_identity_misses_and_rescans() {
        let backend = crate::Arch::X86.backend();
        let base = module_with_switches();
        let cache = HardenCache::new();
        let mut m = base.clone();
        apply_cached(&mut m, backend, DefenseSet::RETPOLINES, 1, &cache);

        // An epoch rewrite: one function gets a fresh Arc (same content, new
        // identity) — it must be rescanned, the other still hits.
        let mut m2 = base.clone();
        let id = m2.find_function("normal").unwrap();
        let fresh = pibe_ir::Function::clone(m2.function_arc(id));
        m2.set_function_arc(id, std::sync::Arc::new(fresh));
        let before = cache.stats();
        let r = apply_cached(&mut m2, backend, DefenseSet::RETPOLINES, 1, &cache);
        assert_eq!(r.jump_tables_disabled, 1);
        let after = cache.stats();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
    }

    #[test]
    fn identity_backends_leave_the_cache_untouched() {
        // Hardware-CFI backends keep jump tables: no scan, no memoization,
        // no generation advance.
        let cache = HardenCache::new();
        let mut m = module_with_switches();
        let r = apply_cached(
            &mut m,
            crate::Arch::Arm64.backend(),
            DefenseSet::RETPOLINES,
            1,
            &cache,
        );
        assert_eq!(r.jump_tables_disabled, 0);
        assert_eq!(cache.stats(), HardenCacheStats::default());
    }

    #[test]
    fn idle_entries_are_evicted_after_the_retention_horizon() {
        let backend = crate::Arch::X86.backend();
        let base = module_with_switches();
        let cache = HardenCache::with_retention(2);
        let mut m = base.clone();
        apply_cached(&mut m, backend, DefenseSet::RETPOLINES, 1, &cache);
        assert_eq!(cache.stats().entries, 2);

        // Epochs over a disjoint module: the base's entries go idle and age
        // out once they miss `retention` consecutive applications.
        let other = {
            let mut m = Module::new("other");
            let mut b = FunctionBuilder::new("lonely", 0);
            b.ret();
            m.add_function(b.build());
            m
        };
        for _ in 0..2 {
            let mut m = other.clone();
            apply_cached(&mut m, backend, DefenseSet::RETPOLINES, 1, &cache);
        }
        assert_eq!(
            cache.stats().entries,
            1,
            "only the live module's entry survives"
        );

        // The evicted functions still harden correctly — just as misses.
        let before = cache.stats().misses;
        let mut m = base.clone();
        apply_cached(&mut m, backend, DefenseSet::RETPOLINES, 1, &cache);
        assert_eq!(cache.stats().misses - before, 2);
    }
}
