//! The defense code sequences of the paper's Listings 4–7, as x86-64
//! assembly text.
//!
//! The simulator charges each sequence's *cost* from [`crate::costs`]; this
//! module preserves the sequences themselves — what a hardened binary
//! actually contains — for documentation, reports, and the size model's
//! sanity tests (the byte estimates in `costs` should roughly match the
//! encoded lengths of these listings).

use crate::DefenseSet;

/// Listing 4: the standard retpoline thunk replacing `call *%r11`.
pub const RETPOLINE: &str = "\
call __llvm_retpoline_r11
__llvm_retpoline_r11:
  callq jump
loop:
  pause
  lfence
  jmp loop
  nopl 0x0(%rax)
jump:
  mov %r11, (%rsp)
  retq";

/// Listing 5: LVI-CFI forward-edge instrumentation.
pub const LVI_FORWARD: &str = "\
call __x86_indirect_thunk_r11
__x86_indirect_thunk_r11:
  lfence
  jmpq *%r11";

/// Listing 6: LVI-CFI backward-edge instrumentation (replaces `ret`).
pub const LVI_BACKWARD: &str = "\
pop %rcx
lfence
jmpq *%rcx";

/// Listing 7: the paper's contribution for combined deployments — the
/// LVI-protected (fenced) retpoline, using Van Bulck et al.'s
/// return-based target dispatch so the thunk itself is not an LVI gadget.
pub const FENCED_RETPOLINE: &str = "\
call __llvm_retpoline_r11
__llvm_retpoline_r11:
  callq jump
loop:
  pause
  lfence
  jmp loop
  nopl 0x0(%rax)
jump:
  mov %r11, (%rsp)
  notq (%rsp)
  notq (%rsp)
  lfence
  retq";

/// The inlined return-retpoline sequence replacing each `ret` (§6.1: like
/// Listing 4 "except that there is no need to leave a return address on
/// the stack, and therefore we also do not need the additional call at the
/// start").
pub const RETURN_RETPOLINE: &str = "\
callq jump
loop:
  pause
  lfence
  jmp loop
jump:
  lea 8(%rsp), %rsp
  retq";

// --- ARM PAC/BTI sequences (the `ArmPacBtiBackend`) ---------------------

/// BTI forward-edge protection: the indirect branch itself is untouched;
/// every legitimate target carries a `bti c` landing pad.
pub const ARM_BTI: &str = "\
blr x16
target:
  bti c";

/// PAC-ret backward-edge protection: the return address is signed in the
/// prologue and authenticated before the return.
pub const ARM_PAC_RET: &str = "\
paciasp
...
autiasp
ret";

/// ARMv8.5 speculation barrier before an indirect call.
pub const ARM_SB_FORWARD: &str = "\
sb
blr x16";

/// ARMv8.5 speculation barrier before a return.
pub const ARM_SB_BACKWARD: &str = "\
sb
ret";

/// BTI landing pad combined with the speculation barrier.
pub const ARM_BTI_SB: &str = "\
sb
blr x16
target:
  bti c";

/// PAC-ret combined with the speculation barrier.
pub const ARM_PAC_RET_SB: &str = "\
paciasp
...
autiasp
sb
ret";

// --- RISC-V Zicfilp/Zicfiss sequences (the `RiscvCfiBackend`) -----------

/// Zicfilp forward-edge protection: every indirect-branch target begins
/// with an `lpad` label check (a hint-space NOP on non-CFI hardware).
pub const RISCV_LPAD: &str = "\
jalr ra, 0(t1)
target:
  lpad 0";

/// Zicfiss backward-edge protection: the return address is pushed to the
/// shadow stack on entry and checked on return (hint-space NOPs on non-CFI
/// hardware).
pub const RISCV_SHADOW_STACK: &str = "\
sspush ra
...
sspopchk ra
ret";

/// Fence-based speculation barrier before an indirect call.
pub const RISCV_FENCE_FORWARD: &str = "\
fence
jalr ra, 0(t1)";

/// Fence-based speculation barrier before a return.
pub const RISCV_FENCE_BACKWARD: &str = "\
fence
ret";

/// Landing pad combined with the fence.
pub const RISCV_LPAD_FENCE: &str = "\
fence
jalr ra, 0(t1)
target:
  lpad 0";

/// Shadow stack combined with the fence.
pub const RISCV_SHADOW_STACK_FENCE: &str = "\
sspush ra
...
sspopchk ra
fence
ret";

/// The forward-edge sequence a branch is rewritten to under `d`, if any.
pub fn forward_listing(d: DefenseSet) -> Option<&'static str> {
    match (d.retpolines, d.lvi_cfi) {
        (false, false) => None,
        (true, false) => Some(RETPOLINE),
        (false, true) => Some(LVI_FORWARD),
        (true, true) => Some(FENCED_RETPOLINE),
    }
}

/// The backward-edge sequence a `ret` is rewritten to under `d`, if any.
pub fn backward_listing(d: DefenseSet) -> Option<&'static str> {
    match (d.ret_retpolines, d.lvi_cfi) {
        (false, false) => None,
        (true, false) => Some(RETURN_RETPOLINE),
        (false, true) => Some(LVI_BACKWARD),
        // The combined backward sequence is the return retpoline with the
        // not/not + lfence target protection of Listing 7 folded in.
        (true, true) => Some(FENCED_RETPOLINE),
    }
}

/// Rough encoded length in bytes of an assembly listing (4 bytes per
/// instruction line on average — the same approximation LLVM's cost model
/// uses, §5.2).
pub fn approx_bytes(listing: &str) -> u32 {
    listing
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.ends_with(':')
        })
        .count() as u32
        * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs;

    #[test]
    fn every_hardening_combination_has_its_listing() {
        assert!(forward_listing(DefenseSet::NONE).is_none());
        assert_eq!(forward_listing(DefenseSet::RETPOLINES), Some(RETPOLINE));
        assert_eq!(forward_listing(DefenseSet::LVI_CFI), Some(LVI_FORWARD));
        assert_eq!(forward_listing(DefenseSet::ALL), Some(FENCED_RETPOLINE));
        assert!(backward_listing(DefenseSet::RETPOLINES).is_none());
        assert_eq!(
            backward_listing(DefenseSet::RET_RETPOLINES),
            Some(RETURN_RETPOLINE)
        );
        assert_eq!(backward_listing(DefenseSet::LVI_CFI), Some(LVI_BACKWARD));
    }

    #[test]
    fn fenced_retpoline_contains_the_lvi_hardening() {
        // Listing 7 = Listing 4 + not/not + lfence before the dispatch ret.
        assert!(FENCED_RETPOLINE.contains("notq (%rsp)"));
        assert!(FENCED_RETPOLINE.matches("lfence").count() >= 2);
        assert!(RETPOLINE.contains("mov %r11, (%rsp)"));
        assert!(!RETPOLINE.contains("notq"));
    }

    #[test]
    fn size_model_is_consistent_with_the_listings() {
        // Return retpolines are inlined per site: the per-site byte delta
        // of the cost model should be within 2x of the encoded sequence.
        let seq = approx_bytes(RETURN_RETPOLINE) as i64;
        let model = costs::return_site_bytes(DefenseSet::RET_RETPOLINES) as i64;
        assert!(
            (seq - model).abs() <= seq,
            "listing ~{seq}B vs model {model}B"
        );
        // LVI's backward sequence is tiny; so is its modelled delta.
        assert!(approx_bytes(LVI_BACKWARD) <= 16);
        assert!(costs::return_site_bytes(DefenseSet::LVI_CFI) <= 16);
    }
}
