//! # pibe-harden
//!
//! Transient-execution defenses: configuration, cost model, IR transforms,
//! and the security audit of §8.6.
//!
//! The paper hardens the kernel with (combinations of) three state-of-the-art
//! mitigations:
//!
//! * **retpolines** (Spectre V2 / BTB poisoning) — indirect calls become a
//!   return-trampoline thunk, ~21 cycles each (Table 1);
//! * **return retpolines** (Ret2spec / RSB poisoning) — every return becomes
//!   an inlined retpoline sequence, ~16 cycles each;
//! * **LVI-CFI** (Load Value Injection) — `lfence` before every indirect
//!   control transfer, ~9 cycles on forward and ~11 on backward edges.
//!
//! Retpolines and LVI-CFI instrument the same code sequence and are
//! incompatible as-is; the paper contributes a *fenced retpoline* (Listing 7)
//! whose combined cost is ~41 cycles on forward edges, and the combined
//! backward-edge sequence costs ~32 cycles (§6.3).
//!
//! This crate expresses a mitigation selection as a [`DefenseSet`], provides
//! the per-branch cycle and byte deltas ([`costs`]) the simulator charges,
//! applies the IR-level side effects of enabling defenses ([`apply`] —
//! today: disabling jump-table lowering, which is "the default LLVM behavior
//! when retpolines or LVI defenses are enabled", §5.1), and audits a
//! hardened image for residual attack surface ([`audit()`], Table 11).
//!
//! ## Backends
//!
//! The x86 retpoline family above is one of several [`DefenseBackend`]s: the
//! same [`DefenseSet`] selection is reinterpreted per architecture —
//! [`ArmPacBtiBackend`] maps it onto BTI landing pads + PAC-ret signing,
//! [`RiscvCfiBackend`] onto Zicfilp landing pads + a Zicfiss shadow stack.
//! Each backend owns its per-branch cost model, transform semantics, and
//! auditor rules; [`Arch`] names the backends and resolves the trait object.

//!
//! ## Example
//!
//! ```
//! use pibe_harden::{apply, audit, costs, DefenseSet};
//! use pibe_ir::{FunctionBuilder, Module};
//!
//! let mut module = Module::new("demo");
//! let site = module.fresh_site();
//! let mut b = FunctionBuilder::new("dispatch", 0);
//! b.call_indirect(site, 0);
//! b.ret();
//! module.add_function(b.build());
//!
//! let report = apply(&mut module, DefenseSet::ALL);
//! assert!(report.defenses.hardens_forward());
//! let audit = audit(&module, DefenseSet::ALL);
//! assert_eq!(audit.protected_icalls, 1);
//! assert_eq!(audit.vulnerable_icalls, 0);
//! // Every executed indirect call will be charged the fenced-retpoline toll.
//! assert_eq!(costs::forward_delta(DefenseSet::ALL), 41);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod backend;
pub mod costs;
mod defense;
pub mod listings;
mod transform;

pub use audit::{audit, audit_backend, AuditError, SecurityAudit};
pub use backend::{
    Arch, ArmPacBtiBackend, DefenseBackend, RiscvCfiBackend, X86RetpolineBackend, ARM_PAC_BTI,
    RISCV_CFI, RISCV_CFI_NOP, X86_RETPOLINE,
};
pub use defense::DefenseSet;
pub use transform::{
    apply, apply_cached, apply_threaded, apply_with, HardenCache, HardenCacheStats, HardenReport,
};
