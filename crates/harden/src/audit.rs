//! Security audit of a hardened image (§8.6, Table 11).
//!
//! The paper analyzes kernel binaries to classify every static indirect
//! branch as *protected* (converted to the appropriate defense sequence) or
//! *vulnerable* (left exposed). Two residual vulnerable populations exist
//! even under full mitigation: indirect calls inside inline-assembly
//! paravirt macros (LLVM cannot retpoline inline asm) and a handful of
//! assembly-level indirect jumps. Inlining duplicates the former, so the
//! vulnerable count *grows* with the optimization budget.

use crate::DefenseSet;
use pibe_ir::{Inst, Module, Terminator};
use serde::{Deserialize, Serialize};

/// Static classification of every indirect branch in an image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecurityAudit {
    /// The defenses the image was audited against.
    pub defenses: DefenseSet,
    /// Indirect calls converted to the defense thunk ("Def. ICalls").
    pub protected_icalls: u64,
    /// Indirect calls left vulnerable ("Vuln. ICalls"): inline-asm sites
    /// always, and every site when no forward-edge defense is enabled.
    pub vulnerable_icalls: u64,
    /// Indirect jumps left vulnerable ("Vuln. IJumps"): jump tables that
    /// survived hardening, and every jump table when no defense is enabled.
    pub vulnerable_ijumps: u64,
    /// Returns protected by a backward-edge defense.
    pub protected_returns: u64,
    /// Returns left vulnerable (every return when no backward-edge defense
    /// is enabled; boot-only returns are excluded — see `boot_returns`).
    pub vulnerable_returns: u64,
    /// Returns in boot-only code: unprotected but "not subject of transient
    /// attacks past this stage" (§8.6), so not counted vulnerable.
    pub boot_returns: u64,
}

/// Classifies every static indirect branch of `module` under `defenses`.
pub fn audit(module: &Module, defenses: DefenseSet) -> SecurityAudit {
    let mut a = SecurityAudit {
        defenses,
        ..SecurityAudit::default()
    };
    for f in module.functions() {
        let boot = f.attrs().boot_only;
        for block in f.blocks() {
            for inst in &block.insts {
                if let Inst::CallIndirect { asm, .. } = inst {
                    if *asm || !defenses.hardens_forward() {
                        a.vulnerable_icalls += 1;
                    } else {
                        a.protected_icalls += 1;
                    }
                }
            }
            match &block.term {
                Terminator::Switch { via_table, .. } if *via_table => {
                    // A surviving jump table is always a Spectre V2 surface.
                    a.vulnerable_ijumps += 1;
                }
                Terminator::Return => {
                    if boot {
                        a.boot_returns += 1;
                    } else if defenses.hardens_backward() {
                        a.protected_returns += 1;
                    } else {
                        a.vulnerable_returns += 1;
                    }
                }
                _ => {}
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply;
    use pibe_ir::{FnAttrs, FunctionBuilder};

    fn image() -> Module {
        let mut m = Module::new("m");
        // A normal function with a hardenable icall and a jump table.
        let s1 = m.fresh_site();
        let mut b = FunctionBuilder::new("normal", 0);
        let c = b.new_block();
        let exit = b.new_block();
        b.call_indirect(s1, 1);
        b.switch(vec![1], vec![c], 1, exit, true);
        b.switch_to(c);
        b.jump(exit);
        b.switch_to(exit);
        b.ret();
        m.add_function(b.build());

        // A paravirt-style function whose icall is inline asm.
        let s2 = m.fresh_site();
        let mut b = FunctionBuilder::new("paravirt", 0);
        b.call_indirect_asm(s2, 0);
        b.ret();
        m.add_function(b.build());

        // Boot-only code.
        let mut b = FunctionBuilder::new("start_kernel", 0);
        b.attrs(FnAttrs {
            boot_only: true,
            ..FnAttrs::default()
        });
        b.ret();
        m.add_function(b.build());
        m
    }

    #[test]
    fn unhardened_image_is_fully_vulnerable() {
        let m = image();
        let a = audit(&m, DefenseSet::NONE);
        assert_eq!(a.protected_icalls, 0);
        assert_eq!(a.vulnerable_icalls, 2);
        assert_eq!(a.vulnerable_ijumps, 1);
        assert_eq!(a.protected_returns, 0);
        assert_eq!(a.vulnerable_returns, 2);
        assert_eq!(a.boot_returns, 1);
    }

    #[test]
    fn full_hardening_leaves_only_asm_sites_vulnerable() {
        let mut m = image();
        apply(&mut m, DefenseSet::ALL);
        let a = audit(&m, DefenseSet::ALL);
        assert_eq!(a.protected_icalls, 1);
        assert_eq!(a.vulnerable_icalls, 1, "the asm icall stays vulnerable");
        assert_eq!(a.vulnerable_ijumps, 0, "jump table was disabled");
        assert_eq!(a.protected_returns, 2);
        assert_eq!(a.vulnerable_returns, 0);
        assert_eq!(a.boot_returns, 1);
    }

    #[test]
    fn retpolines_only_protect_forward_edges() {
        let mut m = image();
        apply(&mut m, DefenseSet::RETPOLINES);
        let a = audit(&m, DefenseSet::RETPOLINES);
        assert_eq!(a.protected_icalls, 1);
        assert_eq!(a.protected_returns, 0);
        assert_eq!(a.vulnerable_returns, 2);
    }

    #[test]
    fn ret_retpolines_only_protect_backward_edges() {
        let mut m = image();
        apply(&mut m, DefenseSet::RET_RETPOLINES);
        let a = audit(&m, DefenseSet::RET_RETPOLINES);
        assert_eq!(a.protected_icalls, 0);
        assert_eq!(a.vulnerable_icalls, 2);
        assert_eq!(a.protected_returns, 2);
    }
}
