//! Security audit of a hardened image (§8.6, Table 11).
//!
//! The paper analyzes kernel binaries to classify every static indirect
//! branch as *protected* (converted to the appropriate defense sequence) or
//! *vulnerable* (left exposed). Two residual vulnerable populations exist
//! even under full mitigation: indirect calls inside inline-assembly
//! paravirt macros (LLVM cannot retpoline inline asm) and a handful of
//! assembly-level indirect jumps. Inlining duplicates the former, so the
//! vulnerable count *grows* with the optimization budget.

use crate::backend::DefenseBackend;
use crate::DefenseSet;
use pibe_ir::{Inst, Module, Terminator};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Static classification of every indirect branch in an image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecurityAudit {
    /// The defenses the image was audited against.
    pub defenses: DefenseSet,
    /// Indirect calls converted to the defense thunk ("Def. ICalls").
    pub protected_icalls: u64,
    /// Indirect calls left vulnerable ("Vuln. ICalls"): inline-asm sites
    /// always, and every site when no forward-edge defense is enabled.
    pub vulnerable_icalls: u64,
    /// Indirect jumps left vulnerable ("Vuln. IJumps"): jump tables that
    /// survived hardening, and every jump table when no defense is enabled.
    pub vulnerable_ijumps: u64,
    /// Surviving jump tables whose targets are covered by landing pads —
    /// only hardware-CFI backends (ARM BTI, RISC-V Zicfilp) keep tables
    /// *and* protect them; always 0 on x86.
    pub protected_ijumps: u64,
    /// Returns protected by a backward-edge defense.
    pub protected_returns: u64,
    /// Returns left vulnerable (every return when no backward-edge defense
    /// is enabled; boot-only returns are excluded — see `boot_returns`).
    pub vulnerable_returns: u64,
    /// Returns in boot-only code: unprotected but "not subject of transient
    /// attacks past this stage" (§8.6), so not counted vulnerable.
    pub boot_returns: u64,
}

/// A branch the auditor could not classify: evidence that the image was
/// hardened with a different backend (or defense set) than it is being
/// audited against. Each variant names the offending function and site so
/// the mismatch points at the culprit instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// A re-lowerable jump table survived in a non-inline-assembly
    /// function although the backend's transform semantics disable jump
    /// tables under the audited defenses — the transform was either never
    /// run or run under a different backend.
    UnloweredJumpTable {
        /// Name of the function still dispatching through a table.
        function: String,
        /// Index of the block whose switch kept its table.
        block: usize,
        /// The backend the audit ran under.
        backend: &'static str,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::UnloweredJumpTable {
                function,
                block,
                backend,
            } => write!(
                f,
                "function `{function}` block {block} still dispatches through \
                 a jump table, but the {backend} backend re-lowers tables under \
                 the audited defenses — the image was hardened with a different \
                 backend or defense set"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// Classifies every static indirect branch of `module` under `defenses`,
/// with the legacy x86 rules.
///
/// This is the lenient pre-backend entry point: a surviving jump table is
/// *counted vulnerable* rather than reported as a backend mismatch, so it
/// stays infallible. The pipeline audits through [`audit_backend`], which
/// returns a typed [`AuditError`] instead.
pub fn audit(module: &Module, defenses: DefenseSet) -> SecurityAudit {
    let mut a = SecurityAudit {
        defenses,
        ..SecurityAudit::default()
    };
    for f in module.functions() {
        let boot = f.attrs().boot_only;
        // Flat pool scan (tombstones are plain ops), then the terminators.
        for inst in f.insts() {
            if let Inst::CallIndirect { asm, .. } = inst {
                if *asm || !defenses.hardens_forward() {
                    a.vulnerable_icalls += 1;
                } else {
                    a.protected_icalls += 1;
                }
            }
        }
        for term in f.terms() {
            match term {
                Terminator::Switch { via_table, .. } if *via_table => {
                    // A surviving jump table is always a Spectre V2 surface.
                    a.vulnerable_ijumps += 1;
                }
                Terminator::Return => {
                    if boot {
                        a.boot_returns += 1;
                    } else if defenses.hardens_backward() {
                        a.protected_returns += 1;
                    } else {
                        a.vulnerable_returns += 1;
                    }
                }
                _ => {}
            }
        }
    }
    a
}

/// Classifies every static indirect branch of `module` under `defenses`
/// with `backend`'s auditor rules.
///
/// Differences from the legacy [`audit`]: surviving jump tables are
/// *protected* when the backend covers their targets with landing pads
/// ([`DefenseBackend::protects_jump_tables`]); and a table that should
/// have been re-lowered — a non-inline-asm switch with `via_table` under a
/// backend whose transform disables tables — is a typed
/// [`AuditError::UnloweredJumpTable`] naming the function and block,
/// because it means the image was hardened with a *different* backend than
/// it is audited against.
///
/// # Errors
/// [`AuditError::UnloweredJumpTable`] on the backend mismatch above. For
/// an image produced by [`apply_with`](crate::apply_with) under the same
/// backend and defenses, the audit always succeeds (the
/// auditor-accepts-own-transform conformance law).
pub fn audit_backend(
    module: &Module,
    backend: &dyn DefenseBackend,
    defenses: DefenseSet,
) -> Result<SecurityAudit, AuditError> {
    let mut a = SecurityAudit {
        defenses,
        ..SecurityAudit::default()
    };
    for f in module.functions() {
        let attrs = f.attrs();
        for inst in f.insts() {
            if let Inst::CallIndirect { asm, .. } = inst {
                if *asm || !backend.hardens_forward(defenses) {
                    a.vulnerable_icalls += 1;
                } else {
                    a.protected_icalls += 1;
                }
            }
        }
        for (i, term) in f.terms().enumerate() {
            match term {
                Terminator::Switch { via_table, .. } if *via_table => {
                    if backend.protects_jump_tables(defenses) {
                        a.protected_ijumps += 1;
                    } else if backend.disables_jump_tables(defenses) && !attrs.inline_asm {
                        return Err(AuditError::UnloweredJumpTable {
                            function: f.name().to_string(),
                            block: i,
                            backend: backend.name(),
                        });
                    } else {
                        a.vulnerable_ijumps += 1;
                    }
                }
                Terminator::Return => {
                    if attrs.boot_only {
                        a.boot_returns += 1;
                    } else if backend.hardens_backward(defenses) {
                        a.protected_returns += 1;
                    } else {
                        a.vulnerable_returns += 1;
                    }
                }
                _ => {}
            }
        }
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply;
    use pibe_ir::{FnAttrs, FunctionBuilder};

    fn image() -> Module {
        let mut m = Module::new("m");
        // A normal function with a hardenable icall and a jump table.
        let s1 = m.fresh_site();
        let mut b = FunctionBuilder::new("normal", 0);
        let c = b.new_block();
        let exit = b.new_block();
        b.call_indirect(s1, 1);
        b.switch(vec![1], vec![c], 1, exit, true);
        b.switch_to(c);
        b.jump(exit);
        b.switch_to(exit);
        b.ret();
        m.add_function(b.build());

        // A paravirt-style function whose icall is inline asm.
        let s2 = m.fresh_site();
        let mut b = FunctionBuilder::new("paravirt", 0);
        b.call_indirect_asm(s2, 0);
        b.ret();
        m.add_function(b.build());

        // Boot-only code.
        let mut b = FunctionBuilder::new("start_kernel", 0);
        b.attrs(FnAttrs {
            boot_only: true,
            ..FnAttrs::default()
        });
        b.ret();
        m.add_function(b.build());
        m
    }

    #[test]
    fn unhardened_image_is_fully_vulnerable() {
        let m = image();
        let a = audit(&m, DefenseSet::NONE);
        assert_eq!(a.protected_icalls, 0);
        assert_eq!(a.vulnerable_icalls, 2);
        assert_eq!(a.vulnerable_ijumps, 1);
        assert_eq!(a.protected_returns, 0);
        assert_eq!(a.vulnerable_returns, 2);
        assert_eq!(a.boot_returns, 1);
    }

    #[test]
    fn full_hardening_leaves_only_asm_sites_vulnerable() {
        let mut m = image();
        apply(&mut m, DefenseSet::ALL);
        let a = audit(&m, DefenseSet::ALL);
        assert_eq!(a.protected_icalls, 1);
        assert_eq!(a.vulnerable_icalls, 1, "the asm icall stays vulnerable");
        assert_eq!(a.vulnerable_ijumps, 0, "jump table was disabled");
        assert_eq!(a.protected_returns, 2);
        assert_eq!(a.vulnerable_returns, 0);
        assert_eq!(a.boot_returns, 1);
    }

    #[test]
    fn retpolines_only_protect_forward_edges() {
        let mut m = image();
        apply(&mut m, DefenseSet::RETPOLINES);
        let a = audit(&m, DefenseSet::RETPOLINES);
        assert_eq!(a.protected_icalls, 1);
        assert_eq!(a.protected_returns, 0);
        assert_eq!(a.vulnerable_returns, 2);
    }

    #[test]
    fn ret_retpolines_only_protect_backward_edges() {
        let mut m = image();
        apply(&mut m, DefenseSet::RET_RETPOLINES);
        let a = audit(&m, DefenseSet::RET_RETPOLINES);
        assert_eq!(a.protected_icalls, 0);
        assert_eq!(a.vulnerable_icalls, 2);
        assert_eq!(a.protected_returns, 2);
    }
}
