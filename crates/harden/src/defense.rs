//! Defense selection.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A selection of transient control-flow-hijacking mitigations.
///
/// PIBE "enforces arbitrary combinations of defenses" (§4); the paper's
/// evaluation uses the four configurations exposed as constants here
/// (Tables 6 and 7): each defense alone, and all three together.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct DefenseSet {
    /// Retpolines on indirect calls and jumps (Spectre V2 mitigation).
    pub retpolines: bool,
    /// Return retpolines on every return (Ret2spec mitigation).
    pub ret_retpolines: bool,
    /// LVI-CFI fences on indirect calls and returns (LVI mitigation).
    pub lvi_cfi: bool,
}

impl DefenseSet {
    /// No mitigations (the vanilla / LTO baseline).
    pub const NONE: DefenseSet = DefenseSet {
        retpolines: false,
        ret_retpolines: false,
        lvi_cfi: false,
    };
    /// Retpolines only — the Linux default Spectre V2 posture.
    pub const RETPOLINES: DefenseSet = DefenseSet {
        retpolines: true,
        ret_retpolines: false,
        lvi_cfi: false,
    };
    /// Return retpolines only.
    pub const RET_RETPOLINES: DefenseSet = DefenseSet {
        retpolines: false,
        ret_retpolines: true,
        lvi_cfi: false,
    };
    /// LVI-CFI only.
    pub const LVI_CFI: DefenseSet = DefenseSet {
        retpolines: false,
        ret_retpolines: false,
        lvi_cfi: true,
    };
    /// All three defenses — comprehensive protection against Spectre V2,
    /// Ret2spec, and LVI ("all defenses" in Tables 1, 5, 6, 7).
    pub const ALL: DefenseSet = DefenseSet {
        retpolines: true,
        ret_retpolines: true,
        lvi_cfi: true,
    };

    /// True when no defense is enabled.
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }

    /// True when any defense instruments forward edges (indirect calls).
    pub fn hardens_forward(self) -> bool {
        self.retpolines || self.lvi_cfi
    }

    /// True when any defense instruments backward edges (returns).
    pub fn hardens_backward(self) -> bool {
        self.ret_retpolines || self.lvi_cfi
    }

    /// True when jump-table lowering must be disabled — "the default LLVM
    /// behavior when retpolines or LVI defenses are enabled" (§5.1).
    pub fn disables_jump_tables(self) -> bool {
        !self.is_none()
    }

    /// The paper's four evaluated configurations, for sweeps.
    pub const EVALUATED: [DefenseSet; 4] = [
        Self::RETPOLINES,
        Self::RET_RETPOLINES,
        Self::LVI_CFI,
        Self::ALL,
    ];
}

impl fmt::Display for DefenseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return f.write_str("none");
        }
        if *self == Self::ALL {
            return f.write_str("all-defenses");
        }
        let mut parts = Vec::new();
        if self.retpolines {
            parts.push("retpolines");
        }
        if self.ret_retpolines {
            parts.push("ret-retpolines");
        }
        if self.lvi_cfi {
            parts.push("lvi-cfi");
        }
        f.write_str(&parts.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        assert!(DefenseSet::NONE.is_none());
        assert!(!DefenseSet::RETPOLINES.is_none());
        assert!(DefenseSet::ALL.hardens_forward());
        assert!(DefenseSet::ALL.hardens_backward());
        assert!(DefenseSet::RETPOLINES.hardens_forward());
        assert!(!DefenseSet::RETPOLINES.hardens_backward());
        assert!(DefenseSet::RET_RETPOLINES.hardens_backward());
        assert!(!DefenseSet::RET_RETPOLINES.hardens_forward());
        assert!(DefenseSet::LVI_CFI.hardens_forward());
        assert!(DefenseSet::LVI_CFI.hardens_backward());
    }

    #[test]
    fn jump_tables_disabled_whenever_any_defense_is_on() {
        assert!(!DefenseSet::NONE.disables_jump_tables());
        for d in DefenseSet::EVALUATED {
            assert!(d.disables_jump_tables());
        }
    }

    #[test]
    fn display_names_match_the_paper() {
        assert_eq!(DefenseSet::NONE.to_string(), "none");
        assert_eq!(DefenseSet::ALL.to_string(), "all-defenses");
        assert_eq!(DefenseSet::RETPOLINES.to_string(), "retpolines");
        assert_eq!(
            DefenseSet {
                retpolines: true,
                lvi_cfi: true,
                ret_retpolines: false
            }
            .to_string(),
            "retpolines+lvi-cfi"
        );
    }
}
