//! Architecture defense backends.
//!
//! The paper evaluates PIBE against the x86 retpoline family only; this
//! module generalises the hardening API over a [`DefenseBackend`] trait so
//! the same pipeline, budget logic, and simulator can answer ROADMAP item
//! 2's question: *does profile-guided elision still matter when the
//! residual defense is cheap hardware CFI?*
//!
//! A backend bundles three things:
//!
//! 1. **cost model** — per-branch-kind cycle deltas
//!    ([`DefenseBackend::forward_delta`] / [`DefenseBackend::return_delta`])
//!    and byte deltas the size model charges;
//! 2. **transform semantics** — which branch kinds get instrumented and
//!    whether jump-table lowering must be disabled
//!    ([`DefenseBackend::disables_jump_tables`]);
//! 3. **auditor / attack rules** — which attack classes the instrumented
//!    branches are actually protected against.
//!
//! The three [`DefenseSet`] flags keep their serialized shape but are
//! *interpreted* by the backend: `retpolines` selects the backend's primary
//! forward-edge defense, `ret_retpolines` its backward-edge defense, and
//! `lvi_cfi` its auxiliary fence/speculation-barrier hardening. On
//! [`Arch::X86`] (the default everywhere) every constant and every
//! serialized configuration means exactly what it meant before this module
//! existed.

use crate::{costs, listings, DefenseSet};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Target architecture whose hardware defense family backs the image.
///
/// `Arch` is the *serializable selector* for a [`DefenseBackend`]: it is
/// `Copy + Eq + Hash`, lives inside `PibeConfig` (and therefore inside the
/// image farm's content key), and resolves to a `&'static dyn
/// DefenseBackend` via [`Arch::backend`].
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum Arch {
    /// x86-64 with the paper's retpoline / return-retpoline / LVI-CFI
    /// software sequences (Table 1 cost model). The default: all existing
    /// constants and serialized configs keep meaning the same thing.
    #[default]
    X86,
    /// AArch64 with BTI forward-edge landing pads and PAC-ret return-address
    /// signing (Camouflage-style hardware CFI cost model).
    Arm64,
    /// RISC-V with Zicfilp landing pads and the Zicfiss shadow stack,
    /// *enforced* by hardware.
    Riscv64,
    /// The same RISC-V CFI binary executing on hardware **without**
    /// Zicfilp/Zicfiss: the instructions sit in the hint encoding space and
    /// execute as NOPs — graceful degradation. Identical image bytes, zero
    /// cycle cost, zero protection.
    Riscv64Nop,
}

impl Arch {
    /// Every backend, including the graceful-degradation variant.
    pub const ALL: [Arch; 4] = [Arch::X86, Arch::Arm64, Arch::Riscv64, Arch::Riscv64Nop];

    /// The three architectures of the cross-arch evaluation.
    pub const EVALUATED: [Arch; 3] = [Arch::X86, Arch::Arm64, Arch::Riscv64];

    /// The backend implementing this architecture's defense family.
    pub fn backend(self) -> &'static dyn DefenseBackend {
        match self {
            Arch::X86 => &X86_RETPOLINE,
            Arch::Arm64 => &ARM_PAC_BTI,
            Arch::Riscv64 => &RISCV_CFI,
            Arch::Riscv64Nop => &RISCV_CFI_NOP,
        }
    }

    /// Canonical display name (also what [`Arch::from_str`] accepts).
    pub fn name(self) -> &'static str {
        match self {
            Arch::X86 => "x86_64",
            Arch::Arm64 => "arm64",
            Arch::Riscv64 => "riscv64",
            Arch::Riscv64Nop => "riscv64-nop",
        }
    }

    /// Reads the `PIBE_ARCH` environment override, defaulting to
    /// [`Arch::X86`] when unset.
    ///
    /// # Panics
    /// Panics when `PIBE_ARCH` is set to an unknown name — a typo in a CI
    /// matrix leg should fail loudly, not silently fall back to x86.
    pub fn from_env() -> Arch {
        match std::env::var("PIBE_ARCH") {
            Ok(s) => s
                .parse()
                .unwrap_or_else(|e: String| panic!("PIBE_ARCH: {e}")),
            Err(_) => Arch::X86,
        }
    }
}

impl FromStr for Arch {
    type Err = String;

    fn from_str(s: &str) -> Result<Arch, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "x86" | "x86_64" | "x86-64" | "amd64" => Ok(Arch::X86),
            "arm64" | "aarch64" => Ok(Arch::Arm64),
            "riscv64" | "riscv" => Ok(Arch::Riscv64),
            "riscv64-nop" | "riscv64_nop" | "riscv-nop" => Ok(Arch::Riscv64Nop),
            other => Err(format!(
                "unknown architecture {other:?} (expected one of \
                 x86_64, arm64, riscv64, riscv64-nop)"
            )),
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One architecture's defense family: cost model, transform semantics, and
/// auditor/attack rules, all keyed by the [`DefenseSet`] selection.
///
/// The trait is object safe; implementations are zero-sized statics
/// resolved through [`Arch::backend`]. Contract (checked by the
/// backend-conformance suite in `tests/backend_conformance.rs`):
///
/// * **zero cost on [`DefenseSet::NONE`]** — every delta and byte method
///   returns 0;
/// * **monotone under defense union** — enabling more defenses never
///   lowers a cost;
/// * **transform idempotence** — applying the backend's transform twice
///   changes nothing the second time;
/// * **auditor accepts its own transform** — auditing right after the
///   transform never returns an [`AuditError`](crate::audit::AuditError).
pub trait DefenseBackend: fmt::Debug + Sync {
    /// The architecture selector resolving to this backend.
    fn arch(&self) -> Arch;

    /// Short backend name for reports and labels.
    fn name(&self) -> &'static str;

    // --- cost model -----------------------------------------------------

    /// Extra cycles per *executed* hardened indirect call (or protected
    /// indirect jump) under `d`.
    fn forward_delta(&self, d: DefenseSet) -> u64;

    /// Extra cycles per *executed* hardened return under `d`.
    fn return_delta(&self, d: DefenseSet) -> u64;

    /// Extra model bytes per *static* instrumented indirect call site.
    fn forward_site_bytes(&self, d: DefenseSet) -> u32;

    /// Extra model bytes per *static* instrumented return site.
    fn return_site_bytes(&self, d: DefenseSet) -> u32;

    /// Bytes of shared thunk code added once per image, if the backend
    /// routes any defense through a thunk.
    fn shared_thunk_bytes(&self, d: DefenseSet) -> u64;

    // --- transform semantics -------------------------------------------

    /// True when `d` instruments forward edges (indirect calls).
    fn hardens_forward(&self, d: DefenseSet) -> bool;

    /// True when `d` instruments backward edges (returns).
    fn hardens_backward(&self, d: DefenseSet) -> bool;

    /// True when enabling `d` forces jump-table re-lowering (the x86
    /// behaviour, §5.1). Hardware-CFI backends cover table targets with
    /// landing pads instead and keep the tables.
    fn disables_jump_tables(&self, d: DefenseSet) -> bool;

    // --- auditor / attack rules ----------------------------------------

    /// True when hardened forward edges *inhibit speculation* entirely (no
    /// BTB involvement, the retpoline behaviour). Hardware CFI constrains
    /// targets without serialising, so prediction — and misprediction —
    /// still happens.
    fn inhibits_forward_speculation(&self, d: DefenseSet) -> bool;

    /// True when hardened returns inhibit RSB-based speculation.
    fn inhibits_return_speculation(&self, d: DefenseSet) -> bool;

    /// True when an instrumented indirect call cannot be hijacked by BTB
    /// poisoning (Spectre V2) under `d`.
    fn spectre_v2_safe(&self, d: DefenseSet) -> bool;

    /// True when an instrumented return cannot be hijacked by RSB
    /// poisoning (Ret2spec) under `d`.
    fn ret2spec_safe(&self, d: DefenseSet) -> bool;

    /// True when surviving jump-table dispatches are protected (landing
    /// pads constrain their targets). Always false on x86, where tables
    /// are re-lowered instead and any survivor is attack surface.
    fn protects_jump_tables(&self, d: DefenseSet) -> bool;

    /// True when Load Value Injection is part of this architecture's
    /// threat model at all (an Intel-specific microarchitectural attack).
    fn lvi_applicable(&self) -> bool;

    /// True when `d` fences the target loads of indirect transfers
    /// (the LVI mitigation on x86; vacuous elsewhere).
    fn fences_loads(&self, d: DefenseSet) -> bool;

    // --- listings / display --------------------------------------------

    /// The assembly sequence instrumented forward edges carry, if any.
    fn forward_listing(&self, d: DefenseSet) -> Option<&'static str>;

    /// The assembly sequence instrumented returns carry, if any.
    fn backward_listing(&self, d: DefenseSet) -> Option<&'static str>;

    /// Human label of the selection under this backend's interpretation
    /// (e.g. `retpolines+lvi-cfi` on x86, `bti+pac-ret` on arm64).
    fn defense_label(&self, d: DefenseSet) -> String;

    // --- derived --------------------------------------------------------

    /// Total model bytes of `module` once hardened with `d` under this
    /// backend: base code plus per-site sequences plus shared thunks.
    /// Inline-assembly indirect calls are never instrumented and add
    /// nothing.
    fn hardened_image_bytes(&self, module: &pibe_ir::Module, d: DefenseSet) -> u64 {
        use pibe_ir::{Inst, Terminator};
        let mut bytes = module.code_bytes() + self.shared_thunk_bytes(d);
        for f in module.functions() {
            // Flat pool scan (tombstones are plain ops), then terminators.
            for inst in f.insts() {
                if let Inst::CallIndirect { asm: false, .. } = inst {
                    bytes += u64::from(self.forward_site_bytes(d));
                }
            }
            for term in f.terms() {
                if matches!(term, Terminator::Return) {
                    bytes += u64::from(self.return_site_bytes(d));
                }
            }
        }
        bytes
    }
}

/// The x86 retpoline family of the paper — [`Arch::X86`]'s backend.
pub static X86_RETPOLINE: X86RetpolineBackend = X86RetpolineBackend;
/// ARM PAC/BTI hardware CFI — [`Arch::Arm64`]'s backend.
pub static ARM_PAC_BTI: ArmPacBtiBackend = ArmPacBtiBackend;
/// RISC-V Zicfilp/Zicfiss, enforced — [`Arch::Riscv64`]'s backend.
pub static RISCV_CFI: RiscvCfiBackend = RiscvCfiBackend {
    nop_on_unsupported: false,
};
/// RISC-V Zicfilp/Zicfiss on non-CFI hardware — [`Arch::Riscv64Nop`]'s
/// backend: same transform and bytes, zero cycles, zero protection.
pub static RISCV_CFI_NOP: RiscvCfiBackend = RiscvCfiBackend {
    nop_on_unsupported: true,
};

/// The paper's x86 defense family: retpolines, return retpolines, LVI-CFI,
/// and the combined fenced sequences. Delegates to the Table 1 cost tables
/// in [`costs`], the selection semantics on [`DefenseSet`], and the
/// Listings 4–7 text in [`listings`] — this backend *is* the pre-trait
/// behaviour, bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct X86RetpolineBackend;

impl DefenseBackend for X86RetpolineBackend {
    fn arch(&self) -> Arch {
        Arch::X86
    }

    fn name(&self) -> &'static str {
        "x86-retpoline"
    }

    fn forward_delta(&self, d: DefenseSet) -> u64 {
        costs::forward_delta(d)
    }

    fn return_delta(&self, d: DefenseSet) -> u64 {
        costs::return_delta(d)
    }

    fn forward_site_bytes(&self, d: DefenseSet) -> u32 {
        costs::forward_site_bytes(d)
    }

    fn return_site_bytes(&self, d: DefenseSet) -> u32 {
        costs::return_site_bytes(d)
    }

    fn shared_thunk_bytes(&self, d: DefenseSet) -> u64 {
        costs::shared_thunk_bytes(d)
    }

    fn hardens_forward(&self, d: DefenseSet) -> bool {
        d.hardens_forward()
    }

    fn hardens_backward(&self, d: DefenseSet) -> bool {
        d.hardens_backward()
    }

    fn disables_jump_tables(&self, d: DefenseSet) -> bool {
        d.disables_jump_tables()
    }

    fn inhibits_forward_speculation(&self, d: DefenseSet) -> bool {
        // Both the retpoline and the LVI fence serialise the transfer: no
        // BTB involvement at all on hardened forward edges.
        d.hardens_forward()
    }

    fn inhibits_return_speculation(&self, d: DefenseSet) -> bool {
        d.hardens_backward()
    }

    fn spectre_v2_safe(&self, d: DefenseSet) -> bool {
        // The lfence alone does not stop BTB-steered speculation (§6.4):
        // only the retpoline captures it.
        d.retpolines
    }

    fn ret2spec_safe(&self, d: DefenseSet) -> bool {
        d.ret_retpolines
    }

    fn protects_jump_tables(&self, _d: DefenseSet) -> bool {
        // x86 re-lowers tables instead; any survivor is attack surface.
        false
    }

    fn lvi_applicable(&self) -> bool {
        true
    }

    fn fences_loads(&self, d: DefenseSet) -> bool {
        d.lvi_cfi
    }

    fn forward_listing(&self, d: DefenseSet) -> Option<&'static str> {
        listings::forward_listing(d)
    }

    fn backward_listing(&self, d: DefenseSet) -> Option<&'static str> {
        listings::backward_listing(d)
    }

    fn defense_label(&self, d: DefenseSet) -> String {
        d.to_string()
    }

    fn hardened_image_bytes(&self, module: &pibe_ir::Module, d: DefenseSet) -> u64 {
        costs::hardened_image_bytes(module, d)
    }
}

/// ARM PAC/BTI hardware CFI with a Camouflage-style elision cost model.
///
/// Interpretation of the [`DefenseSet`] flags: `retpolines` → **BTI**
/// landing pads on indirect-branch targets (`bti c`), `ret_retpolines` →
/// **PAC-ret** return-address signing (`paciasp`/`autiasp`), `lvi_cfi` →
/// ARMv8.5 **`sb`** speculation barriers on both edges.
///
/// Cost provenance: Camouflage (PAC-based kernel CFI) measures pointer
/// authentication at roughly 2–5 cycles per sign/authenticate pair on
/// QARMA-pipelined cores — modelled as 4 cycles per return; a BTI pad is a
/// single hint-space instruction, one front-end slot — modelled as 1
/// cycle; the `sb` barrier drains the front end like a short `lfence` —
/// modelled as 8 cycles. The order-of-magnitude gap to the retpoline
/// family (1–4 vs 21–41 cycles) is the point of the cross-arch
/// experiment, not the exact figures.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmPacBtiBackend;

impl DefenseBackend for ArmPacBtiBackend {
    fn arch(&self) -> Arch {
        Arch::Arm64
    }

    fn name(&self) -> &'static str {
        "arm-pac-bti"
    }

    fn forward_delta(&self, d: DefenseSet) -> u64 {
        match (d.retpolines, d.lvi_cfi) {
            (false, false) => 0,
            (true, false) => 1, // one bti pad in the target's front end
            (false, true) => 8, // sb barrier at the site
            (true, true) => 9,
        }
    }

    fn return_delta(&self, d: DefenseSet) -> u64 {
        match (d.ret_retpolines, d.lvi_cfi) {
            (false, false) => 0,
            (true, false) => 4, // paciasp + autiasp
            (false, true) => 8, // sb before the ret
            (true, true) => 12,
        }
    }

    fn forward_site_bytes(&self, d: DefenseSet) -> u32 {
        // Fixed 4-byte A64 encodings: a `bti c` pad and/or an `sb`.
        match (d.retpolines, d.lvi_cfi) {
            (false, false) => 0,
            (true, false) | (false, true) => 4,
            (true, true) => 8,
        }
    }

    fn return_site_bytes(&self, d: DefenseSet) -> u32 {
        match (d.ret_retpolines, d.lvi_cfi) {
            (false, false) => 0,
            (true, false) => 8, // paciasp in the prologue + autiasp before ret
            (false, true) => 4, // sb
            (true, true) => 12,
        }
    }

    fn shared_thunk_bytes(&self, _d: DefenseSet) -> u64 {
        0 // no thunks: every sequence is inlined at the site
    }

    fn hardens_forward(&self, d: DefenseSet) -> bool {
        d.retpolines || d.lvi_cfi
    }

    fn hardens_backward(&self, d: DefenseSet) -> bool {
        d.ret_retpolines || d.lvi_cfi
    }

    fn disables_jump_tables(&self, _d: DefenseSet) -> bool {
        // BTI pads cover jump-table targets; the tables stay.
        false
    }

    fn inhibits_forward_speculation(&self, _d: DefenseSet) -> bool {
        // BTI constrains targets architecturally without serialising: the
        // branch predictor keeps working (and keeps paying misses).
        false
    }

    fn inhibits_return_speculation(&self, _d: DefenseSet) -> bool {
        false
    }

    fn spectre_v2_safe(&self, d: DefenseSet) -> bool {
        d.retpolines // BTI: a poisoned target must still be a landing pad
    }

    fn ret2spec_safe(&self, d: DefenseSet) -> bool {
        d.ret_retpolines // PAC: a forged return address fails to authenticate
    }

    fn protects_jump_tables(&self, d: DefenseSet) -> bool {
        d.retpolines
    }

    fn lvi_applicable(&self) -> bool {
        false // LVI is an Intel-specific microarchitectural attack
    }

    fn fences_loads(&self, d: DefenseSet) -> bool {
        d.lvi_cfi
    }

    fn forward_listing(&self, d: DefenseSet) -> Option<&'static str> {
        match (d.retpolines, d.lvi_cfi) {
            (false, false) => None,
            (true, false) => Some(listings::ARM_BTI),
            (false, true) => Some(listings::ARM_SB_FORWARD),
            (true, true) => Some(listings::ARM_BTI_SB),
        }
    }

    fn backward_listing(&self, d: DefenseSet) -> Option<&'static str> {
        match (d.ret_retpolines, d.lvi_cfi) {
            (false, false) => None,
            (true, false) => Some(listings::ARM_PAC_RET),
            (false, true) => Some(listings::ARM_SB_BACKWARD),
            (true, true) => Some(listings::ARM_PAC_RET_SB),
        }
    }

    fn defense_label(&self, d: DefenseSet) -> String {
        label(d, "bti", "pac-ret", "sb")
    }
}

/// RISC-V Zicfilp landing pads + Zicfiss shadow stack.
///
/// Interpretation of the [`DefenseSet`] flags: `retpolines` → **Zicfilp**
/// landing pads (`lpad`) on indirect-branch targets, `ret_retpolines` →
/// the **Zicfiss** shadow stack (`sspush`/`sspopchk`), `lvi_cfi` →
/// `fence`-based speculation barriers on both edges.
///
/// Cost provenance: both extensions are designed for near-zero overhead —
/// the `lpad` label check retires in the front end (modelled as 1 cycle)
/// and the shadow-stack push/pop-check pair is two short memory ops
/// against a hot cache line (modelled as 2 cycles); a full `fence` is
/// modelled at 10 cycles.
///
/// With [`RiscvCfiBackend::nop_on_unsupported`] set, the *same binary* is
/// modelled on hardware without the extensions: both instructions sit in
/// the hint encoding space and execute as NOPs, so every cycle delta is 0,
/// no attack is stopped, and the image bytes are unchanged — the
/// graceful-degradation deployment story.
#[derive(Debug, Clone, Copy, Default)]
pub struct RiscvCfiBackend {
    /// Model execution on hardware without Zicfilp/Zicfiss: the CFI
    /// instructions decode as NOPs (zero cost, zero protection, same
    /// bytes).
    pub nop_on_unsupported: bool,
}

impl DefenseBackend for RiscvCfiBackend {
    fn arch(&self) -> Arch {
        if self.nop_on_unsupported {
            Arch::Riscv64Nop
        } else {
            Arch::Riscv64
        }
    }

    fn name(&self) -> &'static str {
        if self.nop_on_unsupported {
            "riscv-zicfi-nop"
        } else {
            "riscv-zicfi"
        }
    }

    fn forward_delta(&self, d: DefenseSet) -> u64 {
        if self.nop_on_unsupported {
            return 0;
        }
        match (d.retpolines, d.lvi_cfi) {
            (false, false) => 0,
            (true, false) => 1,  // lpad label check
            (false, true) => 10, // fence
            (true, true) => 11,
        }
    }

    fn return_delta(&self, d: DefenseSet) -> u64 {
        if self.nop_on_unsupported {
            return 0;
        }
        match (d.ret_retpolines, d.lvi_cfi) {
            (false, false) => 0,
            (true, false) => 2,  // sspush + sspopchk
            (false, true) => 10, // fence
            (true, true) => 12,
        }
    }

    fn forward_site_bytes(&self, d: DefenseSet) -> u32 {
        // The binary carries the instructions whether or not the hardware
        // honours them — bytes are identical across the two variants.
        match (d.retpolines, d.lvi_cfi) {
            (false, false) => 0,
            (true, false) | (false, true) => 4,
            (true, true) => 8,
        }
    }

    fn return_site_bytes(&self, d: DefenseSet) -> u32 {
        match (d.ret_retpolines, d.lvi_cfi) {
            (false, false) => 0,
            (true, false) => 8, // sspush ra + sspopchk ra
            (false, true) => 4,
            (true, true) => 12,
        }
    }

    fn shared_thunk_bytes(&self, _d: DefenseSet) -> u64 {
        0
    }

    fn hardens_forward(&self, d: DefenseSet) -> bool {
        d.retpolines || d.lvi_cfi
    }

    fn hardens_backward(&self, d: DefenseSet) -> bool {
        d.ret_retpolines || d.lvi_cfi
    }

    fn disables_jump_tables(&self, _d: DefenseSet) -> bool {
        false // lpad pads cover table targets
    }

    fn inhibits_forward_speculation(&self, _d: DefenseSet) -> bool {
        false
    }

    fn inhibits_return_speculation(&self, _d: DefenseSet) -> bool {
        false
    }

    fn spectre_v2_safe(&self, d: DefenseSet) -> bool {
        !self.nop_on_unsupported && d.retpolines
    }

    fn ret2spec_safe(&self, d: DefenseSet) -> bool {
        !self.nop_on_unsupported && d.ret_retpolines
    }

    fn protects_jump_tables(&self, d: DefenseSet) -> bool {
        !self.nop_on_unsupported && d.retpolines
    }

    fn lvi_applicable(&self) -> bool {
        false
    }

    fn fences_loads(&self, d: DefenseSet) -> bool {
        !self.nop_on_unsupported && d.lvi_cfi
    }

    fn forward_listing(&self, d: DefenseSet) -> Option<&'static str> {
        match (d.retpolines, d.lvi_cfi) {
            (false, false) => None,
            (true, false) => Some(listings::RISCV_LPAD),
            (false, true) => Some(listings::RISCV_FENCE_FORWARD),
            (true, true) => Some(listings::RISCV_LPAD_FENCE),
        }
    }

    fn backward_listing(&self, d: DefenseSet) -> Option<&'static str> {
        match (d.ret_retpolines, d.lvi_cfi) {
            (false, false) => None,
            (true, false) => Some(listings::RISCV_SHADOW_STACK),
            (false, true) => Some(listings::RISCV_FENCE_BACKWARD),
            (true, true) => Some(listings::RISCV_SHADOW_STACK_FENCE),
        }
    }

    fn defense_label(&self, d: DefenseSet) -> String {
        let l = label(d, "lpad", "shadow-stack", "fence");
        if self.nop_on_unsupported && l != "none" {
            format!("{l} (nop)")
        } else {
            l
        }
    }
}

/// Joins the per-flag names of an enabled selection, `"none"` when empty.
fn label(d: DefenseSet, forward: &str, backward: &str, fence: &str) -> String {
    if d.is_none() {
        return "none".into();
    }
    let mut parts = Vec::new();
    if d.retpolines {
        parts.push(forward);
    }
    if d.ret_retpolines {
        parts.push(backward);
    }
    if d.lvi_cfi {
        parts.push(fence);
    }
    parts.join("+")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_resolves_to_its_backend_and_back() {
        for arch in Arch::ALL {
            assert_eq!(arch.backend().arch(), arch);
            assert_eq!(arch.name().parse::<Arch>().unwrap(), arch);
        }
        assert!("sparc".parse::<Arch>().is_err());
        assert_eq!(Arch::default(), Arch::X86);
    }

    #[test]
    fn x86_backend_is_the_pretrait_cost_model() {
        let b = Arch::X86.backend();
        for d in DefenseSet::EVALUATED {
            assert_eq!(b.forward_delta(d), costs::forward_delta(d));
            assert_eq!(b.return_delta(d), costs::return_delta(d));
            assert_eq!(b.forward_site_bytes(d), costs::forward_site_bytes(d));
            assert_eq!(b.return_site_bytes(d), costs::return_site_bytes(d));
            assert_eq!(b.shared_thunk_bytes(d), costs::shared_thunk_bytes(d));
            assert_eq!(b.hardens_forward(d), d.hardens_forward());
            assert_eq!(b.disables_jump_tables(d), d.disables_jump_tables());
            assert_eq!(b.defense_label(d), d.to_string());
        }
    }

    #[test]
    fn hardware_cfi_is_an_order_of_magnitude_cheaper() {
        let all = DefenseSet::ALL;
        let x86 = Arch::X86.backend();
        for arch in [Arch::Arm64, Arch::Riscv64] {
            let hw = arch.backend();
            assert!(hw.forward_delta(all) * 3 < x86.forward_delta(all));
            assert!(hw.return_delta(all) * 2 < x86.return_delta(all));
        }
    }

    #[test]
    fn nop_variant_keeps_bytes_and_drops_cycles_and_protection() {
        let enforced = Arch::Riscv64.backend();
        let nop = Arch::Riscv64Nop.backend();
        let all = DefenseSet::ALL;
        assert_eq!(
            nop.forward_site_bytes(all),
            enforced.forward_site_bytes(all)
        );
        assert_eq!(nop.return_site_bytes(all), enforced.return_site_bytes(all));
        assert_eq!(nop.forward_delta(all), 0);
        assert_eq!(nop.return_delta(all), 0);
        assert!(enforced.spectre_v2_safe(all) && !nop.spectre_v2_safe(all));
        assert!(enforced.ret2spec_safe(all) && !nop.ret2spec_safe(all));
    }

    #[test]
    fn labels_name_the_native_mechanisms() {
        assert_eq!(
            Arch::Arm64.backend().defense_label(DefenseSet::ALL),
            "bti+pac-ret+sb"
        );
        assert_eq!(
            Arch::Riscv64
                .backend()
                .defense_label(DefenseSet::RETPOLINES),
            "lpad"
        );
        assert_eq!(
            Arch::Riscv64Nop.backend().defense_label(DefenseSet::ALL),
            "lpad+shadow-stack+fence (nop)"
        );
        assert_eq!(
            Arch::Arm64.backend().defense_label(DefenseSet::NONE),
            "none"
        );
    }
}
