//! Per-branch cycle and byte deltas of each defense combination.
//!
//! Calibrated against the paper's Table 1 (measured on an i7-8700 with
//! Clang 10) and §6.3's analysis of the combined sequences:
//!
//! | configuration           | forward edge | backward edge |
//! |-------------------------|--------------|---------------|
//! | none                    | 0            | 0             |
//! | retpolines              | 21           | 0             |
//! | LVI-CFI                 | 9            | 11            |
//! | retpolines + LVI-CFI    | 41 (fenced retpoline) | 11   |
//! | return retpolines       | 0            | 16            |
//! | all three               | 41           | 32 (fenced return) |
//!
//! These reproduce Table 1's rows: e.g. `dcall` overhead = backward delta
//! (the callee's hardened return), `icall` overhead = forward + backward.

use crate::DefenseSet;

/// Extra cycles charged per *executed* indirect call (or indirect jump)
/// under `d`.
pub fn forward_delta(d: DefenseSet) -> u64 {
    match (d.retpolines, d.lvi_cfi) {
        (false, false) => 0,
        (true, false) => 21,
        (false, true) => 9,
        // The fenced retpoline of Listing 7: retpoline + not/not + lfence.
        (true, true) => 41,
    }
}

/// Extra cycles charged per *executed* return under `d`.
pub fn return_delta(d: DefenseSet) -> u64 {
    match (d.ret_retpolines, d.lvi_cfi) {
        (false, false) => 0,
        (true, false) => 16,
        (false, true) => 11,
        // Combined fenced return-retpoline sequence (§6.3: 32 cycles on
        // backward edges).
        (true, true) => 32,
    }
}

/// Extra model bytes added to every *static* indirect call site under `d`.
///
/// Retpolines route through a shared thunk, so the per-site delta is small
/// (the `mov` into `%r11` plus the thunk call replacing `call *%reg`); the
/// LVI fence adds an `lfence`' worth of bytes when not subsumed by the
/// fenced thunk.
pub fn forward_site_bytes(d: DefenseSet) -> u32 {
    match (d.retpolines, d.lvi_cfi) {
        (false, false) => 0,
        (true, false) => 5,
        (false, true) => 3,
        (true, true) => 5,
    }
}

/// Extra model bytes added to every *static* return site under `d`.
///
/// Return retpolines are "inlined in the original location of the return
/// instruction" (§6.1), costing the full sequence at every site; LVI's
/// backward-edge sequence (Listing 6: `pop; lfence; jmp *%rcx`) replaces the
/// 1-byte `ret`.
pub fn return_site_bytes(d: DefenseSet) -> u32 {
    match (d.ret_retpolines, d.lvi_cfi) {
        (false, false) => 0,
        (true, false) => 18,
        (false, true) => 7,
        // Listing 7-style fenced return: retpoline body + not/not + lfence.
        (true, true) => 26,
    }
}

/// Bytes of shared thunk code added once per image when any forward-edge
/// defense routes through a thunk.
pub fn shared_thunk_bytes(d: DefenseSet) -> u64 {
    if d.retpolines {
        48 // __llvm_retpoline_* family
    } else if d.lvi_cfi {
        16 // __x86_indirect_thunk_* family
    } else {
        0
    }
}

/// Total model bytes of `module` once hardened with `d`: the base code plus
/// the per-site defense sequences and the shared thunks. Inline-assembly
/// indirect calls are not instrumented and add nothing.
///
/// This is the "img size" measure of Table 12 (jump-table re-lowering is
/// already reflected in the module itself after [`crate::apply`]).
pub fn hardened_image_bytes(module: &pibe_ir::Module, d: DefenseSet) -> u64 {
    use pibe_ir::{Inst, Terminator};
    let mut bytes = module.code_bytes() + shared_thunk_bytes(d);
    for f in module.functions() {
        // Flat pool scan (tombstones are plain ops), then terminators.
        for inst in f.insts() {
            if let Inst::CallIndirect { asm: false, .. } = inst {
                bytes += u64::from(forward_site_bytes(d));
            }
        }
        for term in f.terms() {
            if matches!(term, Terminator::Return) {
                bytes += u64::from(return_site_bytes(d));
            }
        }
    }
    bytes
}

/// Cycle overheads of the *non-transient* defenses of Table 1, reproduced in
/// the Table 1 microbenchmark only (the paper measures them to justify
/// focusing on transient defenses; none of them is part of the kernel
/// pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonTransientDefense {
    /// Clang's forward-edge CFI (`-fsanitize=cfi`).
    LlvmCfi,
    /// `-fstack-protector-strong` canaries.
    StackProtector,
    /// SafeStack split stacks.
    SafeStack,
}

impl NonTransientDefense {
    /// `(dcall, icall, vcall)` per-call-cycle overheads from Table 1.
    pub fn table1_ticks(self) -> (u64, u64, u64) {
        match self {
            NonTransientDefense::LlvmCfi => (2, 3, 1),
            NonTransientDefense::StackProtector => (4, 4, 4),
            NonTransientDefense::SafeStack => (2, 1, 1),
        }
    }

    /// Display name used in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            NonTransientDefense::LlvmCfi => "LLVM-CFI",
            NonTransientDefense::StackProtector => "stackprotector",
            NonTransientDefense::SafeStack => "safestack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_deltas_reconstruct_paper_rows() {
        // dcall overhead = return delta; icall overhead = fwd + ret.
        let lvi = DefenseSet::LVI_CFI;
        assert_eq!(return_delta(lvi), 11); // Table 1: LVI-CFI dcall = 11
        assert_eq!(forward_delta(lvi) + return_delta(lvi), 20); // icall = 20

        let retp = DefenseSet::RETPOLINES;
        assert_eq!(return_delta(retp), 0);
        assert_eq!(forward_delta(retp) + return_delta(retp), 21); // icall = 21

        let rr = DefenseSet::RET_RETPOLINES;
        assert_eq!(return_delta(rr), 16); // dcall = 16
        assert_eq!(forward_delta(rr) + return_delta(rr), 16); // icall = 16

        let all = DefenseSet::ALL;
        assert_eq!(return_delta(all), 32); // dcall = 32
        assert_eq!(forward_delta(all) + return_delta(all), 73); // icall = 73
    }

    #[test]
    fn combining_defenses_costs_more_than_the_sum_on_forward_edges() {
        // §6.3: the fenced retpoline is slower than retpoline + LVI stacked
        // naively would suggest; 41 > 21 + 9.
        let combined = forward_delta(DefenseSet {
            retpolines: true,
            lvi_cfi: true,
            ret_retpolines: false,
        });
        assert!(
            combined > forward_delta(DefenseSet::RETPOLINES) + forward_delta(DefenseSet::LVI_CFI)
        );
    }

    #[test]
    fn no_defense_costs_nothing() {
        assert_eq!(forward_delta(DefenseSet::NONE), 0);
        assert_eq!(return_delta(DefenseSet::NONE), 0);
        assert_eq!(forward_site_bytes(DefenseSet::NONE), 0);
        assert_eq!(return_site_bytes(DefenseSet::NONE), 0);
        assert_eq!(shared_thunk_bytes(DefenseSet::NONE), 0);
    }

    #[test]
    fn return_retpolines_pay_bytes_at_every_site() {
        assert!(
            return_site_bytes(DefenseSet::RET_RETPOLINES) > return_site_bytes(DefenseSet::LVI_CFI)
        );
        assert!(return_site_bytes(DefenseSet::ALL) > return_site_bytes(DefenseSet::RET_RETPOLINES));
    }

    #[test]
    fn hardened_image_bytes_grow_with_defenses_and_skip_asm() {
        use pibe_ir::{FunctionBuilder, Module};
        let mut m = Module::new("m");
        let s1 = m.fresh_site();
        let s2 = m.fresh_site();
        let mut b = FunctionBuilder::new("f", 0);
        b.call_indirect(s1, 0);
        b.call_indirect_asm(s2, 0);
        b.ret();
        m.add_function(b.build());

        let plain = hardened_image_bytes(&m, DefenseSet::NONE);
        assert_eq!(plain, m.code_bytes(), "no defense, no delta");
        let retp = hardened_image_bytes(&m, DefenseSet::RETPOLINES);
        // One hardenable icall site + the shared thunk; the asm site adds
        // nothing.
        assert_eq!(
            retp,
            plain
                + u64::from(forward_site_bytes(DefenseSet::RETPOLINES))
                + shared_thunk_bytes(DefenseSet::RETPOLINES)
        );
        let all = hardened_image_bytes(&m, DefenseSet::ALL);
        assert!(all > retp, "return sequences add further bytes");
    }

    #[test]
    fn non_transient_defenses_are_cheap() {
        for d in [
            NonTransientDefense::LlvmCfi,
            NonTransientDefense::StackProtector,
            NonTransientDefense::SafeStack,
        ] {
            let (dc, ic, vc) = d.table1_ticks();
            assert!(dc <= 4 && ic <= 4 && vc <= 4, "{} must be cheap", d.name());
        }
    }
}
