//! Microarchitectural models: cost parameters, BTB, RSB, i-cache.

use serde::{Deserialize, Serialize};

/// Cost and capacity parameters of the simulated machine.
///
/// Defaults approximate the paper's i7-8700K (Skylake): 32 KiB 8-way L1i
/// with 64-byte lines, a 4096-entry BTB, and a 16-entry RSB (§2.2:
/// "typically N = 16").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Cycles for ALU/mov/cmp/store class ops.
    pub cycles_simple: u64,
    /// Cycles for a (cache-hit) load.
    pub cycles_load: u64,
    /// Cycles for an explicit fence op in the source program.
    pub cycles_fence: u64,
    /// Base cycles of a direct call (predicted).
    pub cycles_call: u64,
    /// Base cycles of a return (predicted).
    pub cycles_ret: u64,
    /// Base cycles of an indirect call before prediction effects.
    pub cycles_icall: u64,
    /// Cycles of an unconditional or conditional branch (predicted).
    pub cycles_branch: u64,
    /// Penalty for a BTB miss / indirect-branch target mispredict.
    pub btb_miss_penalty: u64,
    /// Penalty for an RSB mispredict (underflow or desync).
    pub rsb_miss_penalty: u64,
    /// Penalty per L1i line miss that hits the L2 cache.
    pub icache_miss_penalty: u64,
    /// Additional penalty per line miss that also misses the L2.
    pub l2_miss_penalty: u64,
    /// Number of BTB entries (power of two).
    pub btb_entries: usize,
    /// RSB depth.
    pub rsb_depth: usize,
    /// L1i size in bytes.
    pub icache_bytes: usize,
    /// L1i line size in bytes (power of two).
    pub icache_line: usize,
    /// L1i associativity.
    pub icache_ways: usize,
    /// Unified L2 size in bytes (code footprint share).
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cycles_simple: 1,
            cycles_load: 3,
            cycles_fence: 10,
            // Call/return base costs include the callee prologue/epilogue
            // work (frame setup, saved registers) that inlining eliminates.
            cycles_call: 3,
            cycles_ret: 2,
            cycles_icall: 2,
            cycles_branch: 1,
            btb_miss_penalty: 15,
            rsb_miss_penalty: 15,
            icache_miss_penalty: 10,
            l2_miss_penalty: 30,
            btb_entries: 4096,
            rsb_depth: 16,
            icache_bytes: 32 * 1024,
            icache_line: 64,
            icache_ways: 8,
            l2_bytes: 1024 * 1024,
            l2_ways: 16,
        }
    }
}

/// Branch target buffer: direct-mapped over the low bits of the branch
/// address, storing the last observed target (§2.2).
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<u64>, // predicted target per slot; 0 = empty
    mask: usize,
}

impl Btb {
    /// Creates a BTB with `entries` slots (rounded up to a power of two).
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        Btb {
            entries: vec![0; n],
            mask: n - 1,
        }
    }

    /// Predicts the target for the branch at `addr`; returns true on a
    /// correct prediction and trains the entry either way.
    pub fn predict_and_train(&mut self, addr: u64, actual: u64) -> bool {
        let slot = (addr as usize ^ (addr >> 12) as usize) & self.mask;
        let hit = self.entries[slot] == actual;
        self.entries[slot] = actual;
        hit
    }
}

/// Return stack buffer: a fixed-depth hardware stack of return tokens.
///
/// Overflow discards the oldest entry (deep call chains then mispredict on
/// the way back up); underflow always mispredicts.
#[derive(Debug, Clone)]
pub struct Rsb {
    stack: Vec<u64>,
    depth: usize,
    /// Entries silently lost to overflow, still unwound.
    lost: u64,
}

impl Rsb {
    /// Creates an RSB of the given depth.
    pub fn new(depth: usize) -> Self {
        Rsb {
            stack: Vec::with_capacity(depth),
            depth: depth.max(1),
            lost: 0,
        }
    }

    /// Pushes a return token for a call; returns true when the push
    /// evicted the oldest entry (an overflow — the condition under which
    /// RSB refilling stops protecting, §6.4).
    pub fn push(&mut self, token: u64) -> bool {
        let overflowed = self.stack.len() == self.depth;
        if overflowed {
            self.stack.remove(0);
            self.lost += 1;
        }
        self.stack.push(token);
        overflowed
    }

    /// Pops a prediction for a return; true when it matches `token`.
    pub fn pop_and_check(&mut self, token: u64) -> bool {
        match self.stack.pop() {
            Some(t) => t == token,
            None => {
                if self.lost > 0 {
                    self.lost -= 1;
                }
                false
            }
        }
    }
}

/// One set-associative cache level with LRU replacement.
#[derive(Debug, Clone)]
struct CacheLevel {
    /// Per set: (tag, last-use stamp) per way. tag 0 = empty.
    sets: Vec<(u64, u64)>,
    ways: usize,
    set_mask: u64,
    clock: u64,
}

impl CacheLevel {
    fn new(bytes: usize, line: usize, ways: usize) -> Self {
        let ways = ways.max(1);
        let sets = (bytes / (line * ways)).next_power_of_two().max(1);
        CacheLevel {
            sets: vec![(0, 0); sets * ways],
            ways,
            set_mask: sets as u64 - 1,
            clock: 0,
        }
    }

    fn touch_line(&mut self, line: u64) -> bool {
        self.clock += 1;
        let tag = line + 1; // avoid the empty sentinel 0
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        let ways = &mut self.sets[base..base + self.ways];
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = self.clock;
            return true;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|(_, stamp)| *stamp)
            .expect("ways is non-empty");
        *victim = (tag, self.clock);
        false
    }
}

/// Two-level instruction-cache hierarchy (L1i backed by a unified L2):
/// code that spills out of the 32 KiB L1i — the cost of aggressive
/// inlining — is usually still in L2, so bloat costs the L1-miss penalty,
/// not a trip to memory. This is what keeps the paper's 5–30% image growth
/// affordable.
#[derive(Debug, Clone)]
pub struct ICache {
    l1: CacheLevel,
    l2: CacheLevel,
    line_shift: u32,
}

impl ICache {
    /// Creates the hierarchy with `l1_bytes`/`l1_ways` over `line`-byte
    /// lines, backed by `l2_bytes`/`l2_ways`.
    pub fn new(
        l1_bytes: usize,
        line: usize,
        l1_ways: usize,
        l2_bytes: usize,
        l2_ways: usize,
    ) -> Self {
        let line = line.next_power_of_two().max(16);
        ICache {
            l1: CacheLevel::new(l1_bytes, line, l1_ways),
            l2: CacheLevel::new(l2_bytes, line, l2_ways),
            line_shift: line.trailing_zeros(),
        }
    }

    /// Touches every line in `[addr, addr + len)`; returns
    /// `(l1_misses, l2_misses)` where every L2 miss is also an L1 miss.
    pub fn access(&mut self, addr: u64, len: u32) -> (u64, u64) {
        if len == 0 {
            return (0, 0);
        }
        let first = addr >> self.line_shift;
        let last = (addr + u64::from(len) - 1) >> self.line_shift;
        let mut l1_misses = 0;
        let mut l2_misses = 0;
        for line in first..=last {
            if !self.l1.touch_line(line) {
                l1_misses += 1;
                if !self.l2.touch_line(line) {
                    l2_misses += 1;
                }
            }
        }
        (l1_misses, l2_misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_learns_targets() {
        let mut btb = Btb::new(64);
        assert!(!btb.predict_and_train(0x100, 0xAAA), "cold miss");
        assert!(btb.predict_and_train(0x100, 0xAAA), "trained hit");
        assert!(!btb.predict_and_train(0x100, 0xBBB), "target change misses");
        assert!(btb.predict_and_train(0x100, 0xBBB), "retrains");
    }

    #[test]
    fn btb_aliasing_causes_interference() {
        let mut btb = Btb::new(16);
        btb.predict_and_train(0x0, 0x1);
        // Address 16 maps to the same slot in a 16-entry BTB.
        btb.predict_and_train(0x10, 0x2);
        assert!(!btb.predict_and_train(0x0, 0x1), "aliased entry clobbered");
    }

    #[test]
    fn rsb_matches_balanced_call_ret() {
        let mut rsb = Rsb::new(4);
        for t in 0..4 {
            rsb.push(t);
        }
        for t in (0..4).rev() {
            assert!(rsb.pop_and_check(t));
        }
        assert!(!rsb.pop_and_check(9), "underflow mispredicts");
    }

    #[test]
    fn rsb_overflow_loses_oldest() {
        let mut rsb = Rsb::new(2);
        rsb.push(1);
        rsb.push(2);
        rsb.push(3); // evicts 1
        assert!(rsb.pop_and_check(3));
        assert!(rsb.pop_and_check(2));
        assert!(!rsb.pop_and_check(1), "evicted entry mispredicts");
    }

    #[test]
    fn icache_hits_after_first_touch() {
        let mut ic = ICache::new(1024, 64, 2, 8192, 4);
        assert_eq!(ic.access(0, 64), (1, 1), "cold miss reaches memory");
        assert_eq!(ic.access(0, 64), (0, 0), "warm hit");
        assert_eq!(ic.access(0, 128), (1, 1), "second line cold");
    }

    #[test]
    fn icache_l1_eviction_usually_hits_l2() {
        // L1: 4 lines (2 sets x 2 ways); L2: 64 lines.
        let mut ic = ICache::new(256, 64, 2, 4096, 4);
        for i in 0..6u64 {
            ic.access(i * 64, 1);
        }
        // Line 0 was evicted from L1 but is still resident in L2.
        assert_eq!(ic.access(0, 1), (1, 0), "L1 miss, L2 hit");
    }

    #[test]
    fn icache_zero_length_accesses_nothing() {
        let mut ic = ICache::new(1024, 64, 2, 8192, 4);
        assert_eq!(ic.access(128, 0), (0, 0));
    }

    #[test]
    fn machine_default_is_skylake_like() {
        let m = MachineConfig::default();
        assert_eq!(m.rsb_depth, 16);
        assert_eq!(m.icache_bytes, 32 * 1024);
        assert!(m.btb_miss_penalty > m.cycles_icall);
    }
}
