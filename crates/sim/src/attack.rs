//! Dynamic attack-surface accounting.
//!
//! While the static audit ([`pibe_harden::audit()`]) classifies branch *sites*,
//! this module counts branch *executions* an attacker could have hijacked:
//! each executed indirect branch is checked against the active defenses and
//! the attack it would be exposed to (§6):
//!
//! * **Spectre V2 / BTB poisoning** — any executed indirect call or jump not
//!   routed through a retpoline (inline-asm sites are never routed);
//! * **Ret2spec / RSB poisoning** — any executed return not converted to a
//!   return retpoline (plain RSB refilling does not count as protection,
//!   §6.4);
//! * **LVI** — any indirect control transfer whose target load is not
//!   fenced.
//!
//! Tests across the workspace assert the paper's security claim: a fully
//! hardened image shows zero hijackable executions apart from the
//! inline-assembly paravirt sites.

use pibe_harden::{Arch, DefenseBackend, DefenseSet};
use serde::{Deserialize, Serialize};

/// Counts of attacker-hijackable dynamic branch executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Indirect-call executions exposed to BTB poisoning (Spectre V2).
    pub btb_hijackable_icalls: u64,
    /// Indirect-jump executions exposed to BTB poisoning.
    pub btb_hijackable_ijumps: u64,
    /// Indirect-call executions protected by eIBRS against *cross-domain*
    /// training but still hijackable by an attacker who trains the BTB from
    /// within the kernel domain — the limitation §6.4 notes ("does not
    /// prevent attacks that train on kernel execution").
    pub btb_kernel_trained_icalls: u64,
    /// Return executions exposed to RSB poisoning (Ret2spec).
    pub rsb_hijackable_rets: u64,
    /// Indirect control transfers exposed to load value injection.
    pub lvi_injectable: u64,
}

impl AttackReport {
    /// True when no observed execution was hijackable.
    pub fn is_clean(&self) -> bool {
        *self == AttackReport::default()
    }

    /// Total hijackable executions across attack classes (kernel-domain
    /// training counts: eIBRS narrows the attacker model but does not close
    /// it).
    pub fn total(&self) -> u64 {
        self.btb_hijackable_icalls
            + self.btb_kernel_trained_icalls
            + self.btb_hijackable_ijumps
            + self.rsb_hijackable_rets
            + self.lvi_injectable
    }

    /// Records one executed indirect call. `asm` marks inline-assembly
    /// sites the compiler could not instrument; `jumpswitch` marks sites
    /// protected by the JumpSwitches runtime mechanism (whose fallback is a
    /// retpoline, so Spectre V2 is covered, but nothing fences the target
    /// load, so LVI is not).
    pub fn observe_icall(&mut self, defenses: DefenseSet, asm: bool, jumpswitch: bool) {
        self.observe_icall_with(defenses, asm, jumpswitch, false)
    }

    /// [`AttackReport::observe_icall`] with the eIBRS hardware mitigation
    /// modelled: cross-domain (userspace-trained) BTB poisoning is blocked,
    /// but same-domain training remains possible (§6.4), counted in
    /// [`AttackReport::btb_kernel_trained_icalls`].
    pub fn observe_icall_with(
        &mut self,
        defenses: DefenseSet,
        asm: bool,
        jumpswitch: bool,
        eibrs: bool,
    ) {
        self.observe_icall_backend(Arch::X86.backend(), defenses, asm, jumpswitch, eibrs)
    }

    /// [`AttackReport::observe_icall_with`] under an explicit
    /// [`DefenseBackend`]: the backend decides what counts as Spectre-V2
    /// protection (retpoline thunk, BTI/lpad target restriction) and
    /// whether LVI is part of the architecture's threat model at all (it is
    /// Intel-specific, so ARM/RISC-V backends never count LVI exposure).
    pub fn observe_icall_backend(
        &mut self,
        backend: &dyn DefenseBackend,
        defenses: DefenseSet,
        asm: bool,
        jumpswitch: bool,
        eibrs: bool,
    ) {
        if asm {
            self.btb_hijackable_icalls += 1;
            if backend.lvi_applicable() {
                self.lvi_injectable += 1;
            }
            return;
        }
        let spectre_v2_safe = backend.spectre_v2_safe(defenses) || jumpswitch;
        if !spectre_v2_safe {
            if eibrs {
                self.btb_kernel_trained_icalls += 1;
            } else {
                self.btb_hijackable_icalls += 1;
            }
        }
        if backend.lvi_applicable() && !backend.fences_loads(defenses) {
            self.lvi_injectable += 1;
        }
    }

    /// Records one executed indirect jump (always table-lowered, always
    /// BTB-predicted, never instrumentable — §8.6's residual 5 ijumps).
    pub fn observe_ijump(&mut self) {
        self.btb_hijackable_ijumps += 1;
    }

    /// [`AttackReport::observe_ijump`] under an explicit backend: a jump
    /// table whose targets carry landing pads (ARM BTI, RISC-V Zicfilp)
    /// restricts misspeculation to legitimate targets, so the execution is
    /// not counted hijackable.
    pub fn observe_ijump_backend(&mut self, backend: &dyn DefenseBackend, defenses: DefenseSet) {
        if !backend.protects_jump_tables(defenses) {
            self.btb_hijackable_ijumps += 1;
        }
    }

    /// Records one executed return. `rsb_refill` marks the kernel's
    /// RSB-stuffing mitigation; `rsb_overflowed` whether the RSB overflowed
    /// since kernel entry. Refilling blocks userspace-poisoned entries, but
    /// once the RSB has overflowed inside the kernel the return can again
    /// misspeculate attacker-influencable state — "other RSB exploitation
    /// scenarios are still possible under RSB refilling. Conversely, return
    /// retpolines defend against all known RSB poisoning scenarios" (§6.4).
    pub fn observe_return(&mut self, defenses: DefenseSet, rsb_refill: bool, rsb_overflowed: bool) {
        self.observe_return_backend(Arch::X86.backend(), defenses, rsb_refill, rsb_overflowed)
    }

    /// [`AttackReport::observe_return`] under an explicit backend: PAC-ret
    /// signing and the Zicfiss shadow stack count as Ret2spec protection
    /// the way return retpolines do on x86.
    pub fn observe_return_backend(
        &mut self,
        backend: &dyn DefenseBackend,
        defenses: DefenseSet,
        rsb_refill: bool,
        rsb_overflowed: bool,
    ) {
        if !backend.ret2spec_safe(defenses) && (!rsb_refill || rsb_overflowed) {
            self.rsb_hijackable_rets += 1;
        }
        if backend.lvi_applicable() && !backend.fences_loads(defenses) {
            self.lvi_injectable += 1;
        }
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &AttackReport) {
        self.btb_hijackable_icalls += other.btb_hijackable_icalls;
        self.btb_kernel_trained_icalls += other.btb_kernel_trained_icalls;
        self.btb_hijackable_ijumps += other.btb_hijackable_ijumps;
        self.rsb_hijackable_rets += other.rsb_hijackable_rets;
        self.lvi_injectable += other.lvi_injectable;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_hardened_non_asm_branches_are_clean() {
        let mut r = AttackReport::default();
        r.observe_icall(DefenseSet::ALL, false, false);
        r.observe_return(DefenseSet::ALL, false, false);
        assert!(r.is_clean());
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn asm_sites_are_hijackable_even_under_full_defense() {
        let mut r = AttackReport::default();
        r.observe_icall(DefenseSet::ALL, true, false);
        assert_eq!(r.btb_hijackable_icalls, 1);
        assert_eq!(r.lvi_injectable, 1);
    }

    #[test]
    fn partial_defenses_leave_their_complement_exposed() {
        let mut r = AttackReport::default();
        r.observe_icall(DefenseSet::RETPOLINES, false, false);
        assert_eq!(r.btb_hijackable_icalls, 0);
        assert_eq!(r.lvi_injectable, 1, "retpoline does not fence loads");

        let mut r = AttackReport::default();
        r.observe_return(DefenseSet::LVI_CFI, false, false);
        assert_eq!(r.rsb_hijackable_rets, 1, "lfence does not fix the RSB");
        assert_eq!(r.lvi_injectable, 0);
    }

    #[test]
    fn jumpswitch_covers_spectre_v2_but_not_lvi() {
        let mut r = AttackReport::default();
        r.observe_icall(DefenseSet::NONE, false, true);
        assert_eq!(r.btb_hijackable_icalls, 0);
        assert_eq!(r.lvi_injectable, 1);
    }

    #[test]
    fn rsb_refilling_helps_only_until_overflow() {
        let mut r = AttackReport::default();
        r.observe_return(DefenseSet::NONE, true, false);
        assert_eq!(r.rsb_hijackable_rets, 0, "refilled, no overflow: safe");
        r.observe_return(DefenseSet::NONE, true, true);
        assert_eq!(r.rsb_hijackable_rets, 1, "overflowed: hijackable again");
        // Return retpolines protect regardless of RSB state.
        r.observe_return(DefenseSet::RET_RETPOLINES, false, true);
        assert_eq!(r.rsb_hijackable_rets, 1);
    }

    #[test]
    fn eibrs_narrows_but_does_not_close_spectre_v2() {
        let mut r = AttackReport::default();
        r.observe_icall_with(DefenseSet::NONE, false, false, true);
        assert_eq!(r.btb_hijackable_icalls, 0, "cross-domain training blocked");
        assert_eq!(
            r.btb_kernel_trained_icalls, 1,
            "same-domain training remains"
        );
        // Retpolines subsume eIBRS entirely.
        let mut r = AttackReport::default();
        r.observe_icall_with(DefenseSet::RETPOLINES, false, false, true);
        assert_eq!(r.total() - r.lvi_injectable, 0);
    }

    #[test]
    fn hardware_cfi_backends_cover_their_native_attacks() {
        let mut r = AttackReport::default();
        let arm = Arch::Arm64.backend();
        r.observe_icall_backend(arm, DefenseSet::ALL, false, false, false);
        r.observe_return_backend(arm, DefenseSet::ALL, false, false);
        r.observe_ijump_backend(arm, DefenseSet::ALL);
        assert!(
            r.is_clean(),
            "BTI+PAC cover every modelled attack; LVI is x86-only: {r:?}"
        );

        // The NOP-on-unsupported variant keeps the instructions but none of
        // the enforcement: everything is exposed again (except LVI, which
        // is not part of the RISC-V threat model).
        let mut r = AttackReport::default();
        let nop = Arch::Riscv64Nop.backend();
        r.observe_icall_backend(nop, DefenseSet::ALL, false, false, false);
        r.observe_return_backend(nop, DefenseSet::ALL, false, false);
        r.observe_ijump_backend(nop, DefenseSet::ALL);
        assert_eq!(r.btb_hijackable_icalls, 1);
        assert_eq!(r.rsb_hijackable_rets, 1);
        assert_eq!(r.btb_hijackable_ijumps, 1);
        assert_eq!(r.lvi_injectable, 0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = AttackReport {
            btb_hijackable_icalls: 1,
            btb_kernel_trained_icalls: 5,
            btb_hijackable_ijumps: 2,
            rsb_hijackable_rets: 3,
            lvi_injectable: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.total(), 30);
    }
}
