//! # pibe-sim
//!
//! An instruction-level cycle-cost simulator standing in for the paper's
//! bare-metal Skylake testbed.
//!
//! The paper's overhead numbers are, to first order,
//!
//! ```text
//! cycles = Σ base instruction costs
//!        + Σ (executed hardened branch × per-defense delta)      (Table 1)
//!        + prediction effects (BTB misses on unprotected icalls,
//!          RSB underflows on deep unwinds)
//!        + locality effects (i-cache misses as inlining grows code)
//! ```
//!
//! and that is exactly what [`Simulator`] charges while *executing* the IR:
//! it maintains a call stack, resolves indirect-call targets through a
//! workload-supplied [`TargetResolver`], models a branch target buffer, a
//! 16-entry return stack buffer, and a set-associative instruction cache,
//! and adds the per-branch defense deltas from [`pibe_harden::costs`].
//!
//! Three measurement companions ride along:
//!
//! * profile collection ([`SimConfig::collect_profile`]) — the profiling
//!   phase of the paper's pipeline;
//! * attack accounting ([`attack`]) — which dynamic indirect branches an
//!   attacker could have hijacked under the configured defenses;
//! * the [`micro`] module — the empty-callee micro-measurements of Table 1.
//!
//! Determinism: all randomness comes from one seeded [`rand::rngs::SmallRng`];
//! identical inputs produce identical cycle counts, bit for bit.
//!
//! ## Example
//!
//! ```
//! use pibe_harden::DefenseSet;
//! use pibe_ir::{FunctionBuilder, Module, OpKind};
//! use pibe_sim::{FixedResolver, SimConfig, Simulator};
//!
//! let mut module = Module::new("demo");
//! let mut b = FunctionBuilder::new("work", 0);
//! b.ops(OpKind::Alu, 8);
//! b.ret();
//! let work = module.add_function(b.build());
//!
//! let cfg = SimConfig { defenses: DefenseSet::ALL, ..SimConfig::default() };
//! let mut sim = Simulator::new(&module, FixedResolver(work), 7, cfg);
//! let cycles = sim.call_entry(work)?;
//! assert!(cycles > 8, "eight ALU ops plus the hardened return");
//! # Ok::<(), pibe_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attack;
mod exec;
mod machine;
pub mod micro;

pub use attack::AttackReport;
pub use exec::{
    ExecStats, FixedResolver, JumpSwitchConfig, MapResolver, SimConfig, SimError, Simulator,
    TargetResolver, TraceEvent,
};
pub use machine::MachineConfig;
