//! Table 1 micro-measurements: per-branch defense overheads and a SPEC-like
//! whole-program slowdown.
//!
//! The paper measures "the overhead for state-of-the-art mitigations … in
//! clock ticks per direct (dcall), indirect (icall), and virtual function
//! call (vcall)" with an empty callee and everything cached, plus each
//! defense's geometric-mean slowdown on SPEC CPU2006.
//!
//! Here each measurement runs the corresponding IR micro-program under the
//! simulator twice — hardened and unhardened — and reports the warm
//! per-call cycle difference. The defense deltas of [`pibe_harden::costs`]
//! are calibrated *from* Table 1, so the micro rows reproduce the paper's
//! numbers nearly exactly; the value of the harness is that the same costs
//! then drive every macro experiment. One modelling difference: the paper
//! makes the branch target unpredictable for the CPU, while this harness
//! keeps it predictable so the row isolates the instrumentation cost alone
//! (BTB effects are modelled — and measured — in the kernel experiments).

use crate::exec::{FixedResolver, SimConfig, Simulator};
use crate::machine::MachineConfig;
use pibe_harden::DefenseSet;
use pibe_ir::{FuncId, FunctionBuilder, Module, OpKind};
use serde::{Deserialize, Serialize};

/// Calls per measurement block (amortises the caller's own return).
const UNROLL: usize = 128;
/// Warm-up plus measurement iterations.
const WARMUP: usize = 8;
const MEASURE: usize = 32;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroRow {
    /// Ticks of overhead per direct call.
    pub dcall: u64,
    /// Ticks of overhead per indirect call.
    pub icall: u64,
    /// Ticks of overhead per virtual function call.
    pub vcall: u64,
}

/// Kind of call under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallKind {
    Direct,
    Indirect,
    Virtual,
}

/// Builds `empty() { ret }` and a caller that performs [`UNROLL`] calls of
/// the given kind to it, returning `(module, caller, callee)`.
fn micro_module(kind: CallKind) -> (Module, FuncId, FuncId) {
    let mut m = Module::new("table1-micro");
    let mut b = FunctionBuilder::new("empty", 0);
    b.ret();
    let empty = m.add_function(b.build());

    let mut b = FunctionBuilder::new("caller", 0);
    for _ in 0..UNROLL {
        let site = m.fresh_site();
        match kind {
            CallKind::Direct => {
                b.call(site, empty, 0);
            }
            CallKind::Indirect => {
                b.call_indirect(site, 0);
            }
            CallKind::Virtual => {
                // A vcall is an icall preceded by the vtable pointer load.
                b.op(OpKind::Load);
                b.call_indirect(site, 0);
            }
        }
    }
    b.ret();
    let caller = m.add_function(b.build());
    (m, caller, empty)
}

/// Warm per-call cycles of the micro program under `defenses`.
fn per_call_cycles(kind: CallKind, defenses: DefenseSet) -> f64 {
    let (m, caller, empty) = micro_module(kind);
    let cfg = SimConfig {
        machine: MachineConfig::default(),
        defenses,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&m, FixedResolver(empty), 1, cfg);
    for _ in 0..WARMUP {
        sim.call_entry(caller).expect("micro program cannot fail");
    }
    let mut total = 0u64;
    for _ in 0..MEASURE {
        total += sim.call_entry(caller).expect("micro program cannot fail");
    }
    total as f64 / (MEASURE * UNROLL) as f64
}

/// Measures one Table 1 row: per-call overhead of `defenses` relative to
/// the uninstrumented program.
pub fn table1_row(defenses: DefenseSet) -> MicroRow {
    let row = |kind| {
        let base = per_call_cycles(kind, DefenseSet::NONE);
        let hard = per_call_cycles(kind, defenses);
        (hard - base).round().max(0.0) as u64
    };
    MicroRow {
        dcall: row(CallKind::Direct),
        icall: row(CallKind::Indirect),
        vcall: row(CallKind::Virtual),
    }
}

/// Builds a SPEC-CPU-like userspace compute program: a pool of leaf
/// functions full of ALU/load work, called directly and indirectly at
/// SPEC-like densities (roughly one direct call and one indirect call per
/// ~120 instructions).
fn spec_like_module() -> (Module, FuncId, Vec<FuncId>) {
    let mut m = Module::new("spec-like");
    let mut leaves = Vec::new();
    for i in 0..24 {
        let mut b = FunctionBuilder::new(format!("leaf{i}"), 1);
        b.ops(OpKind::Alu, 28 + (i % 7) * 4);
        b.ops(OpKind::Load, 8);
        b.ops(OpKind::Store, 3);
        b.ret();
        leaves.push(m.add_function(b.build()));
    }
    let mut b = FunctionBuilder::new("main", 0);
    for i in 0..48usize {
        b.ops(OpKind::Alu, 40);
        b.ops(OpKind::Load, 12);
        let site = m.fresh_site();
        if i % 2 == 0 {
            b.call(site, leaves[i % leaves.len()], 1);
        } else {
            b.op(OpKind::Mov);
            b.call_indirect(site, 1);
        }
    }
    b.ret();
    let main = m.add_function(b.build());
    (m, main, leaves)
}

/// Round-robin resolver making indirect targets rotate across the leaf pool
/// (predictable to the BTB only while the rotation is stable).
#[derive(Debug)]
struct RotatingResolver {
    pool: Vec<FuncId>,
    next: usize,
}

impl crate::exec::TargetResolver for RotatingResolver {
    fn resolve(
        &mut self,
        _site: pibe_ir::SiteId,
        _rng: &mut rand::rngs::SmallRng,
    ) -> Option<FuncId> {
        let f = self.pool[self.next % self.pool.len()];
        self.next += 1;
        Some(f)
    }
}

/// Percent slowdown of the SPEC-like program under `defenses` relative to
/// the uninstrumented run (the rightmost column of Table 1).
pub fn spec_slowdown_percent(defenses: DefenseSet) -> f64 {
    let run = |d: DefenseSet| {
        let (m, main, leaves) = spec_like_module();
        let cfg = SimConfig {
            defenses: d,
            ..SimConfig::default()
        };
        let resolver = RotatingResolver {
            pool: leaves,
            next: 0,
        };
        let mut sim = Simulator::new(&m, resolver, 2, cfg);
        for _ in 0..4 {
            sim.call_entry(main).expect("spec-like program cannot fail");
        }
        let mut total = 0;
        for _ in 0..8 {
            total += sim.call_entry(main).expect("spec-like program cannot fail");
        }
        total
    };
    let base = run(DefenseSet::NONE) as f64;
    let hard = run(defenses) as f64;
    (hard - base) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninstrumented_row_is_zero() {
        let r = table1_row(DefenseSet::NONE);
        assert_eq!((r.dcall, r.icall, r.vcall), (0, 0, 0));
    }

    #[test]
    fn retpoline_row_matches_paper() {
        let r = table1_row(DefenseSet::RETPOLINES);
        assert_eq!(r.dcall, 0, "retpolines leave direct calls alone");
        assert_eq!(r.icall, 21, "Table 1: retpoline icall = 21");
        assert_eq!(r.vcall, 21);
    }

    #[test]
    fn lvi_row_matches_paper() {
        let r = table1_row(DefenseSet::LVI_CFI);
        assert_eq!(r.dcall, 11, "Table 1: LVI-CFI dcall = 11");
        assert_eq!(r.icall, 20, "Table 1: LVI-CFI icall = 20");
    }

    #[test]
    fn return_retpoline_row_matches_paper() {
        let r = table1_row(DefenseSet::RET_RETPOLINES);
        assert_eq!(r.dcall, 16);
        assert_eq!(r.icall, 16);
        assert_eq!(r.vcall, 16);
    }

    #[test]
    fn all_defenses_row_matches_paper() {
        let r = table1_row(DefenseSet::ALL);
        assert_eq!(r.dcall, 32, "Table 1: all defenses dcall = 32");
        assert_eq!(r.icall, 73, "Table 1: all defenses icall = 73");
    }

    #[test]
    fn spec_slowdown_ordering_matches_paper() {
        // Paper: retpolines 16.1% < ret-retpolines 23.2% < LVI 29.4% << all 62%.
        let retp = spec_slowdown_percent(DefenseSet::RETPOLINES);
        let rr = spec_slowdown_percent(DefenseSet::RET_RETPOLINES);
        let lvi = spec_slowdown_percent(DefenseSet::LVI_CFI);
        let all = spec_slowdown_percent(DefenseSet::ALL);
        assert!(retp > 3.0, "retpolines slow SPEC down measurably: {retp}");
        assert!(rr > retp, "ret-retpolines ({rr}) > retpolines ({retp})");
        assert!(all > lvi && all > rr, "all defenses dominate: {all}");
        assert!(all > 30.0, "comprehensive defense is heavy: {all}");
    }
}
