//! The executor: runs IR under the cost model.

use crate::attack::AttackReport;
use crate::machine::{Btb, ICache, MachineConfig, Rsb};
use pibe_harden::{costs, Arch, DefenseSet};
use pibe_ir::size::Layout;
use pibe_ir::{BlockId, Cond, FuncId, Inst, Module, OpKind, SiteId, Terminator};
use pibe_profile::Profile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Supplies the runtime target of each indirect call site.
///
/// This is the simulator's stand-in for data-dependent function pointers:
/// the *workload* owns the distribution of targets per site (different
/// workloads exercise different targets, which is what makes profiles
/// workload-dependent, §8.4).
pub trait TargetResolver {
    /// Samples the runtime target of indirect call `site`, or `None` when
    /// the site can never execute under this workload.
    fn resolve(&mut self, site: SiteId, rng: &mut SmallRng) -> Option<FuncId>;
}

/// Resolves every site to one fixed function (micro-benchmarks).
#[derive(Debug, Clone, Copy)]
pub struct FixedResolver(pub FuncId);

impl TargetResolver for FixedResolver {
    fn resolve(&mut self, _site: SiteId, _rng: &mut SmallRng) -> Option<FuncId> {
        Some(self.0)
    }
}

/// Resolves sites from a per-site weighted target distribution.
#[derive(Debug, Clone, Default)]
pub struct MapResolver {
    map: HashMap<SiteId, Vec<(FuncId, u32)>>,
}

impl MapResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the weighted target distribution of `site`.
    ///
    /// An empty list (or one whose weights are all zero) is accepted and
    /// means the site never resolves: [`resolve`](TargetResolver::resolve)
    /// returns `None`, which the simulator reports as
    /// [`SimError::UnknownTarget`]. Fuzzers generate such sites on purpose
    /// (a function-pointer table a workload never fills in).
    pub fn insert(&mut self, site: SiteId, targets: Vec<(FuncId, u32)>) {
        self.map.insert(site, targets);
    }

    /// The distribution registered for `site`, if any.
    pub fn get(&self, site: SiteId) -> Option<&[(FuncId, u32)]> {
        self.map.get(&site).map(Vec::as_slice)
    }
}

impl TargetResolver for MapResolver {
    fn resolve(&mut self, site: SiteId, rng: &mut SmallRng) -> Option<FuncId> {
        let dist = self.map.get(&site)?;
        let total: u64 = dist.iter().map(|(_, w)| u64::from(*w)).sum();
        if total == 0 {
            // Empty or all-zero distribution: a defined "never resolves",
            // with no rng draw (so the random stream stays aligned for
            // differential runs) and no panic from `gen_range(0..0)`.
            return None;
        }
        let mut pick = rng.gen_range(0..total);
        for (f, w) in dist {
            let w = u64::from(*w);
            if pick < w {
                return Some(*f);
            }
            pick -= w;
        }
        None
    }
}

/// Runtime model of the JumpSwitches baseline (Amit et al., ATC '19):
/// indirect calls are patched at runtime into compare-and-direct-call
/// chains; multi-target sites are "periodically put in a learning state, in
/// which case the call is reconverted into a retpoline that relearns
/// targets" (§8.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JumpSwitchConfig {
    /// Maximum promoted targets per site.
    pub max_slots: usize,
    /// Calls spent in learning mode per learning episode.
    pub learn_calls: u32,
    /// Calls between learning episodes for multi-target sites.
    pub relearn_period: u32,
    /// Extra cycles per call for the out-of-line trampoline jump (the
    /// cache-locality cost §9 contrasts with PIBE's inline checks).
    pub trampoline_cycles: u64,
    /// Consecutive chain misses that trigger relearning.
    pub miss_streak_limit: u32,
}

impl Default for JumpSwitchConfig {
    fn default() -> Self {
        JumpSwitchConfig {
            max_slots: 6,
            learn_calls: 8,
            relearn_period: 384,
            trampoline_cycles: 3,
            miss_streak_limit: 4,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct JsSite {
    learned: Vec<FuncId>,
    learn_left: u32,
    calls_since_learn: u32,
    miss_streak: u32,
    multi: bool,
}

/// One observable event of an execution, recorded in program order when
/// [`SimConfig::collect_trace`] is set.
///
/// The event stream is the workspace's *semantic observation*: two modules
/// are behaviourally equivalent on a workload exactly when they produce the
/// same stream (modulo the projections differential testing applies — see
/// `pibe-difftest`). The vocabulary is chosen so that semantics-preserving
/// transforms keep the *core* events (ops, random-branch outcomes, switch
/// arms, site resolutions) bit-identical:
///
/// * ICP replaces an indirect call's resolver draw with a `ResolveTarget`
///   draw at the same dynamic position, so [`TraceEvent::Resolved`] events
///   line up; its guards use `Cond::TargetIs`, which records nothing.
/// * Inlining splices callee bodies verbatim — only [`TraceEvent::Enter`] /
///   [`TraceEvent::Return`] pairs disappear.
/// * Hardening only flips how switches dispatch (`via_table`), not which
///   arm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A compute op executed (the side-effecting observables).
    Op(OpKind),
    /// Control entered a function through a call (direct or indirect).
    /// Function *identity* — not id — is the observable: passes renumber.
    Enter(FuncId),
    /// An indirect-call site resolved to a runtime target (either at a
    /// `CallIndirect` or at a promotion chain's `ResolveTarget`).
    Resolved {
        /// The resolved site.
        site: SiteId,
        /// The target the resolver produced.
        target: FuncId,
    },
    /// A `Cond::Random` branch executed. `Cond::TargetIs` guards are
    /// deliberately *not* recorded: they only exist in promoted code.
    BranchTaken(bool),
    /// A switch dispatched to arm `arm` (`cases.len()` means the default).
    SwitchArm(u32),
    /// Control returned out of a function.
    Return(FuncId),
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Machine cost/capacity parameters.
    pub machine: MachineConfig,
    /// Defenses the image is hardened with (costs charged per branch).
    pub defenses: DefenseSet,
    /// The architecture whose [`DefenseBackend`](pibe_harden::DefenseBackend)
    /// interprets `defenses`: per-branch cycle deltas and whether the
    /// hardened sequence inhibits speculation (retpolines do; hardware-CFI
    /// landing pads leave the predictors running).
    pub arch: Arch,
    /// When set, indirect calls use the JumpSwitches runtime mechanism
    /// instead of static hardening (retpolines still back the slow path).
    pub jumpswitch: Option<JumpSwitchConfig>,
    /// Model the Enhanced IBRS hardware mitigation (§6.4): indirect
    /// branches pay a small fixed toll and cross-domain BTB poisoning is
    /// blocked, but attacks that train from within the kernel remain (the
    /// reason the paper sticks with retpolines).
    pub eibrs: bool,
    /// Model the kernel's ad-hoc RSB-refilling mitigation (§6.4): the RSB
    /// is stuffed with benign entries on every kernel entry. Costs a fixed
    /// per-entry stuffing sequence and blocks *userspace-to-kernel* RSB
    /// poisoning — but not the scenarios that survive refilling (deep call
    /// chains that overflow the RSB), which is the paper's argument for
    /// return retpolines.
    pub rsb_refill: bool,
    /// Collect an execution [`Profile`] (the profiling-phase binary).
    pub collect_profile: bool,
    /// Record the observable [`TraceEvent`] stream (differential testing).
    pub collect_trace: bool,
    /// Track the attack surface per executed indirect branch.
    pub track_attacks: bool,
    /// Abort after this many executed instructions (runaway guard).
    pub max_steps: u64,
    /// Abort beyond this call depth.
    pub max_depth: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            machine: MachineConfig::default(),
            defenses: DefenseSet::NONE,
            arch: Arch::X86,
            jumpswitch: None,
            eibrs: false,
            rsb_refill: false,
            collect_profile: false,
            collect_trace: false,
            track_attacks: false,
            max_steps: 2_000_000_000,
            max_depth: 4096,
        }
    }
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The resolver had no target for an executed indirect call.
    UnknownTarget(SiteId),
    /// The resolver produced a function id outside the module.
    BadTarget(SiteId, FuncId),
    /// A `CallIndirect { resolved: true }` or `TargetIs` guard executed with
    /// no pinned target for its site.
    UnresolvedTarget(SiteId),
    /// The step limit was exceeded (likely an accidental infinite loop).
    StepLimit(u64),
    /// The call-depth limit was exceeded.
    StackOverflow(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTarget(s) => write!(f, "no target distribution for {s}"),
            SimError::BadTarget(s, t) => write!(f, "{s} resolved to nonexistent {t}"),
            SimError::UnresolvedTarget(s) => write!(f, "{s} used before ResolveTarget"),
            SimError::StepLimit(n) => write!(f, "exceeded step limit of {n} instructions"),
            SimError::StackOverflow(n) => write!(f, "exceeded call depth limit of {n}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Dynamic execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Executed instructions (including terminators).
    pub insts: u64,
    /// Executed non-branch compute ops. Inlining and indirect call promotion
    /// preserve this count exactly — the workspace's semantics-preservation
    /// invariant.
    pub ops: u64,
    /// Executed direct calls.
    pub dcalls: u64,
    /// Executed indirect calls.
    pub icalls: u64,
    /// Executed indirect jumps (jump-table switches).
    pub ijumps: u64,
    /// Executed returns.
    pub rets: u64,
    /// BTB mispredictions on unprotected indirect branches.
    pub btb_misses: u64,
    /// RSB mispredictions on unprotected returns.
    pub rsb_misses: u64,
    /// L1 instruction-cache line misses.
    pub icache_misses: u64,
    /// Line misses that also missed the L2.
    pub l2_misses: u64,
    /// Peak stack usage in bytes.
    pub peak_stack_bytes: u64,
    /// Cycles spent in JumpSwitch learning mode (baseline diagnostics).
    pub jumpswitch_learn_cycles: u64,
    /// Cycles attributable to defense instrumentation (thunks, fences,
    /// guard chains, RSB stuffing).
    pub cycles_defense: u64,
    /// Cycles attributable to mispredictions (BTB and RSB penalties).
    pub cycles_prediction: u64,
    /// Cycles attributable to instruction-cache misses.
    pub cycles_locality: u64,
}

impl ExecStats {
    /// Cycles left after subtracting the attributed categories: the
    /// workload's base compute plus (predicted) control transfer costs.
    pub fn cycles_base(&self) -> u64 {
        self.cycles - self.cycles_defense - self.cycles_prediction - self.cycles_locality
    }
}

struct Frame {
    func: FuncId,
    block: BlockId,
    idx: usize,
    pending: Vec<(SiteId, FuncId)>,
    token: u64,
    frame_bytes: u64,
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame({} {} idx={})", self.func, self.block, self.idx)
    }
}

/// Executes a [`Module`] under the cost model, preserving machine state
/// (caches, predictors) across entry-point invocations the way a real
/// kernel stays warm across syscalls.
pub struct Simulator<'m, R> {
    module: &'m Module,
    layout: Layout,
    resolver: R,
    rng: SmallRng,
    cfg: SimConfig,
    btb: Btb,
    rsb: Rsb,
    icache: ICache,
    frames: Vec<Frame>,
    steps: u64,
    next_token: u64,
    cur_stack: u64,
    stats: ExecStats,
    profile: Profile,
    trace: Vec<TraceEvent>,
    attacks: AttackReport,
    rsb_overflowed: bool,
    js_sites: HashMap<SiteId, JsSite>,
}

impl<R> fmt::Debug for Simulator<'_, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Simulator(module={}, cycles={}, steps={})",
            self.module.name(),
            self.stats.cycles,
            self.steps
        )
    }
}

impl<'m, R: TargetResolver> Simulator<'m, R> {
    /// Creates a simulator over `module` with the given resolver and seed.
    pub fn new(module: &'m Module, resolver: R, seed: u64, cfg: SimConfig) -> Self {
        let m = &cfg.machine;
        Simulator {
            module,
            layout: Layout::of(module),
            resolver,
            rng: SmallRng::seed_from_u64(seed),
            cfg,
            btb: Btb::new(m.btb_entries),
            rsb: Rsb::new(m.rsb_depth),
            icache: ICache::new(
                m.icache_bytes,
                m.icache_line,
                m.icache_ways,
                m.l2_bytes,
                m.l2_ways,
            ),
            frames: Vec::new(),
            steps: 0,
            next_token: 1,
            cur_stack: 0,
            stats: ExecStats::default(),
            profile: Profile::new(),
            trace: Vec::new(),
            attacks: AttackReport::default(),
            rsb_overflowed: false,
            js_sites: HashMap::new(),
        }
    }

    /// Runs one invocation of `entry` to completion and returns the cycles
    /// it took. Machine state (caches, predictors) carries over between
    /// invocations.
    ///
    /// # Errors
    /// See [`SimError`]. On error the simulator's stack is cleared; machine
    /// state and accumulated statistics remain usable.
    pub fn call_entry(&mut self, entry: FuncId) -> Result<u64, SimError> {
        let start = self.stats.cycles;
        let r = self.run_from(entry);
        if r.is_err() {
            self.drain_stack();
        }
        r.map(|()| self.stats.cycles - start)
    }

    fn run_from(&mut self, entry: FuncId) -> Result<(), SimError> {
        if self.cfg.rsb_refill {
            // Stuff the RSB with benign entries on kernel entry: one call
            // per slot, ~2 cycles each.
            let stuffing = 2 * self.cfg.machine.rsb_depth as u64;
            self.stats.cycles += stuffing;
            self.stats.cycles_defense += stuffing;
            self.rsb_overflowed = false;
        }
        // The entry transfer behaves like a call so the RSB stays balanced
        // (a real syscall entry does not desynchronise the RSB either).
        self.rsb.push(self.next_token);
        self.push_frame(entry)?;
        self.enter_block();
        while !self.frames.is_empty() {
            self.step()?;
        }
        Ok(())
    }

    fn drain_stack(&mut self) {
        while let Some(f) = self.frames.pop() {
            self.cur_stack = self.cur_stack.saturating_sub(f.frame_bytes);
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Accumulated cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Accumulated attack-surface report.
    pub fn attacks(&self) -> &AttackReport {
        &self.attacks
    }

    /// Takes the collected profile (empty unless `collect_profile` was set).
    pub fn take_profile(&mut self) -> Profile {
        std::mem::take(&mut self.profile)
    }

    /// Takes the recorded observable-event stream (empty unless
    /// [`SimConfig::collect_trace`] was set). Events accumulate across
    /// entry-point invocations; on an erroring invocation the stream keeps
    /// the events observed up to the failure point.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        if self.cfg.collect_trace {
            self.trace.push(ev);
        }
    }

    // ---- internals -------------------------------------------------------

    fn push_frame(&mut self, func: FuncId) -> Result<(), SimError> {
        if self.frames.len() >= self.cfg.max_depth {
            return Err(SimError::StackOverflow(self.cfg.max_depth));
        }
        let f = self.module.function(func);
        let token = self.next_token;
        self.next_token += 1;
        let frame_bytes = u64::from(f.frame_bytes());
        self.cur_stack += frame_bytes;
        self.stats.peak_stack_bytes = self.stats.peak_stack_bytes.max(self.cur_stack);
        if self.cfg.collect_profile {
            self.profile.record_entry(func);
        }
        self.frames.push(Frame {
            func,
            block: BlockId::ENTRY,
            idx: 0,
            pending: Vec::new(),
            token,
            frame_bytes,
        });
        Ok(())
    }

    fn enter_block(&mut self) {
        let frame = self.frames.last().expect("enter_block with empty stack");
        let (addr, len) = self.layout.block_range(frame.func, frame.block);
        let (l1_misses, l2_misses) = self.icache.access(addr, len);
        self.stats.icache_misses += l1_misses;
        self.stats.l2_misses += l2_misses;
        let penalty = l1_misses * self.cfg.machine.icache_miss_penalty
            + l2_misses * self.cfg.machine.l2_miss_penalty;
        self.stats.cycles += penalty;
        self.stats.cycles_locality += penalty;
    }

    fn bump_step(&mut self) -> Result<(), SimError> {
        self.steps += 1;
        self.stats.insts += 1;
        if self.steps > self.cfg.max_steps {
            return Err(SimError::StepLimit(self.cfg.max_steps));
        }
        Ok(())
    }

    fn step(&mut self) -> Result<(), SimError> {
        self.bump_step()?;
        let frame = self.frames.last().expect("step with empty stack");
        let func = self.module.function(frame.func);
        let block = func.block(frame.block);
        if frame.idx < block.insts().len() {
            let inst = block.insts()[frame.idx].clone();
            self.frames.last_mut().expect("frame").idx += 1;
            self.exec_inst(inst)
        } else {
            let term = block.term().clone();
            self.exec_term(term)
        }
    }

    fn exec_inst(&mut self, inst: Inst) -> Result<(), SimError> {
        let m = self.cfg.machine;
        match inst {
            Inst::Op(kind) => {
                self.record(TraceEvent::Op(kind));
                self.stats.ops += 1;
                self.stats.cycles += match kind {
                    OpKind::Load => m.cycles_load,
                    OpKind::Fence => m.cycles_fence,
                    _ => m.cycles_simple,
                };
                Ok(())
            }
            Inst::ResolveTarget { site } => {
                // Part of a promotion guard chain: instrumentation cost.
                self.stats.cycles += m.cycles_simple;
                self.stats.cycles_defense += m.cycles_simple;
                let target = self.resolve(site)?;
                let frame = self.frames.last_mut().expect("frame");
                match frame.pending.iter_mut().find(|(s, _)| *s == site) {
                    Some(slot) => slot.1 = target,
                    None => frame.pending.push((site, target)),
                }
                Ok(())
            }
            Inst::Call { site, callee, .. } => {
                self.stats.dcalls += 1;
                self.stats.cycles += m.cycles_call;
                if self.cfg.collect_profile {
                    self.profile.record_direct(site);
                }
                self.do_call(callee)
            }
            Inst::CallIndirect {
                site,
                resolved,
                asm,
                ..
            } => {
                self.stats.icalls += 1;
                let target = if resolved {
                    self.pending_target(site)?
                } else {
                    self.resolve(site)?
                };
                // Inline-assembly calls are invisible to the (compiler-
                // inserted) profiling instrumentation, exactly as in the
                // paper's kernel profiler.
                if self.cfg.collect_profile && !asm {
                    self.profile.record_indirect(site, target);
                }
                self.charge_icall(site, target, asm);
                if self.cfg.track_attacks {
                    self.attacks.observe_icall_backend(
                        self.cfg.arch.backend(),
                        self.cfg.defenses,
                        asm,
                        self.cfg.jumpswitch.is_some(),
                        self.cfg.eibrs,
                    );
                }
                self.do_call(target)
            }
        }
    }

    fn resolve(&mut self, site: SiteId) -> Result<FuncId, SimError> {
        let target = self
            .resolver
            .resolve(site, &mut self.rng)
            .ok_or(SimError::UnknownTarget(site))?;
        if target.index() >= self.module.len() {
            return Err(SimError::BadTarget(site, target));
        }
        self.record(TraceEvent::Resolved { site, target });
        Ok(target)
    }

    fn pending_target(&self, site: SiteId) -> Result<FuncId, SimError> {
        let frame = self.frames.last().expect("frame");
        frame
            .pending
            .iter()
            .rev()
            .find(|(s, _)| *s == site)
            .map(|(_, t)| *t)
            .ok_or(SimError::UnresolvedTarget(site))
    }

    /// Charges the cost of an executed indirect call, depending on how (or
    /// whether) it is protected.
    fn charge_icall(&mut self, site: SiteId, target: FuncId, asm: bool) {
        let m = self.cfg.machine;
        self.stats.cycles += m.cycles_icall;
        if self.cfg.eibrs {
            // Restricted-speculation toll on every indirect branch.
            self.stats.cycles += 2;
            self.stats.cycles_defense += 2;
        }
        if asm {
            // Inline-asm sites cannot be instrumented: raw BTB behaviour.
            self.charge_btb(site, target);
            return;
        }
        if let Some(js) = self.cfg.jumpswitch {
            self.charge_jumpswitch(js, site, target);
            return;
        }
        // The backend's per-call instrumentation toll (zero when the
        // forward edge is unhardened), then the predictor: a retpoline
        // thunk inhibits speculation entirely — no BTB involvement — while
        // hardware-CFI landing pads leave the BTB running.
        let backend = self.cfg.arch.backend();
        let delta = backend.forward_delta(self.cfg.defenses);
        self.stats.cycles += delta;
        self.stats.cycles_defense += delta;
        if !backend.inhibits_forward_speculation(self.cfg.defenses) {
            self.charge_btb(site, target);
        }
    }

    fn charge_btb(&mut self, site: SiteId, target: FuncId) {
        let m = self.cfg.machine;
        let addr = site.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let actual = self.layout.func_base(target);
        if !self.btb.predict_and_train(addr, actual) {
            self.stats.btb_misses += 1;
            self.stats.cycles += m.btb_miss_penalty;
            self.stats.cycles_prediction += m.btb_miss_penalty;
        }
    }

    fn charge_jumpswitch(&mut self, js: JumpSwitchConfig, site: SiteId, target: FuncId) {
        let m = self.cfg.machine;
        self.stats.cycles += js.trampoline_cycles;
        self.stats.cycles_defense += js.trampoline_cycles;
        let state = self.js_sites.entry(site).or_default();
        if state.learn_left > 0 {
            // Learning mode: retpoline slow path while recording targets.
            state.learn_left -= 1;
            if !state.learned.contains(&target) {
                if state.learned.len() < js.max_slots {
                    state.learned.push(target);
                } else {
                    state.learned.rotate_right(1);
                    state.learned[0] = target;
                }
            }
            if state.learned.len() > 1 {
                state.multi = true;
            }
            let cost = costs::forward_delta(DefenseSet::RETPOLINES);
            self.stats.cycles += cost;
            self.stats.jumpswitch_learn_cycles += cost;
            self.stats.cycles_defense += cost;
            return;
        }
        state.calls_since_learn += 1;
        if let Some(pos) = state.learned.iter().position(|t| *t == target) {
            // Chain hit: one compare per slot tested, then a direct call.
            state.miss_streak = 0;
            let chain = (pos as u64 + 1) * m.cycles_branch;
            self.stats.cycles += chain;
            self.stats.cycles_defense += chain;
            if state.multi && state.calls_since_learn >= js.relearn_period {
                state.learn_left = js.learn_calls;
                state.calls_since_learn = 0;
            }
        } else {
            // Chain miss: retpoline fallback; a streak triggers relearning.
            state.miss_streak += 1;
            let cost = costs::forward_delta(DefenseSet::RETPOLINES);
            self.stats.cycles += cost;
            self.stats.cycles_defense += cost;
            if state.miss_streak >= js.miss_streak_limit {
                state.learn_left = js.learn_calls;
                state.calls_since_learn = 0;
                state.miss_streak = 0;
            }
        }
    }

    fn do_call(&mut self, callee: FuncId) -> Result<(), SimError> {
        self.record(TraceEvent::Enter(callee));
        let token = self.next_token; // token assigned inside push_frame
        if self.rsb.push(token) {
            self.rsb_overflowed = true;
        }
        self.push_frame(callee)?;
        self.enter_block();
        Ok(())
    }

    fn exec_term(&mut self, term: Terminator) -> Result<(), SimError> {
        let m = self.cfg.machine;
        match term {
            Terminator::Jump { target } => {
                self.stats.cycles += m.cycles_branch;
                self.goto(target);
                Ok(())
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let taken = match cond {
                    Cond::Random { ptaken_milli } => {
                        self.stats.cycles += m.cycles_branch;
                        let taken = self.rng.gen_range(0..1000) < u32::from(ptaken_milli);
                        self.record(TraceEvent::BranchTaken(taken));
                        taken
                    }
                    Cond::TargetIs { site, target } => {
                        // cmp + predictable jcc: the paper's ~2 cycles/check,
                        // attributed to instrumentation (the promotion guard).
                        let check = m.cycles_simple + m.cycles_branch;
                        self.stats.cycles += check;
                        self.stats.cycles_defense += check;
                        self.pending_target(site)? == target
                    }
                };
                self.goto(if taken { then_bb } else { else_bb });
                Ok(())
            }
            Terminator::Switch {
                weights,
                cases,
                default_weight,
                default,
                via_table,
            } => {
                let choice = self.pick_case(&weights, default_weight);
                let (dest, matched_idx) = match choice {
                    Some(i) => (cases[i], i),
                    None => (default, cases.len()),
                };
                self.record(TraceEvent::SwitchArm(matched_idx as u32));
                if via_table {
                    self.stats.ijumps += 1;
                    // Bounds check + indexed indirect jump, BTB-predicted.
                    self.stats.cycles += 2 * m.cycles_simple;
                    let backend = self.cfg.arch.backend();
                    if backend.protects_jump_tables(self.cfg.defenses) {
                        // Landing pads cover the table targets: the jump
                        // pays the backend's forward toll like any other
                        // indirect branch.
                        let delta = backend.forward_delta(self.cfg.defenses);
                        self.stats.cycles += delta;
                        self.stats.cycles_defense += delta;
                    }
                    let frame = self.frames.last().expect("frame");
                    let (addr, _) = self.layout.block_range(frame.func, frame.block);
                    let (dest_addr, _) = self.layout.block_range(frame.func, dest);
                    if !self.btb.predict_and_train(addr, dest_addr) {
                        self.stats.btb_misses += 1;
                        self.stats.cycles += m.btb_miss_penalty;
                    }
                    if self.cfg.track_attacks {
                        self.attacks
                            .observe_ijump_backend(backend, self.cfg.defenses);
                    }
                } else {
                    // Compare chain: one cmp+jcc per case tested.
                    self.stats.cycles +=
                        (matched_idx as u64 + 1) * (m.cycles_simple + m.cycles_branch);
                }
                self.goto(dest);
                Ok(())
            }
            Terminator::Return => {
                self.stats.rets += 1;
                self.stats.cycles += m.cycles_ret;
                let frame = self.frames.pop().expect("return with empty stack");
                self.record(TraceEvent::Return(frame.func));
                self.cur_stack = self.cur_stack.saturating_sub(frame.frame_bytes);
                if self.cfg.collect_profile {
                    self.profile.record_return(frame.func);
                }
                if self.cfg.track_attacks {
                    self.attacks.observe_return_backend(
                        self.cfg.arch.backend(),
                        self.cfg.defenses,
                        self.cfg.rsb_refill,
                        self.rsb_overflowed,
                    );
                }
                // The backend's per-return toll (zero when unhardened),
                // then the predictor: a return retpoline inhibits RSB
                // speculation; PAC-ret / shadow-stack checks leave the RSB
                // predicting as usual.
                let backend = self.cfg.arch.backend();
                let delta = backend.return_delta(self.cfg.defenses);
                self.stats.cycles += delta;
                self.stats.cycles_defense += delta;
                if backend.inhibits_return_speculation(self.cfg.defenses) {
                    let _ = self.rsb.pop_and_check(frame.token);
                } else if !self.rsb.pop_and_check(frame.token) {
                    self.stats.rsb_misses += 1;
                    self.stats.cycles += m.rsb_miss_penalty;
                    self.stats.cycles_prediction += m.rsb_miss_penalty;
                }
                Ok(())
            }
        }
    }

    fn pick_case(&mut self, weights: &[u16], default_weight: u16) -> Option<usize> {
        let total: u32 =
            weights.iter().map(|w| u32::from(*w)).sum::<u32>() + u32::from(default_weight);
        if total == 0 {
            return None;
        }
        let mut pick = self.rng.gen_range(0..total);
        for (i, w) in weights.iter().enumerate() {
            let w = u32::from(*w);
            if pick < w {
                return Some(i);
            }
            pick -= w;
        }
        None
    }

    fn goto(&mut self, target: BlockId) {
        let frame = self.frames.last_mut().expect("goto with empty stack");
        frame.block = target;
        frame.idx = 0;
        self.enter_block();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::FunctionBuilder;

    /// leaf() { alu; ret }  root() { call leaf; icall(site) -> leaf; ret }
    fn module() -> (Module, SiteId, FuncId, FuncId) {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", 0);
        b.op(OpKind::Alu);
        b.ret();
        let leaf = m.add_function(b.build());

        let s_direct = m.fresh_site();
        let s_ind = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(s_direct, leaf, 0);
        b.call_indirect(s_ind, 0);
        b.ret();
        let root = m.add_function(b.build());
        m.verify().unwrap();
        (m, s_ind, root, leaf)
    }

    fn sim_cfg(defenses: DefenseSet) -> SimConfig {
        SimConfig {
            defenses,
            collect_profile: true,
            track_attacks: true,
            ..SimConfig::default()
        }
    }

    #[test]
    fn executes_calls_and_counts_branches() {
        let (m, _s, root, leaf) = module();
        let mut sim = Simulator::new(&m, FixedResolver(leaf), 7, sim_cfg(DefenseSet::NONE));
        let cycles = sim.call_entry(root).unwrap();
        assert!(cycles > 0);
        let st = sim.stats();
        assert_eq!(st.dcalls, 1);
        assert_eq!(st.icalls, 1);
        assert_eq!(st.rets, 3);
        assert!(st.peak_stack_bytes >= 128, "two frames deep");
    }

    #[test]
    fn profile_collection_records_edges() {
        let (m, s_ind, root, leaf) = module();
        let mut sim = Simulator::new(&m, FixedResolver(leaf), 7, sim_cfg(DefenseSet::NONE));
        for _ in 0..5 {
            sim.call_entry(root).unwrap();
        }
        let p = sim.take_profile();
        assert_eq!(p.indirect_count(s_ind), 5);
        assert_eq!(p.entry_count(leaf), 10, "leaf entered twice per run");
        assert_eq!(p.return_count(root), 5);
        let vp = p.value_profile(s_ind);
        assert_eq!(vp.len(), 1);
        assert_eq!(vp[0].target, leaf);
    }

    #[test]
    fn defenses_make_execution_slower() {
        let (m, _s, root, leaf) = module();
        let run = |d: DefenseSet| {
            let mut sim = Simulator::new(&m, FixedResolver(leaf), 7, sim_cfg(d));
            // Warm caches/predictors first, then measure.
            for _ in 0..3 {
                sim.call_entry(root).unwrap();
            }
            sim.call_entry(root).unwrap()
        };
        let none = run(DefenseSet::NONE);
        let retp = run(DefenseSet::RETPOLINES);
        let all = run(DefenseSet::ALL);
        assert!(retp > none, "retpolines add cost ({retp} <= {none})");
        assert!(all > retp, "all defenses cost the most");
        // Warm steady state: retpolines add exactly 21 to the one icall.
        assert_eq!(retp - none, 21);
        // All: fwd 41 on the icall + ret 32 on each of 3 returns.
        assert_eq!(all - none, 41 + 3 * 32);
    }

    #[test]
    fn backend_deltas_charge_per_arch_and_nop_charges_nothing() {
        let (m, _s, root, leaf) = module();
        let run = |arch: Arch, d: DefenseSet| {
            let cfg = SimConfig { arch, ..sim_cfg(d) };
            let mut sim = Simulator::new(&m, FixedResolver(leaf), 7, cfg);
            for _ in 0..3 {
                sim.call_entry(root).unwrap();
            }
            sim.call_entry(root).unwrap()
        };
        let baseline = run(Arch::X86, DefenseSet::NONE);
        for arch in Arch::ALL {
            assert_eq!(
                run(arch, DefenseSet::NONE),
                baseline,
                "{arch:?}: NONE is arch-independent"
            );
        }
        // Warm steady state: one icall + three returns per invocation, so
        // the overhead is exactly the backend's per-branch deltas.
        for arch in Arch::ALL {
            let b = arch.backend();
            let expect = b.forward_delta(DefenseSet::ALL) + 3 * b.return_delta(DefenseSet::ALL);
            assert_eq!(
                run(arch, DefenseSet::ALL) - baseline,
                expect,
                "{arch:?}: warm overhead is the backend's deltas"
            );
        }
        // Hardware CFI is an order of magnitude cheaper than the fenced
        // retpoline family; the NOP variant charges nothing at all.
        assert!(run(Arch::Arm64, DefenseSet::ALL) < run(Arch::X86, DefenseSet::ALL) / 2);
        assert_eq!(run(Arch::Riscv64Nop, DefenseSet::ALL), baseline);
    }

    #[test]
    fn btb_warms_up_for_single_target_sites() {
        let (m, _s, root, leaf) = module();
        let mut sim = Simulator::new(&m, FixedResolver(leaf), 7, sim_cfg(DefenseSet::NONE));
        sim.call_entry(root).unwrap();
        let cold_misses = sim.stats().btb_misses;
        sim.call_entry(root).unwrap();
        assert_eq!(sim.stats().btb_misses, cold_misses, "warm icall predicted");
    }

    #[test]
    fn unknown_target_is_an_error() {
        let (m, s, root, _) = module();
        let resolver = MapResolver::new(); // empty: site unknown
        let mut sim = Simulator::new(&m, resolver, 7, sim_cfg(DefenseSet::NONE));
        assert_eq!(sim.call_entry(root), Err(SimError::UnknownTarget(s)));
        // Simulator remains usable after the failed run.
        assert_eq!(sim.stats().dcalls, 1);
    }

    #[test]
    fn bad_target_is_an_error() {
        let (m, _s, root, _) = module();
        let mut sim = Simulator::new(
            &m,
            FixedResolver(FuncId::from_raw(999)),
            7,
            sim_cfg(DefenseSet::NONE),
        );
        assert!(matches!(
            sim.call_entry(root),
            Err(SimError::BadTarget(_, _))
        ));
    }

    #[test]
    fn map_resolver_samples_all_targets() {
        let (m, s, root, leaf) = module();
        // Second possible target: root itself would recurse; use leaf twice
        // with different weights and check distribution is exercised.
        let mut resolver = MapResolver::new();
        resolver.insert(s, vec![(leaf, 3), (leaf, 1)]);
        let mut sim = Simulator::new(&m, resolver, 11, sim_cfg(DefenseSet::NONE));
        for _ in 0..10 {
            sim.call_entry(root).unwrap();
        }
        assert_eq!(sim.stats().icalls, 10);
    }

    #[test]
    fn empty_and_zero_weight_distributions_resolve_to_none() {
        // Pins the satellite fix: a registered-but-empty (or all-zero)
        // distribution is a defined `None` — surfaced as `UnknownTarget` —
        // not a `gen_range(0..0)` panic, and it consumes no rng draw.
        let (m, s, root, leaf) = module();
        for dist in [vec![], vec![(leaf, 0), (leaf, 0)]] {
            let mut resolver = MapResolver::new();
            resolver.insert(s, dist);
            let mut sim = Simulator::new(&m, resolver, 7, sim_cfg(DefenseSet::NONE));
            assert_eq!(sim.call_entry(root), Err(SimError::UnknownTarget(s)));
        }
        // No draw consumed: the rng stream after the failed resolve matches
        // the one after an unregistered-site failure (which draws nothing).
        let trace_of = |resolver: MapResolver| {
            let cfg = SimConfig {
                collect_trace: true,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(&m, resolver, 7, cfg);
            let _ = sim.call_entry(root);
            sim.take_trace()
        };
        let mut zero = MapResolver::new();
        zero.insert(s, vec![(leaf, 0)]);
        assert_eq!(trace_of(zero), trace_of(MapResolver::new()));
    }

    #[test]
    fn trace_records_observable_events_in_order() {
        let (m, s, root, leaf) = module();
        let cfg = SimConfig {
            collect_trace: true,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&m, FixedResolver(leaf), 7, cfg);
        sim.call_entry(root).unwrap();
        let trace = sim.take_trace();
        assert_eq!(
            trace,
            vec![
                TraceEvent::Enter(leaf), // direct call
                TraceEvent::Op(OpKind::Alu),
                TraceEvent::Return(leaf),
                TraceEvent::Resolved {
                    site: s,
                    target: leaf
                },
                TraceEvent::Enter(leaf), // indirect call
                TraceEvent::Op(OpKind::Alu),
                TraceEvent::Return(leaf),
                TraceEvent::Return(root),
            ]
        );
        // Disabled by default: no events, no cost.
        let mut sim = Simulator::new(&m, FixedResolver(leaf), 7, sim_cfg(DefenseSet::NONE));
        sim.call_entry(root).unwrap();
        assert!(sim.take_trace().is_empty());
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("spin", 0);
        let exit = b.new_block();
        let loop_bb = b.new_block();
        b.jump(loop_bb);
        b.switch_to(loop_bb);
        b.op(OpKind::Alu);
        b.branch(Cond::Random { ptaken_milli: 1000 }, loop_bb, exit);
        b.switch_to(exit);
        b.ret();
        let f = m.add_function(b.build());
        let cfg = SimConfig {
            max_steps: 1000,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&m, FixedResolver(f), 7, cfg);
        assert_eq!(sim.call_entry(f), Err(SimError::StepLimit(1000)));
    }

    #[test]
    fn attack_tracking_counts_unprotected_branch_executions() {
        let (m, _s, root, leaf) = module();
        let mut sim = Simulator::new(&m, FixedResolver(leaf), 7, sim_cfg(DefenseSet::NONE));
        sim.call_entry(root).unwrap();
        let a = sim.attacks();
        assert_eq!(a.btb_hijackable_icalls, 1);
        assert_eq!(a.rsb_hijackable_rets, 3);
        assert_eq!(a.lvi_injectable, 1 + 3);

        let mut sim = Simulator::new(&m, FixedResolver(leaf), 7, sim_cfg(DefenseSet::ALL));
        sim.call_entry(root).unwrap();
        let a = sim.attacks();
        assert_eq!(a.btb_hijackable_icalls, 0);
        assert_eq!(a.rsb_hijackable_rets, 0);
        assert_eq!(a.lvi_injectable, 0);
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let (m, _s, root, leaf) = module();
        let run = || {
            let mut sim = Simulator::new(&m, FixedResolver(leaf), 42, sim_cfg(DefenseSet::NONE));
            (0..10).map(|_| sim.call_entry(root).unwrap()).sum::<u64>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn resolved_chain_guard_and_fallback_work() {
        // Build an ICP-shaped chain by hand:
        //   resolve s; br (s==leaf) ? direct : fallback
        //   direct: call leaf; jmp merge
        //   fallback: call *resolved; jmp merge
        //   merge: ret
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", 0);
        b.ret();
        let leaf = m.add_function(b.build());
        let mut b = FunctionBuilder::new("other", 0);
        b.ret();
        let other = m.add_function(b.build());

        let s = m.fresh_site();
        let s_promo = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        let direct = b.new_block();
        let fallback = b.new_block();
        let merge = b.new_block();
        b.resolve_target(s);
        b.branch(
            Cond::TargetIs {
                site: s,
                target: leaf,
            },
            direct,
            fallback,
        );
        b.switch_to(direct);
        b.call(s_promo, leaf, 0);
        b.jump(merge);
        b.switch_to(fallback);
        b.inst(Inst::CallIndirect {
            site: s,
            args: 0,
            resolved: true,
            asm: false,
        });
        b.jump(merge);
        b.switch_to(merge);
        b.ret();
        let root = m.add_function(b.build());
        m.verify().unwrap();

        // Resolver alternates targets deterministically by weight.
        let mut resolver = MapResolver::new();
        resolver.insert(s, vec![(leaf, 1), (other, 1)]);
        let mut sim = Simulator::new(&m, resolver, 3, sim_cfg(DefenseSet::NONE));
        for _ in 0..50 {
            sim.call_entry(root).unwrap();
        }
        let p = sim.take_profile();
        // Every promoted hit is recorded as a direct call; misses fall back.
        let direct_hits = p.direct_count(s_promo);
        let fallback_hits = p.indirect_count(s);
        assert_eq!(direct_hits + fallback_hits, 50);
        assert!(direct_hits > 10, "leaf target should hit the guard");
        assert!(fallback_hits > 10, "other target should miss the guard");
        assert_eq!(sim.stats().icalls, fallback_hits);
    }

    #[test]
    fn cycle_attribution_partitions_total_cycles() {
        let (m, _s, root, leaf) = module();
        for d in [DefenseSet::NONE, DefenseSet::RETPOLINES, DefenseSet::ALL] {
            let mut sim = Simulator::new(&m, FixedResolver(leaf), 7, sim_cfg(d));
            for _ in 0..20 {
                sim.call_entry(root).unwrap();
            }
            let st = *sim.stats();
            assert_eq!(
                st.cycles,
                st.cycles_base() + st.cycles_defense + st.cycles_prediction + st.cycles_locality,
                "categories partition the total under {d}"
            );
            if d.is_none() {
                assert_eq!(st.cycles_defense, 0, "no instrumentation charged");
            } else {
                assert!(st.cycles_defense > 0, "defenses charge cycles under {d}");
            }
        }
        // Base cycles are identical across defense configurations: the
        // instrumentation is strictly additive.
        let base_of = |d: DefenseSet| {
            let mut sim = Simulator::new(&m, FixedResolver(leaf), 7, sim_cfg(d));
            for _ in 0..20 {
                sim.call_entry(root).unwrap();
            }
            sim.stats().cycles_base()
        };
        assert_eq!(base_of(DefenseSet::NONE), base_of(DefenseSet::ALL));
    }

    #[test]
    fn rsb_refilling_blocks_shallow_poisoning_but_not_deep_chains() {
        // A chain deeper than the RSB (16): nest 20 calls.
        let mut m = Module::new("m");
        let mut prev: Option<FuncId> = None;
        for i in 0..20 {
            let mut b = FunctionBuilder::new(format!("d{i}"), 0);
            b.op(OpKind::Alu);
            if let Some(p) = prev {
                b.call(SiteId::from_raw(i), p, 0);
            }
            b.ret();
            prev = Some(m.add_function(b.build()));
        }
        let deep_entry = prev.unwrap();
        // A shallow function as the second entry.
        let mut b = FunctionBuilder::new("shallow", 0);
        b.op(OpKind::Alu);
        b.ret();
        let shallow = m.add_function(b.build());
        m.verify().unwrap();

        let cfg = SimConfig {
            rsb_refill: true,
            track_attacks: true,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&m, FixedResolver(shallow), 7, cfg);
        sim.call_entry(shallow).unwrap();
        assert_eq!(
            sim.attacks().rsb_hijackable_rets,
            0,
            "shallow syscall: refilling protects every return"
        );
        sim.call_entry(deep_entry).unwrap();
        assert!(
            sim.attacks().rsb_hijackable_rets > 0,
            "a 20-deep chain overflows the 16-entry RSB; refilling stops helping"
        );
        // Refilling costs cycles on every entry.
        let mut plain = Simulator::new(&m, FixedResolver(shallow), 7, SimConfig::default());
        plain.call_entry(shallow).unwrap();
        let mut refilled = Simulator::new(&m, FixedResolver(shallow), 7, cfg);
        let r = refilled.call_entry(shallow).unwrap();
        assert!(r > plain.cycles(), "stuffing the RSB is not free");
    }

    #[test]
    fn jumpswitch_single_target_beats_retpoline() {
        let (m, _s, root, leaf) = module();
        let js_cfg = SimConfig {
            jumpswitch: Some(JumpSwitchConfig::default()),
            ..sim_cfg(DefenseSet::RETPOLINES)
        };
        let mut js = Simulator::new(&m, FixedResolver(leaf), 7, js_cfg);
        let mut retp = Simulator::new(&m, FixedResolver(leaf), 7, sim_cfg(DefenseSet::RETPOLINES));
        let n = 200;
        let mut js_total = 0;
        let mut retp_total = 0;
        for _ in 0..n {
            js_total += js.call_entry(root).unwrap();
            retp_total += retp.call_entry(root).unwrap();
        }
        assert!(
            js_total < retp_total,
            "after learning, jumpswitch ({js_total}) beats retpoline ({retp_total})"
        );
    }
}
