//! Robustness of the profile's on-disk JSON format.
//!
//! Profiles are the one artifact the hardening pipeline reads from disk,
//! so a hostile or merely bit-rotted document must come back as a typed
//! [`serde_json::Error`] — never a panic, and never a silently corrupted
//! profile (duplicate association-list keys would otherwise last-win).

use pibe_ir::{FuncId, SiteId};
use pibe_profile::Profile;
use proptest::collection::vec;
use proptest::prelude::*;
use serde_json::Value;

fn site(n: u64) -> SiteId {
    SiteId::from_raw(n)
}

fn func(n: u32) -> FuncId {
    FuncId::from_raw(n)
}

/// A profile exercising all four count maps.
fn sample_profile() -> Profile {
    let mut p = Profile::new();
    for s in 0..4 {
        for _ in 0..=s {
            p.record_direct(site(s));
        }
    }
    for t in 0..3 {
        p.record_indirect(site(100), func(t));
    }
    p.record_indirect(site(101), func(7));
    p.record_entry(func(1));
    p.record_return(func(1));
    p.record_return(func(2));
    p
}

#[test]
fn a_profile_round_trips_through_json() {
    let p = sample_profile();
    let back = Profile::from_json(&p.to_json()).expect("own output parses");
    assert_eq!(p, back);
}

#[test]
fn malformed_documents_error_never_panic() {
    let cases: &[&str] = &[
        "",
        "   ",
        "not json",
        "{",
        "[",
        "[1, 2",
        "null",
        "42",
        "true",
        "\"profile\"",
        "{}",
        r#"{"direct": 5, "indirect": [], "entries": [], "returns": []}"#,
        r#"{"direct": [], "indirect": [], "entries": []}"#,
        r#"{"direct": [17], "indirect": [], "entries": [], "returns": []}"#,
        r#"{"direct": [], "indirect": [[]], "entries": [], "returns": []}"#,
        "{\"direct\": [], \"indirect\": [], \"entries\": [], \"returns\": [],}",
        "\u{0}\u{1}\u{2}",
    ];
    for doc in cases {
        assert!(
            Profile::from_json(doc).is_err(),
            "malformed document parsed as a profile: {doc:?}"
        );
    }
}

#[test]
fn every_truncation_of_a_valid_document_errors() {
    let doc = sample_profile().to_json();
    let doc = doc.trim_end();
    for (end, _) in doc.char_indices() {
        let prefix = &doc[..end];
        assert!(
            Profile::from_json(prefix).is_err(),
            "truncated document ({end}/{} bytes) parsed as a profile",
            doc.len()
        );
    }
}

#[test]
fn duplicate_association_list_keys_are_rejected() {
    let doc = sample_profile().to_json();
    for list in ["direct", "indirect", "entries", "returns"] {
        let mut v: Value = serde_json::from_str(&doc).expect("valid doc parses");
        let Value::Object(fields) = &mut v else {
            panic!("profile document is not an object");
        };
        let (_, items) = fields
            .iter_mut()
            .find(|(k, _)| k == list)
            .expect("count list present");
        let Value::Array(items) = items else {
            panic!("{list} is not an array");
        };
        assert!(!items.is_empty(), "{list} fixture list is empty");
        let dup = items[0].clone();
        items.push(dup);
        let ambiguous = serde_json::to_string(&v).expect("doctored doc re-encodes");
        let err = Profile::from_json(&ambiguous)
            .expect_err("document with a duplicate key parsed as a profile");
        assert!(
            err.to_string().contains("duplicate"),
            "error does not name the duplicate ({list}): {err}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary profiles survive the trip to JSON and back bit-exact.
    #[test]
    fn random_profiles_round_trip(
        direct in vec((0u64..500, 1usize..6), 0..32),
        indirect in vec((500u64..900, vec(0u32..200, 1..5)), 0..16),
        entries in vec(0u32..300, 0..24),
        returns in vec(0u32..300, 0..24),
    ) {
        let mut p = Profile::new();
        for (s, hits) in direct {
            for _ in 0..hits {
                p.record_direct(site(s));
            }
        }
        for (s, targets) in indirect {
            for t in targets {
                p.record_indirect(site(s), func(t));
            }
        }
        for f in entries {
            p.record_entry(func(f));
        }
        for f in returns {
            p.record_return(func(f));
        }
        let json = p.to_json();
        let back = Profile::from_json(&json);
        prop_assert_eq!(back.as_ref(), Ok(&p), "round trip diverged");
    }
}
