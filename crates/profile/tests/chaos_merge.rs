//! Satellite coverage: chaos × merge. Every `ProfileChaos` corruption
//! applied to an epoch delta must be caught by `validate_against` *before*
//! the delta is merged — the quarantine predicate the serve loop uses — so
//! no corrupted count ever reaches the cumulative profile. Exercised over a
//! seeded window so all seven corruption kinds land repeatedly.

use pibe_ir::{FunctionBuilder, Module, OpKind, SiteId};
use pibe_profile::{corrupt_profile, ProfileChaos, ProfileIssue};
use pibe_profile::{ChaosRng, Profile};

/// A module with two leaves, a direct call and an indirect call, plus a
/// clean profile covering all four counter dimensions.
fn fixture() -> (Module, Profile) {
    let mut m = Module::new("m");
    let mut leaves = Vec::new();
    for i in 0..2 {
        let mut b = FunctionBuilder::new(format!("leaf{i}"), 0);
        b.op(OpKind::Alu);
        b.ret();
        leaves.push(m.add_function(b.build()));
    }
    let d = m.fresh_site();
    let ind = m.fresh_site();
    let mut b = FunctionBuilder::new("root", 0);
    b.call(d, leaves[0], 0);
    b.call_indirect(ind, 1);
    b.ret();
    m.add_function(b.build());

    let mut p = Profile::new();
    for _ in 0..40 {
        p.record_direct(d);
        p.record_entry(leaves[0]);
    }
    for (i, leaf) in leaves.iter().enumerate() {
        for _ in 0..(10 * (i as u64 + 1)) {
            p.record_indirect(ind, *leaf);
            p.record_return(*leaf);
        }
    }
    (m, p)
}

/// A per-seed clean delta: a deterministic thinned copy of the base
/// profile, as a sharded profiling run would report.
fn clean_delta(base: &Profile, seed: u64) -> Profile {
    let mut rng = ChaosRng::new(seed);
    let mut d = Profile::new();
    for (site, count) in base.iter_direct() {
        for _ in 0..(count % (2 + rng.below(7))) {
            d.record_direct(site);
        }
    }
    for (site, entries) in base.iter_indirect() {
        for e in entries {
            for _ in 0..(e.count % (2 + rng.below(5))) {
                d.record_indirect(site, e.target);
            }
        }
    }
    for (f, c) in base.iter_entries() {
        for _ in 0..(c % 3) {
            d.record_entry(f);
        }
    }
    d
}

/// The issue class each corruption kind is guaranteed to trip.
fn matches_kind(kind: ProfileChaos, issue: &ProfileIssue) -> bool {
    match kind {
        ProfileChaos::DanglingDirectSite => {
            matches!(issue, ProfileIssue::DanglingDirectSite { .. })
        }
        ProfileChaos::DanglingIndirectSite => {
            matches!(issue, ProfileIssue::DanglingIndirectSite { .. })
        }
        ProfileChaos::DanglingTarget => matches!(issue, ProfileIssue::DanglingTarget { .. }),
        ProfileChaos::DuplicateTarget => matches!(issue, ProfileIssue::DuplicateTarget { .. }),
        ProfileChaos::TruncateValueProfile => {
            matches!(issue, ProfileIssue::EmptyValueProfile { .. })
        }
        ProfileChaos::SaturateCounts => matches!(
            issue,
            ProfileIssue::SaturatedDirect { .. } | ProfileIssue::SaturatedIndirect { .. }
        ),
        ProfileChaos::Erase => matches!(issue, ProfileIssue::Empty),
    }
}

#[test]
fn every_landed_corruption_is_quarantined_before_merge() {
    let (m, base) = fixture();
    let mut landed_kinds = std::collections::HashSet::new();

    // The serve loop in miniature: merge only deltas that validate clean.
    let mut cumulative = base.clone();
    let mut clean_only = base.clone();

    for seed in 0..400u64 {
        let delta = clean_delta(&base, seed);
        assert!(
            delta.is_empty() || delta.validate_against(&m).is_clean(),
            "seed {seed}: a thinned copy of a clean profile must be clean"
        );
        let (corrupted, kind, landed) = corrupt_profile(&delta, &m, seed);

        let health = corrupted.validate_against(&m);
        if landed {
            landed_kinds.insert(kind);
            assert!(
                !health.is_clean(),
                "seed {seed} ({kind}): corruption landed but validation missed it"
            );
            assert!(
                health.issues().iter().any(|i| matches_kind(kind, i)),
                "seed {seed} ({kind}): no issue of the matching class in {health}"
            );
            // Quarantined: never merged.
            continue;
        }
        // Not landed: the delta is unchanged, merging it is safe. Empty
        // deltas are advisory-flagged but carry no counts either way.
        if health.is_clean() {
            cumulative.merge(&corrupted);
            clean_only.merge(&delta);
        }
    }

    assert_eq!(
        landed_kinds.len(),
        ProfileChaos::ALL.len(),
        "the 400-seed window must land every corruption kind: {landed_kinds:?}"
    );
    // No corrupted count ever reached the merged profile: merging the
    // surviving deltas equals merging their pre-corruption originals.
    assert_eq!(cumulative, clean_only);
    assert!(cumulative.validate_against(&m).is_clean());
}

#[test]
fn quarantine_predicate_rejects_ghost_counts_entirely() {
    // Direct check of the "never merged" guarantee for the ghost-key
    // corruptions: the merged profile must contain no key outside the
    // module universe.
    let (m, base) = fixture();
    let mut cumulative = base.clone();
    for seed in 0..400u64 {
        let (corrupted, _, landed) = corrupt_profile(&clean_delta(&base, seed), &m, seed);
        if !landed && corrupted.validate_against(&m).is_clean() {
            cumulative.merge(&corrupted);
        }
    }
    let ghost_watermark = m.peek_next_site();
    for (site, _) in cumulative.iter_direct() {
        assert!(site < SiteId::from_raw(ghost_watermark));
    }
    for (site, entries) in cumulative.iter_indirect() {
        assert!(site < SiteId::from_raw(ghost_watermark));
        for e in entries {
            assert!(e.target.index() < m.len(), "ghost target leaked into merge");
        }
    }
}
