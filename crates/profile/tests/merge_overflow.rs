//! Satellite regression suite: `Profile::merge_checked` must surface every
//! counter that saturates during long-lived epoch accumulation as a typed
//! [`MergeOverflow`], instead of silently wrapping (or silently saturating,
//! as plain `merge` does).

use pibe_ir::{FuncId, SiteId};
use pibe_profile::{MergeOverflow, Profile};

fn site(n: u64) -> SiteId {
    SiteId::from_raw(n)
}
fn func(n: u32) -> FuncId {
    FuncId::from_raw(n)
}

/// A profile whose every counter is `count` times the corresponding counter
/// of `unit`, built by binary merge composition (so near-`u64::MAX` fixtures
/// cost 64 merges, not 2^64 recordings).
fn scaled(unit: &Profile, count: u64) -> Profile {
    let mut result = Profile::new();
    let mut power = unit.clone();
    let mut bits = count;
    loop {
        if bits & 1 == 1 {
            result.merge(&power);
        }
        bits >>= 1;
        if bits == 0 {
            break;
        }
        let double = power.clone();
        power.merge(&double);
    }
    result
}

fn direct_unit() -> Profile {
    let mut p = Profile::new();
    p.record_direct(site(1));
    p
}

fn indirect_unit() -> Profile {
    let mut p = Profile::new();
    p.record_indirect(site(2), func(3));
    p
}

#[test]
fn scaled_fixture_is_exact() {
    let p = scaled(&direct_unit(), u64::MAX - 2);
    assert_eq!(p.direct_count(site(1)), u64::MAX - 2);
    let p = scaled(&indirect_unit(), 1_000_003);
    assert_eq!(p.indirect_count(site(2)), 1_000_003);
}

#[test]
fn clean_merge_reports_clean() {
    let mut a = Profile::new();
    a.record_direct(site(1));
    a.record_indirect(site(2), func(3));
    a.record_entry(func(4));
    a.record_return(func(5));
    let b = a.clone();
    let report = a.merge_checked(&b);
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(a.direct_count(site(1)), 2);
    assert_eq!(a.indirect_count(site(2)), 2);
}

#[test]
fn near_max_direct_count_overflow_is_typed() {
    let mut a = scaled(&direct_unit(), u64::MAX - 2);
    let delta = scaled(&direct_unit(), 5);
    let report = a.merge_checked(&delta);
    assert_eq!(
        report.overflows,
        vec![MergeOverflow::Direct { site: site(1) }]
    );
    assert!(!report.is_clean());
    assert_eq!(a.direct_count(site(1)), u64::MAX, "saturates, never wraps");
}

#[test]
fn exactly_reaching_max_is_not_an_overflow() {
    let mut a = scaled(&direct_unit(), u64::MAX - 2);
    let delta = scaled(&direct_unit(), 2);
    let report = a.merge_checked(&delta);
    assert!(report.is_clean(), "an exact sum to u64::MAX loses nothing");
    assert_eq!(a.direct_count(site(1)), u64::MAX);
}

#[test]
fn near_max_value_profile_overflow_names_site_and_target() {
    let mut a = scaled(&indirect_unit(), u64::MAX - 1);
    let delta = scaled(&indirect_unit(), 2);
    let report = a.merge_checked(&delta);
    assert_eq!(
        report.overflows,
        vec![MergeOverflow::Indirect {
            site: site(2),
            target: func(3)
        }]
    );
    assert_eq!(a.indirect_count(site(2)), u64::MAX);
}

#[test]
fn entry_and_return_overflows_name_the_function() {
    let mut unit = Profile::new();
    unit.record_entry(func(4));
    unit.record_return(func(5));
    let mut a = scaled(&unit, u64::MAX - 1);
    let delta = scaled(&unit, 3);
    let report = a.merge_checked(&delta);
    assert!(report
        .overflows
        .contains(&MergeOverflow::Entry { func: func(4) }));
    assert!(report
        .overflows
        .contains(&MergeOverflow::Return { func: func(5) }));
    assert_eq!(a.entry_count(func(4)), u64::MAX);
    assert_eq!(a.return_count(func(5)), u64::MAX);
}

#[test]
fn overflow_report_is_sorted_and_deterministic() {
    let mut unit = Profile::new();
    for s in [9, 3, 7] {
        unit.record_direct(site(s));
    }
    let near = scaled(&unit, u64::MAX - 1);
    let delta = scaled(&unit, 2);
    let mut a = near.clone();
    let report = a.merge_checked(&delta);
    assert_eq!(report.overflows.len(), 3);
    let mut sorted = report.overflows.clone();
    sorted.sort();
    assert_eq!(report.overflows, sorted, "report order is canonical");
    // Same merge, same report.
    let mut b = near.clone();
    assert_eq!(b.merge_checked(&delta), report);
}

#[test]
fn plain_merge_still_saturates_silently() {
    // `merge` keeps its historical contract: same arithmetic, no report.
    let mut a = scaled(&direct_unit(), u64::MAX - 1);
    let delta = scaled(&direct_unit(), 100);
    a.merge(&delta);
    assert_eq!(a.direct_count(site(1)), u64::MAX);
}

#[test]
fn merge_into_clone_lets_caller_reject_lossy_epochs() {
    // The serve loop's atomicity pattern: merge into a scratch clone, keep
    // the cumulative profile untouched when the report is dirty.
    let cumulative = scaled(&direct_unit(), u64::MAX - 1);
    let before = cumulative.clone();
    let delta = scaled(&direct_unit(), 10);

    let mut scratch = cumulative.clone();
    let report = scratch.merge_checked(&delta);
    assert!(!report.is_clean());
    assert_eq!(
        cumulative, before,
        "rejected epoch leaves cumulative intact"
    );
}
