//! Profile analysis: weight-concentration statistics.
//!
//! PIBE's premise is that indirect-branch weight is extremely concentrated:
//! "the high overhead incurred by state-of-the-art mitigations is mostly
//! due to the effect of hardening frequently executed branches" (§1), so a
//! 99% budget touches only a sliver of the sites (Table 8). This module
//! quantifies that concentration for any profile: coverage curves ("how
//! many sites hold X% of the weight"), a Gini coefficient, and top-N
//! rankings — the numbers an operator would check before trusting a
//! profile enough to build a production kernel from it.

use crate::Profile;
use pibe_ir::SiteId;
use serde::{Deserialize, Serialize};

/// Concentration statistics over one weight population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Concentration {
    /// Number of sites with nonzero weight.
    pub sites: usize,
    /// Total weight.
    pub total_weight: u64,
    /// Fraction of sites (0..=1) needed to cover 50% of the weight.
    pub sites_for_50: f64,
    /// Fraction of sites needed to cover 90% of the weight.
    pub sites_for_90: f64,
    /// Fraction of sites needed to cover 99% of the weight.
    pub sites_for_99: f64,
    /// Gini coefficient of the weight distribution (0 = uniform,
    /// → 1 = concentrated on one site).
    pub gini: f64,
}

fn concentration(mut weights: Vec<u64>) -> Concentration {
    weights.retain(|w| *w > 0);
    weights.sort_unstable_by(|a, b| b.cmp(a)); // descending
    let sites = weights.len();
    let total: u64 = weights.iter().sum();
    if sites == 0 || total == 0 {
        return Concentration {
            sites: 0,
            total_weight: 0,
            sites_for_50: 0.0,
            sites_for_90: 0.0,
            sites_for_99: 0.0,
            gini: 0.0,
        };
    }
    let fraction_for = |target: f64| {
        let need = (total as f64) * target;
        let mut cum = 0u64;
        for (i, w) in weights.iter().enumerate() {
            cum += w;
            if cum as f64 >= need {
                return (i + 1) as f64 / sites as f64;
            }
        }
        1.0
    };
    // Gini over the descending-sorted weights: G = (n + 1 - 2 * Σ cum_i /
    // total) / n with ascending order; adapt via reversal.
    let mut asc = weights.clone();
    asc.reverse();
    let mut cum = 0u64;
    let mut cum_sum = 0f64;
    for w in &asc {
        cum += w;
        cum_sum += cum as f64;
    }
    let n = sites as f64;
    let gini = ((n + 1.0) - 2.0 * (cum_sum / total as f64)) / n;
    Concentration {
        sites,
        total_weight: total,
        sites_for_50: fraction_for(0.50),
        sites_for_90: fraction_for(0.90),
        sites_for_99: fraction_for(0.99),
        gini,
    }
}

/// Concentration of the direct-call (inlining-candidate) weight.
pub fn direct_concentration(p: &Profile) -> Concentration {
    concentration(p.iter_direct().map(|(_, w)| w).collect())
}

/// Concentration of the indirect `(site, target)` (promotion-candidate)
/// weight.
pub fn indirect_concentration(p: &Profile) -> Concentration {
    concentration(
        p.iter_indirect()
            .flat_map(|(_, entries)| entries.iter().map(|e| e.count))
            .collect(),
    )
}

/// The `n` hottest direct call sites, hottest first.
pub fn top_direct_sites(p: &Profile, n: usize) -> Vec<(SiteId, u64)> {
    let mut v: Vec<(SiteId, u64)> = p.iter_direct().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::FuncId;

    fn site(n: u64) -> SiteId {
        SiteId::from_raw(n)
    }

    #[test]
    fn uniform_weights_have_low_gini_and_linear_coverage() {
        let mut p = Profile::new();
        for s in 0..100 {
            for _ in 0..10 {
                p.record_direct(site(s));
            }
        }
        let c = direct_concentration(&p);
        assert_eq!(c.sites, 100);
        assert!(c.gini < 0.02, "uniform: gini {:.3}", c.gini);
        assert!((c.sites_for_50 - 0.5).abs() < 0.02);
        assert!((c.sites_for_99 - 0.99).abs() < 0.02);
    }

    #[test]
    fn heavy_head_concentrates() {
        let mut p = Profile::new();
        for _ in 0..10_000 {
            p.record_direct(site(0));
        }
        for s in 1..100 {
            p.record_direct(site(s));
        }
        let c = direct_concentration(&p);
        assert!(
            c.sites_for_90 < 0.02,
            "one site covers 90%: {}",
            c.sites_for_90
        );
        assert!(c.gini > 0.9, "gini {:.3}", c.gini);
    }

    #[test]
    fn empty_profile_is_degenerate_not_crashing() {
        let c = direct_concentration(&Profile::new());
        assert_eq!(c.sites, 0);
        assert_eq!(c.gini, 0.0);
    }

    #[test]
    fn top_sites_rank_correctly() {
        let mut p = Profile::new();
        for (s, n) in [(1u64, 5u64), (2, 50), (3, 1)] {
            for _ in 0..n {
                p.record_direct(site(s));
            }
        }
        let top = top_direct_sites(&p, 2);
        assert_eq!(top, vec![(site(2), 50), (site(1), 5)]);
    }

    #[test]
    fn indirect_concentration_counts_target_pairs() {
        let mut p = Profile::new();
        for _ in 0..90 {
            p.record_indirect(site(1), FuncId::from_raw(0));
        }
        for _ in 0..10 {
            p.record_indirect(site(1), FuncId::from_raw(1));
        }
        let c = indirect_concentration(&p);
        assert_eq!(c.sites, 2, "two (site, target) pairs");
        assert_eq!(c.total_weight, 100);
        assert!(c.sites_for_50 <= 0.5);
    }
}
