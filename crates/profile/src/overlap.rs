//! Workload-overlap analysis (§8.4).
//!
//! The paper assesses robustness to workload changes by selecting the
//! optimization candidates of two workloads at a reference budget and
//! computing "the fraction both workloads have in common": at 99%,
//! LMBench and Apache share 58% of indirect-call-promotion candidate weight
//! and 67% of inlining candidate weight.

use crate::{select_by_budget, Budget, Profile};
use pibe_ir::{FuncId, SiteId};
use std::collections::HashSet;

/// Result of comparing the candidate sets of two profiles at a budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapReport {
    /// Fraction (0..=1) of the *reference* profile's ICP candidate weight
    /// whose `(site, target)` pairs also appear among the other profile's
    /// ICP candidates.
    pub icp_shared_weight: f64,
    /// Fraction (0..=1) of the reference profile's inlining candidate
    /// weight whose sites also appear among the other profile's inlining
    /// candidates.
    pub inline_shared_weight: f64,
    /// Number of ICP candidates in the reference profile.
    pub icp_candidates: usize,
    /// Number of inlining candidates in the reference profile.
    pub inline_candidates: usize,
}

fn icp_candidates(p: &Profile, budget: Budget) -> Vec<((SiteId, FuncId), u64)> {
    let cands: Vec<((SiteId, FuncId), u64)> = p
        .iter_indirect()
        .flat_map(|(site, entries)| entries.iter().map(move |e| ((site, e.target), e.count)))
        .collect();
    select_by_budget(&cands, budget)
}

fn inline_candidates(p: &Profile, budget: Budget) -> Vec<(SiteId, u64)> {
    let cands: Vec<(SiteId, u64)> = p.iter_direct().collect();
    select_by_budget(&cands, budget)
}

/// Compares the candidate sets of `reference` (the deployment workload)
/// against `trained` (the profiling workload) at `budget`.
pub fn overlap(reference: &Profile, trained: &Profile, budget: Budget) -> OverlapReport {
    let ref_icp = icp_candidates(reference, budget);
    let trained_icp: HashSet<(SiteId, FuncId)> = icp_candidates(trained, budget)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let icp_total: u128 = ref_icp.iter().map(|(_, w)| u128::from(*w)).sum();
    let icp_shared: u128 = ref_icp
        .iter()
        .filter(|(k, _)| trained_icp.contains(k))
        .map(|(_, w)| u128::from(*w))
        .sum();

    let ref_inline = inline_candidates(reference, budget);
    let trained_inline: HashSet<SiteId> = inline_candidates(trained, budget)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let inline_total: u128 = ref_inline.iter().map(|(_, w)| u128::from(*w)).sum();
    let inline_shared: u128 = ref_inline
        .iter()
        .filter(|(k, _)| trained_inline.contains(k))
        .map(|(_, w)| u128::from(*w))
        .sum();

    let frac = |shared: u128, total: u128| {
        if total == 0 {
            0.0
        } else {
            shared as f64 / total as f64
        }
    };
    OverlapReport {
        icp_shared_weight: frac(icp_shared, icp_total),
        inline_shared_weight: frac(inline_shared, inline_total),
        icp_candidates: ref_icp.len(),
        inline_candidates: ref_inline.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u64) -> SiteId {
        SiteId::from_raw(n)
    }
    fn func(n: u32) -> FuncId {
        FuncId::from_raw(n)
    }

    #[test]
    fn identical_profiles_overlap_fully() {
        let mut p = Profile::new();
        for _ in 0..100 {
            p.record_direct(site(1));
            p.record_indirect(site(2), func(1));
        }
        let r = overlap(&p, &p, Budget::P99);
        assert_eq!(r.icp_shared_weight, 1.0);
        assert_eq!(r.inline_shared_weight, 1.0);
        assert!(r.icp_candidates > 0 && r.inline_candidates > 0);
    }

    #[test]
    fn disjoint_profiles_do_not_overlap() {
        let mut a = Profile::new();
        let mut b = Profile::new();
        for _ in 0..100 {
            a.record_direct(site(1));
            a.record_indirect(site(2), func(1));
            b.record_direct(site(10));
            b.record_indirect(site(20), func(5));
        }
        let r = overlap(&a, &b, Budget::P99);
        assert_eq!(r.icp_shared_weight, 0.0);
        assert_eq!(r.inline_shared_weight, 0.0);
    }

    #[test]
    fn partial_overlap_is_weighted_not_counted() {
        let mut a = Profile::new();
        let mut b = Profile::new();
        // Shared hot site (weight 900 in reference), unshared cold site (100).
        for _ in 0..900 {
            a.record_direct(site(1));
            b.record_direct(site(1));
        }
        for _ in 0..100 {
            a.record_direct(site(2));
            b.record_direct(site(3));
        }
        let r = overlap(&a, &b, Budget::new(100.0).unwrap());
        assert!((r.inline_shared_weight - 0.9).abs() < 1e-9);
    }

    #[test]
    fn empty_profiles_yield_zero_overlap() {
        let r = overlap(&Profile::new(), &Profile::new(), Budget::P99);
        assert_eq!(r.icp_shared_weight, 0.0);
        assert_eq!(r.icp_candidates, 0);
    }
}
