//! Profile validation and repair against a concrete module.
//!
//! PIBE's hardening phase replays a profile that may have been collected on
//! a different build of the module: function ids drift, call sites get
//! DCE'd, merged profiles can saturate. A stale or corrupt profile fed
//! blindly into the passes produces dangling callees (and, two stages
//! later, a panic deep inside a build worker). This module turns those
//! failure modes into data:
//!
//! * [`Profile::validate_against`] inspects a profile relative to a module
//!   and reports every inconsistency as a [`ProfileIssue`] inside a
//!   [`ProfileHealth`];
//! * [`Profile::repair_against`] drops or clamps the offending entries in
//!   place and returns a [`ProfileRepair`] describing what changed, after
//!   which the profile validates clean (except for irreparably-empty
//!   profiles, which are safe to optimize with — the passes simply find no
//!   candidates).
//!
//! The pipeline chooses between these behaviours with its
//! `ValidationPolicy` knob (strict / repair / trust).

use crate::profile::{Profile, ValueProfileEntry};
use pibe_ir::{FuncId, Inst, Module, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Ceiling [`Profile::repair_against`] clamps suspicious counts to.
///
/// Large enough that no real workload reaches it (2^40 executions of one
/// site), small enough that summing millions of clamped counts cannot
/// overflow a `u64` in downstream pass arithmetic.
pub const COUNT_CLAMP: u64 = 1 << 40;

/// One inconsistency between a profile and the module it is replayed
/// against. Every variant names the faulty entity so strict-mode errors are
/// actionable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileIssue {
    /// A direct-call count is keyed by a site that is not a direct call
    /// site of the module (dropped from the image, or id drift).
    DanglingDirectSite {
        /// The unmatched site.
        site: SiteId,
    },
    /// A value profile is keyed by a site that is not an indirect call
    /// site of the module.
    DanglingIndirectSite {
        /// The unmatched site.
        site: SiteId,
    },
    /// A value-profile target names a function outside the module.
    DanglingTarget {
        /// The indirect call site whose value profile is bad.
        site: SiteId,
        /// The out-of-range target.
        target: FuncId,
    },
    /// A value profile lists the same target more than once (corrupt
    /// serialization or a buggy merge; the canonical form is sorted and
    /// deduplicated).
    DuplicateTarget {
        /// The indirect call site whose value profile is bad.
        site: SiteId,
        /// The repeated target.
        target: FuncId,
    },
    /// An indirect call site carries an empty value profile (a truncated
    /// document: the site observed calls but lost its targets).
    EmptyValueProfile {
        /// The truncated site.
        site: SiteId,
    },
    /// A direct-call count sits at `u64::MAX`: a saturated merge (counts
    /// saturate rather than overflow) or deliberate corruption.
    SaturatedDirect {
        /// The saturated site.
        site: SiteId,
    },
    /// A value-profile count sits at `u64::MAX`.
    SaturatedIndirect {
        /// The saturated site.
        site: SiteId,
        /// The saturated target.
        target: FuncId,
    },
    /// A function invocation or return count names a function outside the
    /// module.
    DanglingFunc {
        /// The out-of-range function.
        func: FuncId,
    },
    /// A function invocation or return count sits at `u64::MAX`.
    SaturatedFunc {
        /// The saturated function.
        func: FuncId,
    },
    /// The profile recorded nothing at all. Advisory: an empty profile is
    /// *safe* (the passes find no candidates and the image ships fully
    /// defended) but almost certainly means the profiling run failed.
    Empty,
}

impl fmt::Display for ProfileIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileIssue::DanglingDirectSite { site } => {
                write!(f, "{site} is profiled as a direct call but is not a direct call site of the module")
            }
            ProfileIssue::DanglingIndirectSite { site } => {
                write!(f, "{site} is profiled as an indirect call but is not an indirect call site of the module")
            }
            ProfileIssue::DanglingTarget { site, target } => {
                write!(
                    f,
                    "{site} lists value-profile target {target} which is not in the module"
                )
            }
            ProfileIssue::DuplicateTarget { site, target } => {
                write!(
                    f,
                    "{site} lists value-profile target {target} more than once"
                )
            }
            ProfileIssue::EmptyValueProfile { site } => {
                write!(f, "{site} carries an empty (truncated) value profile")
            }
            ProfileIssue::SaturatedDirect { site } => {
                write!(f, "{site} has a saturated direct-call count")
            }
            ProfileIssue::SaturatedIndirect { site, target } => {
                write!(f, "{site} -> {target} has a saturated value-profile count")
            }
            ProfileIssue::DanglingFunc { func } => {
                write!(f, "profiled function {func} is not in the module")
            }
            ProfileIssue::SaturatedFunc { func } => {
                write!(f, "{func} has a saturated invocation or return count")
            }
            ProfileIssue::Empty => write!(f, "profile is empty (no events recorded)"),
        }
    }
}

/// The result of validating a profile against a module: every detected
/// [`ProfileIssue`], in a deterministic (sorted) order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileHealth {
    issues: Vec<ProfileIssue>,
}

impl ProfileHealth {
    /// No inconsistencies found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Every detected issue, deterministically ordered.
    pub fn issues(&self) -> &[ProfileIssue] {
        &self.issues
    }

    /// The first (reported) issue, if any — what strict mode surfaces.
    pub fn first(&self) -> Option<ProfileIssue> {
        self.issues.first().copied()
    }
}

impl fmt::Display for ProfileHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("profile is healthy");
        }
        write!(f, "{} issue(s):", self.issues.len())?;
        for i in &self.issues {
            write!(f, "\n  {i}")?;
        }
        Ok(())
    }
}

/// What [`Profile::repair_against`] changed, by category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileRepair {
    /// Direct-call entries dropped (dangling sites).
    pub dropped_direct_sites: u64,
    /// Whole value profiles dropped (dangling sites, or sites left with no
    /// valid targets).
    pub dropped_indirect_sites: u64,
    /// Individual value-profile targets dropped (dangling functions).
    pub dropped_targets: u64,
    /// Duplicate value-profile targets merged back into one entry.
    pub merged_duplicate_targets: u64,
    /// Counts clamped down to [`COUNT_CLAMP`].
    pub clamped_counts: u64,
    /// Function invocation/return entries dropped (dangling functions).
    pub dropped_funcs: u64,
}

impl ProfileRepair {
    /// True when repair modified the profile at all.
    pub fn changed(&self) -> bool {
        self.total_actions() > 0
    }

    /// Total number of repair actions across all categories.
    pub fn total_actions(&self) -> u64 {
        self.dropped_direct_sites
            + self.dropped_indirect_sites
            + self.dropped_targets
            + self.merged_duplicate_targets
            + self.clamped_counts
            + self.dropped_funcs
    }
}

impl fmt::Display for ProfileRepair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repair: {} direct site(s), {} value profile(s), {} target(s) dropped; \
             {} duplicate(s) merged; {} count(s) clamped; {} function(s) dropped",
            self.dropped_direct_sites,
            self.dropped_indirect_sites,
            self.dropped_targets,
            self.merged_duplicate_targets,
            self.clamped_counts,
            self.dropped_funcs,
        )
    }
}

/// The module-side universe a profile is checked against: which sites are
/// direct/indirect calls and how many functions exist.
struct SiteUniverse {
    direct: HashSet<SiteId>,
    indirect: HashSet<SiteId>,
    funcs: usize,
}

impl SiteUniverse {
    fn of(module: &Module) -> Self {
        let mut direct = HashSet::new();
        let mut indirect = HashSet::new();
        for f in module.functions() {
            // Flat pool scan: tombstones are plain ops and cannot match.
            for inst in f.insts() {
                match inst {
                    Inst::Call { site, .. } => {
                        direct.insert(*site);
                    }
                    Inst::CallIndirect { site, .. } => {
                        indirect.insert(*site);
                    }
                    _ => {}
                }
            }
        }
        SiteUniverse {
            direct,
            indirect,
            funcs: module.len(),
        }
    }

    fn has_func(&self, f: FuncId) -> bool {
        f.index() < self.funcs
    }
}

impl Profile {
    /// Checks this profile for consistency against `module`: dangling site
    /// and function ids, duplicated or truncated value profiles, saturated
    /// counts, and overall emptiness. The returned issue list is sorted, so
    /// the same profile/module pair always reports the same first issue.
    pub fn validate_against(&self, module: &Module) -> ProfileHealth {
        let _span = pibe_trace::span("profile.validate");
        let u = SiteUniverse::of(module);
        let mut issues = Vec::new();

        if self.is_empty() {
            issues.push(ProfileIssue::Empty);
        }

        let mut direct: Vec<(SiteId, u64)> = self.iter_direct().collect();
        direct.sort_by_key(|(s, _)| *s);
        for (site, count) in direct {
            if !u.direct.contains(&site) {
                issues.push(ProfileIssue::DanglingDirectSite { site });
            }
            if count == u64::MAX {
                issues.push(ProfileIssue::SaturatedDirect { site });
            }
        }

        let mut indirect: Vec<(SiteId, &[ValueProfileEntry])> = self.iter_indirect().collect();
        indirect.sort_by_key(|(s, _)| *s);
        for (site, entries) in indirect {
            if !u.indirect.contains(&site) {
                issues.push(ProfileIssue::DanglingIndirectSite { site });
            }
            if entries.is_empty() {
                issues.push(ProfileIssue::EmptyValueProfile { site });
            }
            let mut seen: HashSet<FuncId> = HashSet::new();
            for e in entries {
                if !u.has_func(e.target) {
                    issues.push(ProfileIssue::DanglingTarget {
                        site,
                        target: e.target,
                    });
                }
                if !seen.insert(e.target) {
                    issues.push(ProfileIssue::DuplicateTarget {
                        site,
                        target: e.target,
                    });
                }
                if e.count == u64::MAX {
                    issues.push(ProfileIssue::SaturatedIndirect {
                        site,
                        target: e.target,
                    });
                }
            }
        }

        let mut funcs: Vec<(FuncId, u64)> =
            self.iter_entries().chain(self.iter_returns()).collect();
        funcs.sort_by_key(|(f, _)| *f);
        let mut flagged_dangling: HashSet<FuncId> = HashSet::new();
        let mut flagged_saturated: HashSet<FuncId> = HashSet::new();
        for (func, count) in funcs {
            if !u.has_func(func) && flagged_dangling.insert(func) {
                issues.push(ProfileIssue::DanglingFunc { func });
            }
            if count == u64::MAX && flagged_saturated.insert(func) {
                issues.push(ProfileIssue::SaturatedFunc { func });
            }
        }

        pibe_trace::event_args("profile.validated", || {
            vec![("issues", pibe_trace::Value::from(issues.len()))]
        });
        ProfileHealth { issues }
    }

    /// Repairs this profile in place so it is safe to replay against
    /// `module`: dangling entries are dropped, duplicated targets merged,
    /// saturated counts clamped to [`COUNT_CLAMP`]. Returns what changed.
    ///
    /// After repair, [`Profile::validate_against`] reports no issues other
    /// than (possibly) [`ProfileIssue::Empty`], which is advisory.
    pub fn repair_against(&mut self, module: &Module) -> ProfileRepair {
        let _span = pibe_trace::span("profile.repair");
        let u = SiteUniverse::of(module);
        let mut rep = ProfileRepair::default();
        let (direct, indirect, entries, returns) = self.raw_mut();

        direct.retain(|site, _| {
            let keep = u.direct.contains(site);
            if !keep {
                rep.dropped_direct_sites += 1;
            }
            keep
        });
        for count in direct.values_mut() {
            if *count > COUNT_CLAMP {
                *count = COUNT_CLAMP;
                rep.clamped_counts += 1;
            }
        }

        indirect.retain(|site, _| {
            let keep = u.indirect.contains(site);
            if !keep {
                rep.dropped_indirect_sites += 1;
            }
            keep
        });
        for vp in indirect.values_mut() {
            // Drop dangling targets, clamp counts, merge duplicates back
            // into the canonical sorted-unique form.
            let mut merged: HashMap<FuncId, u64> = HashMap::new();
            let mut order_broken = 0u64;
            for e in vp.iter() {
                if !u.has_func(e.target) {
                    rep.dropped_targets += 1;
                    continue;
                }
                let count = if e.count > COUNT_CLAMP {
                    rep.clamped_counts += 1;
                    COUNT_CLAMP
                } else {
                    e.count
                };
                match merged.get_mut(&e.target) {
                    Some(c) => {
                        *c = c.saturating_add(count).min(COUNT_CLAMP);
                        order_broken += 1;
                    }
                    None => {
                        merged.insert(e.target, count);
                    }
                }
            }
            rep.merged_duplicate_targets += order_broken;
            let mut fixed: Vec<ValueProfileEntry> = merged
                .into_iter()
                .map(|(target, count)| ValueProfileEntry { target, count })
                .collect();
            fixed.sort_by_key(|e| e.target);
            *vp = fixed;
        }
        indirect.retain(|_, vp| {
            let keep = !vp.is_empty();
            if !keep {
                // A truncated (or fully-dropped) value profile carries no
                // usable information; counted as a dropped site.
                rep.dropped_indirect_sites += 1;
            }
            keep
        });

        for map in [entries, returns] {
            map.retain(|func, _| {
                let keep = u.has_func(*func);
                if !keep {
                    rep.dropped_funcs += 1;
                }
                keep
            });
            for count in map.values_mut() {
                if *count > COUNT_CLAMP {
                    *count = COUNT_CLAMP;
                    rep.clamped_counts += 1;
                }
            }
        }

        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FunctionBuilder, OpKind};

    /// leaf() and root() { call leaf; icall }: one direct site, one
    /// indirect site, two functions.
    fn module() -> (Module, SiteId, SiteId, FuncId) {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", 0);
        b.op(OpKind::Alu);
        b.ret();
        let leaf = m.add_function(b.build());
        let direct = m.fresh_site();
        let indirect = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(direct, leaf, 0);
        b.call_indirect(indirect, 1);
        b.ret();
        m.add_function(b.build());
        (m, direct, indirect, leaf)
    }

    fn clean_profile(direct: SiteId, indirect: SiteId, leaf: FuncId) -> Profile {
        let mut p = Profile::new();
        p.record_direct(direct);
        p.record_indirect(indirect, leaf);
        p.record_entry(leaf);
        p.record_return(leaf);
        p
    }

    #[test]
    fn clean_profile_validates_clean() {
        let (m, d, i, leaf) = module();
        let p = clean_profile(d, i, leaf);
        let h = p.validate_against(&m);
        assert!(h.is_clean(), "{h}");
        assert_eq!(h.first(), None);
    }

    #[test]
    fn empty_profile_is_flagged_advisory() {
        let (m, _, _, _) = module();
        let h = Profile::new().validate_against(&m);
        assert_eq!(h.issues(), &[ProfileIssue::Empty]);
    }

    #[test]
    fn dangling_entries_are_detected_and_repaired() {
        let (m, d, i, leaf) = module();
        let mut p = clean_profile(d, i, leaf);
        let ghost_site = SiteId::from_raw(999);
        let ghost_func = FuncId::from_raw(999);
        p.record_direct(ghost_site);
        p.record_indirect(ghost_site, leaf);
        p.record_indirect(i, ghost_func);
        p.record_entry(ghost_func);

        let h = p.validate_against(&m);
        assert!(h
            .issues()
            .contains(&ProfileIssue::DanglingDirectSite { site: ghost_site }));
        assert!(h
            .issues()
            .contains(&ProfileIssue::DanglingIndirectSite { site: ghost_site }));
        assert!(h.issues().contains(&ProfileIssue::DanglingTarget {
            site: i,
            target: ghost_func
        }));
        assert!(h
            .issues()
            .contains(&ProfileIssue::DanglingFunc { func: ghost_func }));

        let rep = p.repair_against(&m);
        assert!(rep.changed());
        assert_eq!(rep.dropped_direct_sites, 1);
        assert_eq!(rep.dropped_indirect_sites, 1);
        assert_eq!(rep.dropped_targets, 1);
        assert_eq!(rep.dropped_funcs, 1);
        assert!(p.validate_against(&m).is_clean());
        // Valid entries survive repair.
        assert_eq!(p.direct_count(d), 1);
        assert_eq!(p.indirect_count(i), 1);
    }

    #[test]
    fn saturated_counts_are_clamped() {
        let (m, d, i, leaf) = module();
        let mut a = clean_profile(d, i, leaf);
        // Saturate by merging a profile that already sits at MAX.
        let mut big = Profile::new();
        for _ in 0..2 {
            big.record_direct(d);
        }
        {
            let (direct, indirect, ..) = big.raw_mut();
            direct.insert(d, u64::MAX);
            indirect.insert(
                i,
                vec![ValueProfileEntry {
                    target: leaf,
                    count: u64::MAX,
                }],
            );
        }
        a.merge(&big); // must not overflow-panic
        assert_eq!(a.direct_count(d), u64::MAX);

        let h = a.validate_against(&m);
        assert!(h
            .issues()
            .contains(&ProfileIssue::SaturatedDirect { site: d }));
        assert!(h.issues().contains(&ProfileIssue::SaturatedIndirect {
            site: i,
            target: leaf
        }));

        let rep = a.repair_against(&m);
        assert_eq!(rep.clamped_counts, 2);
        assert_eq!(a.direct_count(d), COUNT_CLAMP);
        assert!(a.validate_against(&m).is_clean());
    }

    #[test]
    fn duplicates_and_truncation_are_detected_and_repaired() {
        let (m, d, i, leaf) = module();
        let mut p = clean_profile(d, i, leaf);
        {
            let (_, indirect, ..) = p.raw_mut();
            let vp = indirect.get_mut(&i).unwrap();
            let dup = vp[0];
            vp.push(dup); // duplicate target
        }
        let h = p.validate_against(&m);
        assert!(h.issues().contains(&ProfileIssue::DuplicateTarget {
            site: i,
            target: leaf
        }));
        let rep = p.repair_against(&m);
        assert_eq!(rep.merged_duplicate_targets, 1);
        assert_eq!(p.indirect_count(i), 2, "duplicate counts merged");
        assert!(p.validate_against(&m).is_clean());

        // Truncated value profile: site kept, entries gone.
        let mut p = clean_profile(d, i, leaf);
        {
            let (_, indirect, ..) = p.raw_mut();
            indirect.get_mut(&i).unwrap().clear();
        }
        let h = p.validate_against(&m);
        assert!(h
            .issues()
            .contains(&ProfileIssue::EmptyValueProfile { site: i }));
        let rep = p.repair_against(&m);
        assert_eq!(rep.dropped_indirect_sites, 1);
        assert!(p.validate_against(&m).is_clean());
    }

    #[test]
    fn issue_display_names_the_entity() {
        let text = ProfileIssue::DanglingTarget {
            site: SiteId::from_raw(7),
            target: FuncId::from_raw(42),
        }
        .to_string();
        assert!(text.contains('7') && text.contains("42"), "{text}");
    }
}
